//! Offline vendored stand-in for [`criterion`](https://bheisler.github.io/criterion.rs/book/).
//!
//! Provides the `criterion_group!` / `criterion_main!` / `Criterion` /
//! `Bencher::iter` surface the workspace benches use.  Measurement is a
//! simple calibrated wall-clock loop (warmup, then enough iterations to
//! fill a short measurement window) with mean/min reporting — adequate for
//! spotting order-of-magnitude regressions, with no statistics machinery.
//!
//! Set `CRITERION_QUICK=1` to run each benchmark body exactly once
//! (useful to smoke-test bench targets in CI).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Benchmark driver handed to the functions named in `criterion_group!`.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(200),
            measurement: Duration::from_millis(800),
            quick: std::env::var_os("CRITERION_QUICK").is_some(),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.  `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            quick: self.quick,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!(
                "{name:<40} {:>12}/iter (mean over {} iters, min {})",
                format_ns(report.mean_ns),
                report.iters,
                format_ns(report.min_ns),
            ),
            None => println!("{name:<40} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Timer handle passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    quick: bool,
    report: Option<Report>,
}

impl Bencher {
    /// Measure `routine`, preventing its result from being optimised away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            let ns = start.elapsed().as_nanos() as f64;
            self.report = Some(Report {
                mean_ns: ns,
                min_ns: ns,
                iters: 1,
            });
            return;
        }

        // Warmup while estimating the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;

        // Measure in batches so Instant overhead stays negligible.
        let target_iters = ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        let batch = (target_iters / 10).max(1);
        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut iters = 0u64;
        let measure_start = Instant::now();
        while iters < target_iters && measure_start.elapsed() < 2 * self.measurement {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += ns * batch as f64;
            min_ns = min_ns.min(ns);
            iters += batch;
        }
        self.report = Some(Report {
            mean_ns: total_ns / iters.max(1) as f64,
            min_ns,
            iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a benchmark group: `criterion_group!(name, fn_a, fn_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(group_a, group_b)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut b = Bencher {
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
            quick: true,
            report: None,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.report.is_some());
    }

    #[test]
    fn bench_function_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
