//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree as JSON text and parses it
//! back.  Floats round-trip exactly: they are printed with Rust's
//! shortest-round-trip formatting and re-parsed with the correctly rounded
//! `f64::from_str`.

#![forbid(unsafe_code)]

pub use serde::Error;
pub use serde::Value;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` to a human-readable, indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips.
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found {other:?}"
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found {other:?}"
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the next escape must be a low
                            // surrogate, otherwise the input is malformed.
                            self.eat_literal("\\u")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::custom(format!(
                                    "expected low surrogate after \\u{hi:04x}, found \\u{lo:04x}"
                                )));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                        );
                    }
                    other => return Err(Error::custom(format!("invalid escape {other:?}"))),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the original slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let decoded = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    s.push_str(decoded);
                    self.pos = end;
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string("hi\n\"quoted\"").unwrap(), r#""hi\n\"quoted\"""#);
        assert_eq!(from_str::<String>(r#""hi\n\"q\"""#).unwrap(), "hi\n\"q\"");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0, -2.5e-7, 1e300, std::f64::consts::PI, 1.0 / 3.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn vectors_and_options() {
        let v = vec![Some(1.5f64), None, Some(-3.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,null,-3.0]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn nested_values_round_trip() {
        let json = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":[true,false]}}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
        let round = to_string(&s).unwrap();
        let back: String = from_str(&round).unwrap();
        assert_eq!(s, back);
        let paired: String = from_str(r#""😀""#).unwrap();
        assert_eq!(paired, "😀");
    }

    #[test]
    fn malformed_surrogates_are_errors_not_panics() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(from_str::<String>(r#""\ud800A""#).is_err());
        // High surrogate followed by another high surrogate.
        assert!(from_str::<String>(r#""\ud800\ud800""#).is_err());
        // Unpaired high surrogate at end of string.
        assert!(from_str::<String>(r#""\ud800""#).is_err());
    }

    #[test]
    fn out_of_range_float_to_u64_is_an_error() {
        // 1.85e19 exceeds u64::MAX; must error, not saturate.
        assert!(from_str::<u64>("18500000000000000000").is_err());
        assert!(from_str::<u64>("18400000000000000000").is_ok());
        assert!(from_str::<u64>("-1").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
