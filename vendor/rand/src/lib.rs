//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing the subset of the 0.9 API this workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`]
//! * [`seq::SliceRandom::shuffle`] / [`seq::IndexedRandom::choose`]
//!
//! The generator is SplitMix64: deterministic, fast, and statistically
//! adequate for synthetic data generation and reproducible tests.  It is
//! **not** cryptographically secure, which is fine for this workspace.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be deterministically constructed from seeds.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::random`] can produce.
pub trait StandardSample: Sized {
    /// Draw one value from the "standard" distribution of the type
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.  Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let v = self.start + (self.end - self.start) * unit_f64(rng) as $t;
                // Rounding (f64→f32 narrowing, or the mul/add themselves)
                // can land exactly on the excluded upper bound; remap that
                // measure-zero case to keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let v = lo + (hi - lo) * unit_f64(rng) as $t;
                if v > hi {
                    hi
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the type's standard distribution (uniform `[0, 1)`
    /// for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike upstream `rand`, the stream is guaranteed stable across
    /// versions of this vendored crate — tests may rely on exact values.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for mutable slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random element selection for slices.
    pub trait IndexedRandom {
        /// Element type of the collection.
        type Output;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_runs() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5..10usize);
            assert!((5..10).contains(&v));
            let w = rng.random_range(-3..=3i64);
            assert!((-3..=3).contains(&w));
            let f = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
