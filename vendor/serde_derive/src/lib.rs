//! Derive macros for the vendored `serde` shim.
//!
//! Implemented without `syn`/`quote` (the container has no registry
//! access): the input item is parsed with a hand-rolled token walk and the
//! generated impl is assembled as source text, then re-parsed into a
//! `TokenStream`.  Supported shapes — non-generic named-field structs,
//! unit structs, tuple structs, and enums with unit / tuple / struct
//! variants — cover every derive in this workspace.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields; the count is the arity.
    Unnamed(usize),
    /// Named field identifiers in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `union`, or modifiers we don't expect on data types.
                return Err(format!("serde_derive: unsupported item keyword `{s}`"));
            }
            Some(_) => {}
            None => return Err("serde_derive: unexpected end of input".into()),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive: generic type `{name}` is not supported by the vendored shim"
            ));
        }
    }

    match iter.next() {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(body.stream())?),
                })
            } else {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(body.stream())?,
                })
            }
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::Struct {
                name,
                fields: Fields::Unnamed(count_top_level_commas(body.stream())),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
            name,
            fields: Fields::Unit,
        }),
        other => Err(format!("serde_derive: unexpected body {other:?}")),
    }
}

/// Number of comma-separated entries in a token stream, ignoring commas
/// nested in groups or between `<`/`>` (generic argument lists) and the
/// `>` of `->` (fn-pointer types).  A trailing comma does not add an
/// entry.
fn count_top_level_commas(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut entries = 0usize;
    let mut tokens_since_comma = false;
    let mut arrow_pending = false; // previous token was the `-` of `->`
    for tt in stream {
        let mut next_arrow_pending = false;
        match &tt {
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '-' if p.spacing() == Spacing::Joint => next_arrow_pending = true,
                    '<' => angle_depth += 1,
                    '>' if !arrow_pending => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        entries += 1;
                        tokens_since_comma = false;
                        arrow_pending = false;
                        continue;
                    }
                    _ => {}
                }
                tokens_since_comma = true;
            }
            _ => tokens_since_comma = true,
        }
        arrow_pending = next_arrow_pending;
    }
    if tokens_since_comma {
        entries + 1
    } else {
        entries
    }
}

/// Advance `iter` past a type (or expression) up to and including the next
/// top-level comma, respecting nested groups, generic argument lists and
/// the `>` of `->`.
fn skip_to_top_level_comma(iter: &mut dyn Iterator<Item = TokenTree>) {
    let mut angle_depth = 0i32;
    let mut arrow_pending = false;
    for tt in iter {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '-' if p.spacing() == Spacing::Joint => {
                    arrow_pending = true;
                    continue;
                }
                '<' => angle_depth += 1,
                '>' if !arrow_pending => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        arrow_pending = false;
    }
}

/// Split `a: T, b: U, ...` (with optional per-field attrs/vis) into field
/// names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field_name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!("serde_derive: unexpected field token {other:?}"))
                }
                None => return Ok(fields),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde_derive: expected `:`, got {other:?}")),
        }
        fields.push(field_name);
        // Skip the type up to the next top-level comma.
        skip_to_top_level_comma(&mut iter);
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes / doc comments before the variant name.
        let variant_name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!("serde_derive: unexpected variant token {other:?}"))
                }
                None => return Ok(variants),
            }
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_commas(g.stream());
                iter.next();
                Fields::Unnamed(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                iter.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant {
            name: variant_name,
            fields,
        });
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        skip_to_top_level_comma(&mut iter);
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                // Real serde_json encodes unit structs as `null`; match it
                // so persisted JSON survives a swap to the real crates.
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Unnamed(arity) => {
                    if *arity == 1 {
                        "::serde::Serialize::to_value(&self.0)".to_string()
                    } else {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                            .collect();
                        format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                    }
                }
                Fields::Named(field_names) => object_expr(field_names.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(String::from({vname:?})),\n"
                        ));
                    }
                    Fields::Unnamed(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(String::from({vname:?}), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(field_names) => {
                        let payload =
                            object_expr(field_names.iter().map(|f| {
                                (f.clone(), format!("::serde::Serialize::to_value({f})"))
                            }));
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(String::from({vname:?}), {payload})]),\n",
                            field_names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn object_expr(entries: impl Iterator<Item = (String, String)>) -> String {
    let parts: Vec<String> = entries
        .map(|(key, value)| format!("(String::from({key:?}), {value})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", parts.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match __value {{\n\
                         ::serde::Value::Str(s) if s == {name:?} => Ok({name}),\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::Error::custom(format!(\n\
                             \"expected unit struct {name}, found {{}}\", other.kind()))),\n\
                     }}"
                ),
                Fields::Unnamed(arity) => {
                    if *arity == 1 {
                        format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
                    } else {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        format!(
                            "{{\n\
                                 let __items = __value.as_array().ok_or_else(|| ::serde::Error::custom(\n\
                                     format!(\"expected array, found {{}}\", __value.kind())))?;\n\
                                 if __items.len() != {arity} {{\n\
                                     return Err(::serde::Error::custom(format!(\n\
                                         \"expected {arity} elements, found {{}}\", __items.len())));\n\
                                 }}\n\
                                 Ok({name}({}))\n\
                             }}",
                            elems.join(", ")
                        )
                    }
                }
                Fields::Named(field_names) => {
                    let inits: Vec<String> = field_names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::__field(__value, {f:?})?)?"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                    }
                    Fields::Unnamed(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?))"
                            )
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{\n\
                                     let __items = __payload.as_array().ok_or_else(|| ::serde::Error::custom(\n\
                                         format!(\"expected array, found {{}}\", __payload.kind())))?;\n\
                                     if __items.len() != {arity} {{\n\
                                         return Err(::serde::Error::custom(format!(\n\
                                             \"expected {arity} elements, found {{}}\", __items.len())));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                elems.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("{vname:?} => {body},\n"));
                    }
                    Fields::Named(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__field(__payload, {f:?})?)?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vname:?} => Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = (&__entries[0].0, &__entries[0].1);\n\
                                 let _ = __payload;\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => Err(::serde::Error::custom(format!(\n\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"expected {name} variant, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
