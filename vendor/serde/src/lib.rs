//! Offline vendored stand-in for [`serde`](https://serde.rs).
//!
//! Instead of serde's visitor architecture this shim uses a simple
//! value-tree model: [`Serialize`] converts a type into a [`Value`] and
//! [`Deserialize`] reconstructs it.  The derive macros (re-exported from
//! `serde_derive`) generate those impls for plain structs and enums, which
//! covers every type in this workspace.  `serde_json` renders/parses the
//! [`Value`] tree as JSON text.
//!
//! The encoding follows serde's defaults so a future swap to the real
//! crates stays format-compatible: structs are JSON objects, unit enum
//! variants are strings, newtype/tuple/struct variants are single-key
//! objects (externally tagged).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Generic data value: the intermediate tree between Rust types and any
/// concrete format (JSON in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value does not fit an `i64`).
    UInt(u64),
    /// IEEE double.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view accepting any of the numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Signed-integer view (floats are accepted when integral).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    /// Unsigned-integer view (floats are accepted when integral).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            // Upper bound must stay below u64::MAX (~1.8446e19) so the cast
            // cannot silently saturate.
            Value::Float(v) if v.fract() == 0.0 && (0.0..1.8e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// Short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self`, reporting shape mismatches as [`Error`]s.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Look up a struct field in an object value (derive-macro helper).
pub fn __field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, Error> {
    let entries = value
        .as_object()
        .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", value.kind()))
                })?;
                <$t>::try_from(v).map_err(Error::custom)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, found {}", value.kind()))
                })?;
                <$t>::try_from(v).map_err(Error::custom)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value.as_f64().map(|v| v as $t).ok_or_else(|| {
                    Error::custom(format!("expected number, found {}", value.kind()))
                })
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array, found {}", value.kind()))
                })?;
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys usable in JSON objects (strings and integers).
pub trait MapKey: Sized {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(Error::custom)
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // Deterministic output regardless of hasher iteration order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
