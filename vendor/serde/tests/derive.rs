//! Round-trip tests for the vendored derive macros, covering every item
//! shape the hand-rolled token parser supports — including the formatting
//! edge cases (trailing commas, fn-pointer-free generic types) that a
//! rustfmt pass can introduce.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

fn round_trip<T>(value: &T) -> T
where
    T: Serialize + Deserialize + std::fmt::Debug + PartialEq,
{
    let json = serde_json::to_string(value).unwrap();
    let back: T = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, value, "via {json}");
    back
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Named {
    id: u64,
    score: f64,
    label: String,
    tags: Vec<String>,
    maybe: Option<i32>,
    nested: HashMap<String, Vec<f64>>,
}

#[test]
fn named_struct_round_trips() {
    let mut nested = HashMap::new();
    nested.insert("a".to_string(), vec![1.5, -2.25]);
    round_trip(&Named {
        id: 42,
        score: 0.1,
        label: "hello \"world\"".to_string(),
        tags: vec!["x".into(), "y".into()],
        maybe: None,
        nested,
    });
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Unit;

#[test]
fn unit_struct_encodes_as_null() {
    assert_eq!(serde_json::to_string(&Unit).unwrap(), "null");
    round_trip(&Unit);
}

// Trailing commas after a rustfmt reflow must not change the parsed arity
// (rustfmt::skip keeps the fixture multiline with its trailing comma).
#[rustfmt::skip]
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Pair(
    f64,
    f64,
);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Wrapper(Vec<HashMap<String, u32>>);

#[test]
fn tuple_structs_round_trip() {
    round_trip(&Pair(1.25, -0.5));
    let mut m = HashMap::new();
    m.insert("k".to_string(), 7u32);
    round_trip(&Wrapper(vec![m]));
    // Newtype encoding: transparent, like upstream serde.
    assert_eq!(serde_json::to_string(&Wrapper(vec![])).unwrap(), "[]");
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum Shape {
    Unit,
    Newtype(f64),
    Tuple(i64, String),
    Named { x: f64, y: Option<Box<Shape>> },
}

#[test]
fn enums_round_trip_in_externally_tagged_form() {
    assert_eq!(serde_json::to_string(&Shape::Unit).unwrap(), "\"Unit\"");
    assert_eq!(
        serde_json::to_string(&Shape::Newtype(2.5)).unwrap(),
        "{\"Newtype\":2.5}"
    );
    round_trip(&Shape::Unit);
    round_trip(&Shape::Newtype(-1.0));
    round_trip(&Shape::Tuple(9, "t".into()));
    round_trip(&Shape::Named {
        x: 3.5,
        y: Some(Box::new(Shape::Unit)),
    });
}

#[test]
fn unknown_variant_is_an_error() {
    let err = serde_json::from_str::<Shape>("\"Nope\"").unwrap_err();
    assert!(err.to_string().contains("Nope"));
}

#[test]
fn missing_field_is_an_error() {
    let err = serde_json::from_str::<Pair>("[1.0]").unwrap_err();
    assert!(err.to_string().contains("2"));
}
