//! Offline vendored stand-in for [`proptest`](https://proptest-rs.github.io/).
//!
//! Supports the subset of the API this workspace uses: the [`proptest!`]
//! macro with an optional `#![proptest_config(...)]` header, range
//! strategies over numbers, [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: inputs are sampled from a deterministic
//! per-case RNG (seeded by the case index) instead of an entropy source,
//! and failing cases are reported without shrinking.  Deterministic
//! sampling makes CI runs exactly reproducible.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError { msg }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

/// Execution knobs for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Minimal deterministic RNG used to sample strategy inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministically derive the RNG for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                // Rounding can land exactly on the excluded upper bound;
                // remap that measure-zero case (same guard as vendor/rand).
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// A strategy yielding a constant value (`Just` in upstream proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — vectors of sampled elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.lo() as u128
                + (super::TestRng::next_u64(rng) as u128) % (self.hi() - self.lo()) as u128)
                as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    impl<S> VecStrategy<S> {
        fn lo(&self) -> usize {
            self.size.lo
        }
        fn hi(&self) -> usize {
            self.size.hi
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };

    /// Mirror of the `prop` module alias from upstream's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        config.cases,
                        err.message()
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_sample_in_bounds(x in 10u64..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let s = 0u64..100;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
