//! # zero-shot-db
//!
//! A from-scratch Rust reproduction of *"One Model to Rule them All: Towards
//! Zero-Shot Learning for Databases"* (Hilprecht & Binnig, CIDR 2022).
//!
//! This facade crate re-exports the workspace crates under stable module
//! names.  See the README for the architecture overview and the `examples/`
//! directory for runnable end-to-end pipelines.
//!
//! * [`catalog`] — schemas, statistics, synthetic schema generator.
//! * [`storage`] — in-memory column store, data generator, indexes.
//! * [`query`] — logical queries, workload generator, benchmark workloads.
//! * [`cardest`] — cardinality estimation (exact / histogram / sampling).
//! * [`engine`] — physical plans, optimizer, executor, runtime simulator.
//! * [`nn`] — minimal neural-network library used by all learned models.
//! * [`zeroshot`] — the paper's contribution: transferable graph encoding and
//!   the zero-shot cost model, training / few-shot / what-if pipelines.
//! * [`multitask`] — the "one model": a shared plan-graph encoder with
//!   per-task heads (cost, root cardinality, per-operator cardinality),
//!   jointly trained, and the learned-cardinality estimator that closes the
//!   loop into the optimizer.
//! * [`serve`] — production serving: persistent model registry, concurrent
//!   worker-pool inference with a fingerprint-keyed feature cache, metrics,
//!   and the multi-tenant TCP gateway.
//! * [`obs`] — observability primitives: per-thread striped counters /
//!   gauges / log-bucketed histograms, a checkpoint span tracer with
//!   wire-propagatable trace ids, and Prometheus text exposition.
//! * [`protocol`] — the framed binary wire protocol the gateway speaks
//!   (pure encode/decode, usable without sockets).
//! * [`client`] — blocking connection-pooled network client with pipelined
//!   request ids and reconnect-on-broken-pipe.
//! * [`baselines`] — workload-driven baselines (MSCN, E2E, scaled optimizer
//!   cost).

#![forbid(unsafe_code)]

pub use zsdb_baselines as baselines;
pub use zsdb_cardest as cardest;
pub use zsdb_catalog as catalog;
pub use zsdb_client as client;
pub use zsdb_core as zeroshot;
pub use zsdb_engine as engine;
pub use zsdb_multitask as multitask;
pub use zsdb_nn as nn;
pub use zsdb_obs as obs;
pub use zsdb_protocol as protocol;
pub use zsdb_query as query;
pub use zsdb_serve as serve;
pub use zsdb_storage as storage;
