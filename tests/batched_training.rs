//! ISSUE 3 acceptance: the batched training & inference engine is
//! bit-consistent with the per-example path and deterministic across
//! thread counts.
//!
//! * batched `predict_batch` output equals per-example `predict` output
//!   **exactly** (fixed summation order), end to end through a trained
//!   model on an unseen database;
//! * training with 1 thread and with 2 threads produces identical
//!   weights for the same seed (fixed micro-batch shard reduction
//!   order);
//! * the validation-split and early-stopping knobs of `TrainingConfig`
//!   are live.

use zero_shot_db::catalog::presets;
use zero_shot_db::query::WorkloadGenerator;
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::features::featurize_execution;
use zero_shot_db::zeroshot::{FeaturizerConfig, ModelConfig, PlanGraph, Trainer, TrainingConfig};
use zsdb_engine::QueryRunner;

fn corpus(db: &Database, queries: usize, seed: u64) -> Vec<PlanGraph> {
    let runner = QueryRunner::with_defaults(db);
    let workload = WorkloadGenerator::with_defaults().generate(db.catalog(), queries, seed);
    runner
        .run_workload(&workload, 0)
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect()
}

#[test]
fn batched_inference_is_bit_identical_to_per_example_inference() {
    let train_db = Database::generate(presets::ssb_like(0.02), 5);
    let graphs = corpus(&train_db, 25, 3);
    let trained = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 2,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    )
    .train(&graphs);

    // Unseen database: the serving scenario.
    let unseen = Database::generate(presets::imdb_like(0.02), 77);
    let eval_graphs = corpus(&unseen, 30, 11);

    for batch_len in [1usize, 2, 7, 30] {
        let refs: Vec<&PlanGraph> = eval_graphs.iter().take(batch_len).collect();
        let batched = trained.predict_batch(&refs);
        assert_eq!(batched.len(), refs.len());
        for (g, p) in refs.iter().zip(&batched) {
            assert_eq!(
                p.to_bits(),
                trained.predict(g).to_bits(),
                "batched prediction must equal per-example prediction exactly"
            );
        }
    }
}

#[test]
fn thread_count_does_not_change_trained_weights() {
    let db = Database::generate(presets::imdb_like(0.02), 13);
    let graphs = corpus(&db, 40, 7);
    let config = TrainingConfig {
        epochs: 2,
        batch_size: 16,
        microbatch_size: 4,
        validation_fraction: 0.2,
        early_stopping_patience: 0,
        ..TrainingConfig::tiny()
    };
    let train_with = |threads: usize| {
        Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig { threads, ..config },
            FeaturizerConfig::exact(),
        )
        .train(&graphs)
    };
    let single = train_with(1);
    let dual = train_with(2);
    assert_eq!(
        single.model.to_json(),
        dual.model.to_json(),
        "1-thread and 2-thread training must produce identical weights"
    );
    for g in graphs.iter().take(8) {
        assert_eq!(single.predict(g).to_bits(), dual.predict(g).to_bits());
    }
    assert_eq!(single.training_curve, dual.training_curve);
}

#[test]
fn validation_and_early_stopping_are_live_through_the_facade() {
    let db = Database::generate(presets::imdb_like(0.02), 17);
    let graphs = corpus(&db, 40, 19);
    let trained = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 30,
            validation_fraction: 0.25,
            early_stopping_patience: 2,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    )
    .train(&graphs);
    assert!(trained.final_validation_qerror.is_some());
    assert_eq!(trained.validation_curve.len(), trained.training_curve.len());
    assert!(trained.training_curve.len() <= 30);
}
