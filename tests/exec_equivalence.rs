//! Equivalence of the two execution strategies.
//!
//! The vectorized batch executor ([`Executor`]) must be *result-identical*
//! to the row-at-a-time reference ([`RowExecutor`]): same aggregate values
//! (bit-identical floats), same true cardinalities, same work metrics on
//! every operator of every plan.  This is the contract that makes the
//! batched rewrite safe for training-data generation — observed-runtime
//! labels cannot depend on which executor produced them.
//!
//! The suite covers optimizer-produced plans over random schemas and
//! workloads (including NULL-heavy databases and with physical indexes),
//! predicates that filter out every row, hand-built nested-loop plans and
//! the mistyped-join-key regression.

use proptest::prelude::*;
use zero_shot_db::cardest::PostgresLikeEstimator;
use zero_shot_db::catalog::{
    presets, ColumnMeta, ColumnStatistics, DataType, Distribution, GeneratorConfig, SchemaCatalog,
    SchemaGenerator, TableMeta, Value,
};
use zero_shot_db::engine::{
    EngineConfig, Executor, Optimizer, PhysOperator, PhysOperatorKind, PlanNode, QueryRunner,
    RowExecutor,
};
use zero_shot_db::query::{
    Aggregate, CmpOp, JoinCondition, Predicate, Query, WorkloadGenerator, WorkloadSpec,
};
use zero_shot_db::storage::{Database, TableData};

/// Plan `q` with the production optimizer and execute it with both
/// strategies, asserting full `QueryResult` equality (aggregates, actual
/// cardinalities and work metrics on every node).
fn assert_equivalent(db: &Database, q: &Query) {
    let est = PostgresLikeEstimator::new(db.catalog().clone());
    let optimizer = Optimizer::new(db, EngineConfig::default(), &est);
    let plan = optimizer.plan(q);
    assert_plan_equivalent(db, &plan);
}

fn assert_plan_equivalent(db: &Database, plan: &PlanNode) {
    let batched = Executor::new(db).execute(plan);
    let row = RowExecutor::new(db).execute(plan);
    assert_eq!(batched, row, "batched and row-at-a-time execution diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random schemas × random workloads: both executors agree on every
    /// optimizer plan.
    #[test]
    fn random_workloads_are_equivalent(seed in 0u64..5_000) {
        let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("equiv_db", seed);
        let db = Database::generate(schema, seed ^ 0xBEEF);
        let queries = WorkloadGenerator::new(WorkloadSpec {
            max_tables: 3,
            ..WorkloadSpec::default()
        })
        .generate(db.catalog(), 4, seed);
        for q in &queries {
            assert_equivalent(&db, q);
        }
    }

    /// NULL-heavy databases: predicates and aggregates must treat NULL
    /// lanes identically in both strategies.
    #[test]
    fn null_heavy_workloads_are_equivalent(seed in 0u64..5_000) {
        let config = GeneratorConfig {
            max_null_fraction: 0.9,
            ..GeneratorConfig::tiny()
        };
        let schema = SchemaGenerator::new(config).generate("null_db", seed);
        let db = Database::generate(schema, seed ^ 0xA0);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 4, seed);
        for q in &queries {
            assert_equivalent(&db, q);
        }
    }

    /// With physical indexes present the optimizer may pick index scans;
    /// both executors must agree on those plans too.
    #[test]
    fn indexed_plans_are_equivalent(seed in 0u64..2_000) {
        let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("idx_db", seed);
        let mut db = Database::generate(schema, seed);
        // Index every table's first non-key column.
        let num_tables = db.catalog().tables().len();
        for t in 0..num_tables {
            let table = zero_shot_db::catalog::TableId(t as u32);
            if db.catalog().table(table).num_columns() > 1 {
                let col = zero_shot_db::catalog::ColumnRef::new(
                    table,
                    zero_shot_db::catalog::ColumnId(1),
                );
                db.create_index(col);
            }
        }
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 4, seed);
        for q in &queries {
            assert_equivalent(&db, q);
        }
    }
}

#[test]
fn all_filtered_batches_are_equivalent() {
    // A predicate no row satisfies: every batch is fully filtered, the
    // batched scan must not emit a single batch and the aggregates must be
    // the empty-input values in both strategies.
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let year = db
        .catalog()
        .resolve_column("title", "production_year")
        .unwrap();
    let (title, _) = db.catalog().table_by_name("title").unwrap();
    for aggregates in [
        vec![Aggregate::count_star()],
        vec![
            Aggregate::over(zero_shot_db::query::AggFunc::Sum, year),
            Aggregate::over(zero_shot_db::query::AggFunc::Min, year),
            Aggregate::over(zero_shot_db::query::AggFunc::Count, year),
        ],
    ] {
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Lt, Value::Int(i64::MIN + 1))],
            aggregates,
        };
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let plan = optimizer.plan(&q);
        let batched = Executor::new(&db).execute(&plan);
        let row = RowExecutor::new(&db).execute(&plan);
        assert_eq!(batched, row);
        assert_eq!(batched.root.children[0].actual_cardinality, 0);
    }
}

#[test]
fn join_workloads_are_equivalent() {
    let db = Database::generate(presets::imdb_like(0.03), 17);
    let queries = WorkloadGenerator::new(WorkloadSpec {
        max_tables: 4,
        ..WorkloadSpec::default()
    })
    .generate(db.catalog(), 12, 23);
    for q in &queries {
        assert_equivalent(&db, q);
    }
}

#[test]
fn hand_built_nested_loop_plans_are_equivalent() {
    let db = Database::generate(presets::imdb_like(0.02), 29);
    let catalog = db.catalog();
    let (title, _) = catalog.table_by_name("title").unwrap();
    let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
    let title_id = catalog.resolve_column("title", "id").unwrap();
    let movie_id = catalog
        .resolve_column("movie_companies", "movie_id")
        .unwrap();
    let scan = |t| PlanNode {
        op: PhysOperator::SeqScan {
            table: t,
            predicates: vec![],
        },
        children: vec![],
        est_cardinality: 1.0,
        est_cost: 1.0,
        output_width: 8.0,
    };
    let plan = PlanNode {
        op: PhysOperator::NestedLoopJoin {
            outer_key: movie_id,
            inner_key: title_id,
        },
        children: vec![scan(mc), scan(title)],
        est_cardinality: 1.0,
        est_cost: 1.0,
        output_width: 16.0,
    };
    assert_plan_equivalent(&db, &plan);
}

/// Two-table database whose "join" columns are deliberately mistyped: an
/// `Int` key on one side, a `Bool` column on the other, with numerically
/// overlapping values (`1` vs `true`).
fn mistyped_join_db() -> (Database, Query) {
    let mut catalog = SchemaCatalog::new("mistyped");
    let stats = |min: f64, max: f64| ColumnStatistics {
        distinct_count: 2,
        null_fraction: 0.0,
        min: Some(min),
        max: Some(max),
        distribution: Distribution::Uniform,
    };
    let left = catalog
        .add_table(TableMeta::new(
            "left",
            vec![
                ColumnMeta::primary_key("id", 4),
                ColumnMeta::new("k_int", DataType::Int, stats(0.0, 1.0)),
            ],
            4,
        ))
        .unwrap();
    let right = catalog
        .add_table(TableMeta::new(
            "right",
            vec![
                ColumnMeta::primary_key("id", 4),
                ColumnMeta::new("k_bool", DataType::Bool, stats(0.0, 1.0)),
            ],
            4,
        ))
        .unwrap();
    let left_key = catalog.resolve_column("left", "k_int").unwrap();
    let right_key = catalog.resolve_column("right", "k_bool").unwrap();
    // Declare the mistyped columns as a foreign key so the workload layer
    // accepts the join.
    catalog.add_foreign_key(left_key, right_key).unwrap();

    let mut left_data = TableData::empty(catalog.table(left));
    let mut right_data = TableData::empty(catalog.table(right));
    for i in 0..4i64 {
        left_data.push_row(&[Value::Int(i), Value::Int(i % 2)]);
        right_data.push_row(&[Value::Int(i), Value::Bool(i % 2 == 1)]);
    }
    let db = Database::from_parts(catalog, vec![left_data, right_data]);
    let q = Query {
        tables: vec![left, right],
        joins: vec![JoinCondition::new(left_key, right_key)],
        predicates: vec![],
        aggregates: vec![Aggregate::count_star()],
    };
    (db, q)
}

#[test]
fn mistyped_join_keys_never_match() {
    // Regression: the old executor coerced Cat and Bool into the Int key
    // space, so Int(1) joined Bool(true).  Typed join keys must produce
    // zero matches here — in both executors and in both join algorithms.
    let (db, q) = mistyped_join_db();
    let est = PostgresLikeEstimator::new(db.catalog().clone());
    let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
    let plan = optimizer.plan(&q);
    let batched = Executor::new(&db).execute(&plan);
    let row = RowExecutor::new(&db).execute(&plan);
    assert_eq!(batched, row);
    assert_eq!(batched.aggregates[0], Value::Int(0));

    let left_key = db.catalog().resolve_column("left", "k_int").unwrap();
    let right_key = db.catalog().resolve_column("right", "k_bool").unwrap();
    let scan = |t| PlanNode {
        op: PhysOperator::SeqScan {
            table: t,
            predicates: vec![],
        },
        children: vec![],
        est_cardinality: 4.0,
        est_cost: 1.0,
        output_width: 8.0,
    };
    let (left, _) = db.catalog().table_by_name("left").unwrap();
    let (right, _) = db.catalog().table_by_name("right").unwrap();
    for op in [
        PhysOperator::HashJoin {
            build_key: left_key,
            probe_key: right_key,
        },
        PhysOperator::NestedLoopJoin {
            outer_key: left_key,
            inner_key: right_key,
        },
    ] {
        let join = PlanNode {
            op,
            children: vec![scan(left), scan(right)],
            est_cardinality: 1.0,
            est_cost: 1.0,
            output_width: 16.0,
        };
        let batched = Executor::new(&db).execute(&join);
        let row = RowExecutor::new(&db).execute(&join);
        assert_eq!(batched, row);
        assert_eq!(batched.root.actual_cardinality, 0);
    }
}

#[test]
fn runner_baselines_agree_across_a_workload() {
    // End-to-end through QueryRunner: simulated runtimes (noiseless) are
    // identical because the executed trees are identical.
    let db = Database::generate(presets::imdb_like(0.02), 41);
    let runner = QueryRunner::new(
        &db,
        EngineConfig::default(),
        zero_shot_db::engine::HardwareProfile::default().noiseless(),
    );
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 15, 7);
    for (i, q) in queries.iter().enumerate() {
        let plan = runner.plan(q);
        let batched = runner.run_plan(q, plan.clone(), i as u64);
        let row = runner.run_plan_row_baseline(q, plan, i as u64);
        assert_eq!(batched.executed, row.executed);
        assert_eq!(batched.aggregates, row.aggregates);
        assert_eq!(batched.runtime_secs, row.runtime_secs);
    }
    // Work-metric identity must also hold operator-kind by operator-kind.
    let plan = runner.plan(&queries[0]);
    let batched = Executor::new(&db).execute(&plan);
    for node in batched.root.iter() {
        assert!(matches!(
            node.kind,
            PhysOperatorKind::SeqScan
                | PhysOperatorKind::IndexScan
                | PhysOperatorKind::HashJoin
                | PhysOperatorKind::NestedLoopJoin
                | PhysOperatorKind::Aggregate
        ));
    }
}

#[test]
fn batched_executor_matches_brute_force_counts() {
    // Independent oracle: COUNT(*) with a predicate must equal a direct
    // scan over the column data (not just agree with the row executor).
    let db = Database::generate(presets::imdb_like(0.02), 53);
    let year = db
        .catalog()
        .resolve_column("title", "production_year")
        .unwrap();
    let (title, _) = db.catalog().table_by_name("title").unwrap();
    for (op, lit) in [
        (CmpOp::Gt, Value::Int(2000)),
        (CmpOp::Leq, Value::Int(1990)),
        (CmpOp::Eq, Value::Null),
    ] {
        let predicate = Predicate::new(year, op, lit);
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![predicate],
            aggregates: vec![Aggregate::count_star()],
        };
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let plan = optimizer.plan(&q);
        let result = Executor::new(&db).execute(&plan);
        let column = db.table_data(title).column(year.column);
        let expected = (0..column.len())
            .filter(|&r| predicate.matches(column.get(r)))
            .count() as i64;
        assert_eq!(result.aggregates[0], Value::Int(expected), "op {op}");
    }
}
