//! Cross-preset generalization matrix (ISSUE 5 satellite): leave-one-out
//! over the benchmark-style schema presets.  For every preset P the model
//! is trained on executions from all *other* presets (plus the tiny
//! generated-schema corpus) and evaluated zero-shot on P — asserting that
//! the transferable representation carries across schema families, and
//! that few-shot fine-tuning with a handful of P's own executions never
//! makes the held-out accuracy worse.

use zero_shot_db::catalog::{presets, SchemaCatalog};
use zero_shot_db::engine::QueryExecution;
use zero_shot_db::query::WorkloadSpec;
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{
    collect_for_database, collect_training_corpus, TrainingDataConfig,
};
use zero_shot_db::zeroshot::features::featurize_execution;
use zero_shot_db::zeroshot::train::median_q_error;
use zero_shot_db::zeroshot::{
    few_shot_finetune_with, FeaturizerConfig, FinetuneConfig, ModelConfig, PlanGraph, Trainer,
    TrainingConfig,
};
use zsdb_nn::{median, q_error};

type PresetFn = fn(f64) -> SchemaCatalog;

/// The schema-preset axis of the matrix.  Adding a preset to
/// `zsdb_catalog::presets` and listing it here automatically extends the
/// leave-one-out sweep.
const PRESETS: [(&str, PresetFn); 2] = [
    ("imdb_like", presets::imdb_like),
    ("ssb_like", presets::ssb_like),
];

const PRESET_SCALE: f64 = 0.02;
const QUERIES_PER_PRESET: usize = 50;
const EVAL_QUERIES: usize = 40;
const FEW_SHOT_BUDGET: usize = 20;

fn preset_executions(build: PresetFn, db_seed: u64, n: usize) -> (Database, Vec<QueryExecution>) {
    let db = Database::generate(build(PRESET_SCALE), db_seed);
    let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), n, db_seed ^ 0x5A);
    (db, executions)
}

#[test]
fn leave_one_out_over_presets_with_few_shot_never_worse() {
    // The generated-schema corpus is shared by every matrix cell (it
    // contains no preset), so build it once.
    let data_config = TrainingDataConfig::tiny();
    let corpus = collect_training_corpus(&data_config);
    let schemas = zero_shot_db::catalog::SchemaGenerator::new(data_config.schema_config.clone())
        .generate_corpus("train", data_config.num_databases, data_config.seed);
    let trainer = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 15,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    );
    let base_graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas.iter().find(|s| s.name == name).expect("catalog")
    });

    for (held_out_name, held_out_preset) in PRESETS {
        // ---- Train on every preset except the held-out one -----------
        let mut train_graphs = base_graphs.clone();
        for (name, build) in PRESETS {
            if name == held_out_name {
                continue;
            }
            let (db, executions) = preset_executions(build, 11, QUERIES_PER_PRESET);
            train_graphs.extend(
                executions
                    .iter()
                    .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact())),
            );
        }
        let model = trainer.train(&train_graphs);

        // ---- Zero-shot on the held-out preset ------------------------
        let (held_db, held_execs) =
            preset_executions(held_out_preset, 42, FEW_SHOT_BUDGET + EVAL_QUERIES);
        let (few_shot_set, holdout) = held_execs.split_at(FEW_SHOT_BUDGET);
        let holdout_graphs: Vec<PlanGraph> = holdout
            .iter()
            .map(|e| featurize_execution(held_db.catalog(), e, FeaturizerConfig::exact()))
            .collect();
        let zero_shot_q = median_q_error(&model.model, &holdout_graphs);

        // Naive baseline: always predict the mean training runtime.
        let mean_runtime = train_graphs
            .iter()
            .filter_map(|g| g.runtime_secs)
            .sum::<f64>()
            / train_graphs.len() as f64;
        let naive_q = median(
            &holdout
                .iter()
                .map(|e| q_error(mean_runtime, e.runtime_secs))
                .collect::<Vec<_>>(),
        );
        // A mean-runtime predictor can be accidentally competitive when
        // the holdout's median runtime lands near the training mean, so
        // require beating it *or* an absolutely-good median q-error.
        assert!(
            zero_shot_q < naive_q || zero_shot_q < 2.0,
            "[hold out {held_out_name}] zero-shot {zero_shot_q:.3} must beat naive {naive_q:.3} \
             or be < 2.0"
        );
        assert!(
            zero_shot_q < 6.0,
            "[hold out {held_out_name}] zero-shot median q-error too high: {zero_shot_q:.3}"
        );

        // ---- Few-shot fine-tuning never makes it worse ---------------
        let finetuned = few_shot_finetune_with(
            &model,
            &held_db,
            few_shot_set,
            FinetuneConfig {
                epochs: 30,
                learning_rate: 3e-4,
                ..FinetuneConfig::default()
            },
        );
        let few_shot_q = median_q_error(&finetuned.model, &holdout_graphs);
        assert!(
            few_shot_q <= zero_shot_q * 1.05,
            "[hold out {held_out_name}] few-shot must never make it worse: \
             {zero_shot_q:.3} -> {few_shot_q:.3}"
        );
        println!(
            "hold out {held_out_name}: naive {naive_q:.3} · zero-shot {zero_shot_q:.3} · \
             few-shot({FEW_SHOT_BUDGET}) {few_shot_q:.3}"
        );
    }
}
