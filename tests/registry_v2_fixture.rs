//! Backwards-compatibility fixture: a committed **version-2** registry
//! artifact (the pre-`PlanEncoder` weight layout from before the
//! multi-task subsystem) must be rejected by this build with a clean
//! [`ServeError::FormatVersionMismatch`] — never a parse panic or a
//! silently mis-loaded model.
//!
//! The fixture under `tests/fixtures/registry_v2/` is a real artifact
//! directory layout (`cost/v0001/{manifest,model}.json`) whose manifest
//! records `format_version: 2`.

use std::path::Path;
use zero_shot_db::serve::{ModelRegistry, ServeError, ARTIFACT_FORMAT_VERSION};

fn fixture_registry() -> ModelRegistry {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/registry_v2");
    assert!(
        root.join("cost/v0001/manifest.json").exists(),
        "committed v2 fixture missing"
    );
    ModelRegistry::open(root).expect("open fixture registry")
}

#[test]
fn v2_manifest_is_rejected_with_a_clean_format_mismatch() {
    let registry = fixture_registry();
    // The artifact is still *enumerable* — discovery does not require
    // loading.
    assert_eq!(registry.versions("cost").unwrap(), vec![1]);
    assert_eq!(registry.latest("cost").unwrap(), 1);

    match registry.manifest("cost", 1) {
        Err(ServeError::FormatVersionMismatch { found, supported }) => {
            assert_eq!(found, 2);
            assert_eq!(supported, ARTIFACT_FORMAT_VERSION);
        }
        other => panic!("expected a clean format mismatch, got {other:?}"),
    }
}

#[test]
fn v2_model_load_fails_cleanly_not_with_a_parse_panic() {
    let registry = fixture_registry();
    match registry.load("cost", 1) {
        Err(ServeError::FormatVersionMismatch { found: 2, .. }) => {}
        other => panic!("expected a clean format mismatch, got {other:?}"),
    }
    // The multi-task loader reports the artifact as absent (it is a
    // single-task artifact), not as corrupted.
    match registry.load_multitask("cost", 1) {
        Err(ServeError::NotFound { .. }) => {}
        other => panic!("expected NotFound for the multitask loader, got {other:?}"),
    }
}

#[test]
fn error_message_names_both_versions() {
    let registry = fixture_registry();
    let err = registry.manifest("cost", 1).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains('2'),
        "message should name the found version"
    );
    assert!(
        message.contains(&ARTIFACT_FORMAT_VERSION.to_string()),
        "message should name the supported version"
    );
}
