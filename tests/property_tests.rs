//! Property-based tests over the core invariants of the workspace:
//! generated schemas/workloads are always valid, plans always cover their
//! queries, executions are deterministic, featurization is structurally
//! sound and Q-errors behave like a metric.

use proptest::prelude::*;
use zero_shot_db::catalog::{GeneratorConfig, SchemaGenerator};
use zero_shot_db::engine::QueryRunner;
use zero_shot_db::nn::{percentile, q_error};
use zero_shot_db::query::{WorkloadGenerator, WorkloadSpec};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::features::{featurize_execution, FeaturizerConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated schema yields valid workloads whose optimizer plans
    /// scan exactly the queried tables and whose graphs are topologically
    /// ordered.
    #[test]
    fn generated_schemas_workloads_and_plans_are_consistent(seed in 0u64..5_000) {
        let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("prop_db", seed);
        let db = Database::generate(schema, seed ^ 0xF00D);
        let queries = WorkloadGenerator::new(WorkloadSpec {
            max_tables: 3,
            ..WorkloadSpec::default()
        })
        .generate(db.catalog(), 3, seed);
        let runner = QueryRunner::with_defaults(&db);
        for q in &queries {
            prop_assert!(q.validate(db.catalog()).is_ok());
            let execution = runner.run(q, seed);
            prop_assert_eq!(execution.plan.scanned_tables().len(), q.num_tables());
            prop_assert!(execution.runtime_secs > 0.0);
            let graph = featurize_execution(db.catalog(), &execution, FeaturizerConfig::exact());
            prop_assert_eq!(graph.root, graph.len() - 1);
            for (i, node) in graph.nodes.iter().enumerate() {
                for &c in &node.children {
                    prop_assert!(c < i);
                }
            }
        }
    }

    /// Executions are bit-for-bit deterministic given the same seeds.
    #[test]
    fn executions_are_deterministic(seed in 0u64..2_000) {
        let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("prop_db", seed);
        let db = Database::generate(schema, 1);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 1, seed);
        let runner = QueryRunner::with_defaults(&db);
        let a = runner.run(&queries[0], seed);
        let b = runner.run(&queries[0], seed);
        prop_assert_eq!(a.runtime_secs, b.runtime_secs);
        prop_assert_eq!(a.aggregates, b.aggregates);
    }

    /// Q-error is symmetric, ≥ 1 and multiplicative in the error factor.
    #[test]
    fn q_error_properties(actual in 1e-6f64..1e3, factor in 1.0f64..1e3) {
        let over = q_error(actual * factor, actual);
        let under = q_error(actual / factor, actual);
        prop_assert!((over - factor).abs() < 1e-6 * factor);
        prop_assert!((under - factor).abs() < 1e-6 * factor);
        prop_assert!(q_error(actual, actual) >= 1.0);
    }

    /// Percentiles are monotone in `p` and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(mut values in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let p50 = percentile(&values, 50.0);
        let p95 = percentile(&values, 95.0);
        let p100 = percentile(&values, 100.0);
        prop_assert!(p50 <= p95 + 1e-9);
        prop_assert!(p95 <= p100 + 1e-9);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(p100 <= values[values.len() - 1] + 1e-9);
        prop_assert!(percentile(&values, 0.0) >= values[0] - 1e-9);
    }
}
