//! Property-based tests over the core invariants of the workspace:
//! generated schemas/workloads are always valid, plans always cover their
//! queries, executions are deterministic, featurization is structurally
//! sound, Q-errors behave like a metric, **every cardinality
//! estimator** — classical and learned — stays sane on arbitrary
//! predicates, and the sharded prediction server answers any request
//! schedule bit-identically to a single-shard server, hot-swaps
//! included.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::OnceLock;
use zero_shot_db::cardest::{
    CardinalityEstimator, ExactEstimator, HistogramEstimator, PostgresLikeEstimator,
    SamplingEstimator,
};
use zero_shot_db::catalog::{presets, GeneratorConfig, SchemaGenerator, Value};
use zero_shot_db::engine::ObservationLog;
use zero_shot_db::engine::QueryRunner;
use zero_shot_db::multitask::{
    sample_from_execution, LearnedCardEstimator, MultiTaskConfig, MultiTaskTrainer,
    TrainedMultiTaskModel,
};
use zero_shot_db::nn::{percentile, q_error};
use zero_shot_db::query::{CmpOp, Predicate, Query, WorkloadGenerator, WorkloadSpec};
use zero_shot_db::serve::{DriftDetector, PredictionServer, ServerConfig};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::features::{featurize_execution, FeaturizerConfig};
use zero_shot_db::zeroshot::{TrainedModel, TrainingConfig};
use zsdb_bench::tiny_serving_fixture;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated schema yields valid workloads whose optimizer plans
    /// scan exactly the queried tables and whose graphs are topologically
    /// ordered.
    #[test]
    fn generated_schemas_workloads_and_plans_are_consistent(seed in 0u64..5_000) {
        let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("prop_db", seed);
        let db = Database::generate(schema, seed ^ 0xF00D);
        let queries = WorkloadGenerator::new(WorkloadSpec {
            max_tables: 3,
            ..WorkloadSpec::default()
        })
        .generate(db.catalog(), 3, seed);
        let runner = QueryRunner::with_defaults(&db);
        for q in &queries {
            prop_assert!(q.validate(db.catalog()).is_ok());
            let execution = runner.run(q, seed);
            prop_assert_eq!(execution.plan.scanned_tables().len(), q.num_tables());
            prop_assert!(execution.runtime_secs > 0.0);
            let graph = featurize_execution(db.catalog(), &execution, FeaturizerConfig::exact());
            prop_assert_eq!(graph.root, graph.len() - 1);
            for (i, node) in graph.nodes.iter().enumerate() {
                for &c in &node.children {
                    prop_assert!(c < i);
                }
            }
        }
    }

    /// Executions are bit-for-bit deterministic given the same seeds.
    #[test]
    fn executions_are_deterministic(seed in 0u64..2_000) {
        let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("prop_db", seed);
        let db = Database::generate(schema, 1);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 1, seed);
        let runner = QueryRunner::with_defaults(&db);
        let a = runner.run(&queries[0], seed);
        let b = runner.run(&queries[0], seed);
        prop_assert_eq!(a.runtime_secs, b.runtime_secs);
        prop_assert_eq!(a.aggregates, b.aggregates);
    }

    /// Q-error is symmetric, ≥ 1 and multiplicative in the error factor.
    #[test]
    fn q_error_properties(actual in 1e-6f64..1e3, factor in 1.0f64..1e3) {
        let over = q_error(actual * factor, actual);
        let under = q_error(actual / factor, actual);
        prop_assert!((over - factor).abs() < 1e-6 * factor);
        prop_assert!((under - factor).abs() < 1e-6 * factor);
        prop_assert!(q_error(actual, actual) >= 1.0);
    }

    /// Every [`CardinalityEstimator`] implementation — the classical four
    /// and the learned multi-task estimator — returns finite, non-NaN,
    /// non-negative estimates for arbitrary generated predicates,
    /// including hostile literal values (extreme integers/floats, NULLs,
    /// booleans, out-of-domain category codes).
    #[test]
    fn all_cardinality_estimators_stay_sane_on_arbitrary_predicates(seed in 0u64..5_000) {
        let (db, trained) = estimator_fixture();
        let learned =
            LearnedCardEstimator::new(trained, PostgresLikeEstimator::new(db.catalog().clone()));
        let postgres = PostgresLikeEstimator::new(db.catalog().clone());
        let (histogram, sampling, exact) = classical_fixture();
        let estimators: [&dyn CardinalityEstimator; 5] =
            [&postgres, histogram, sampling, exact, &learned];

        let mut rng = StdRng::seed_from_u64(seed);
        // A structurally valid (connected) query whose predicates are then
        // replaced by arbitrary — possibly hostile — ones.
        let base = WorkloadGenerator::new(WorkloadSpec {
            max_tables: 3,
            ..WorkloadSpec::default()
        })
        .generate(db.catalog(), 1, seed)
        .remove(0);
        let mut query = Query { predicates: Vec::new(), ..base };
        let num_predicates = rng.random_range(0..4);
        for _ in 0..num_predicates {
            query.predicates.push(arbitrary_predicate(&mut rng, db.catalog(), &query));
        }

        for est in estimators {
            for p in &query.predicates {
                let s = est.predicate_selectivity(p);
                prop_assert!(s.is_finite(), "selectivity {s} not finite");
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s), "selectivity {s} out of range");
            }
            for &t in &query.tables {
                let rows = est.table_cardinality(t, &query.predicates);
                prop_assert!(rows.is_finite() && !rows.is_nan(), "table rows {rows}");
                prop_assert!(rows >= 0.0, "negative table cardinality {rows}");
            }
            let card = est.query_cardinality(&query);
            prop_assert!(card.is_finite() && !card.is_nan(), "query cardinality {card}");
            prop_assert!(card > 0.0, "non-positive query cardinality {card}");
        }
        // The learned estimator additionally guarantees optimizer-ready
        // (≥ 1) join estimates.
        prop_assert!(learned.query_cardinality(&query) >= 1.0);
    }

    /// The observation log's reservoir honours its invariants under
    /// arbitrary insert sequences: never more than `capacity` retained,
    /// `total_seen` counts everything, nothing is evicted below
    /// capacity, every retained observation was actually inserted, and
    /// the retained set is a pure function of `(seed, sequence)`.
    #[test]
    fn observation_log_eviction_invariants(
        seed in 0u64..10_000,
        capacity in 1usize..24,
        fingerprints in prop::collection::vec(0u64..1_000, 0..120),
    ) {
        let run = || {
            let log: ObservationLog<u64> = ObservationLog::new(capacity, seed);
            for (i, &f) in fingerprints.iter().enumerate() {
                log.record(f, i as u64);
                prop_assert!(log.len() <= capacity, "len must never exceed capacity");
            }
            prop_assert_eq!(log.len(), fingerprints.len().min(capacity));
            prop_assert_eq!(log.total_seen(), fingerprints.len() as u64);
            Ok(log.drain())
        };
        let first = run()?;
        // Everything retained was inserted (fingerprint and payload
        // index agree with the insert sequence).
        for o in &first {
            prop_assert_eq!(fingerprints[o.payload as usize], o.fingerprint);
        }
        // Below capacity the log is lossless and ordered.
        if fingerprints.len() <= capacity {
            prop_assert_eq!(
                first.iter().map(|o| o.fingerprint).collect::<Vec<_>>(),
                fingerprints.clone()
            );
        }
        // Determinism: a second identical run retains the same sample.
        let second = run()?;
        prop_assert_eq!(
            first.iter().map(|o| (o.fingerprint, o.payload)).collect::<Vec<_>>(),
            second.iter().map(|o| (o.fingerprint, o.payload)).collect::<Vec<_>>()
        );
    }

    /// Drift-detector monotonicity: a well-predicted workload never
    /// drifts, and inflating every observed runtime by a sufficiently
    /// large constant factor *must* trigger, whatever the workload.
    #[test]
    fn drift_detector_inflation_must_trigger(
        threshold in 1.1f64..4.0,
        predictions in prop::collection::vec(1e-3f64..1e3, 1..40),
        observations in prop::collection::vec(1e-3f64..1e3, 1..40),
    ) {
        let pairs: Vec<(f64, f64)> = predictions
            .iter()
            .zip(&observations)
            .map(|(&p, &o)| (p, o))
            .collect();

        // Perfect predictions: rolling median is exactly 1 < threshold.
        let mut perfect = DriftDetector::new(threshold, pairs.len(), 1);
        for &(p, _) in &pairs {
            perfect.record(p, p);
        }
        prop_assert!(!perfect.drifted(), "perfect predictions must never drift");

        // Inflate every observation by a factor large enough that even
        // the most over-predicted pair (p/o ≤ 1e6) lands above the
        // threshold: q(p, F·o) ≥ F·o/p ≥ F·1e-6 ≥ threshold.
        let factor = threshold * 1e7;
        let mut inflated = DriftDetector::new(threshold, pairs.len(), pairs.len());
        for &(p, o) in &pairs {
            inflated.record(p, o * factor);
        }
        prop_assert!(
            inflated.drifted(),
            "systematic {factor}x runtime inflation must trigger (median {})",
            inflated.rolling_median()
        );
    }

    /// Percentiles are monotone in `p` and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(mut values in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let p50 = percentile(&values, 50.0);
        let p95 = percentile(&values, 95.0);
        let p100 = percentile(&values, 100.0);
        prop_assert!(p50 <= p95 + 1e-9);
        prop_assert!(p95 <= p100 + 1e-9);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(p100 <= values[values.len() - 1] + 1e-9);
        prop_assert!(percentile(&values, 0.0) >= values[0] - 1e-9);
    }
}

/// Shared fixtures for the estimator property test: databases, classical
/// estimators and a small trained multi-task model are expensive, so they
/// are built once and reused across all proptest cases.
struct ClassicalEstimators {
    histogram: HistogramEstimator,
    sampling: SamplingEstimator,
    exact: ExactEstimator,
}

fn property_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| Database::generate(presets::imdb_like(0.02), 55))
}

fn estimator_fixture() -> (&'static Database, &'static TrainedMultiTaskModel) {
    static MODEL: OnceLock<TrainedMultiTaskModel> = OnceLock::new();
    let db = property_db();
    let model = MODEL.get_or_init(|| {
        let train_db = Database::generate(presets::imdb_like(0.02), 56);
        let runner = QueryRunner::with_defaults(&train_db);
        let queries = WorkloadGenerator::with_defaults().generate(train_db.catalog(), 30, 8);
        let samples: Vec<_> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| sample_from_execution(train_db.catalog(), e, FeaturizerConfig::estimated()))
            .collect();
        MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            TrainingConfig {
                epochs: 4,
                validation_fraction: 0.0,
                early_stopping_patience: 0,
                ..TrainingConfig::default()
            },
            FeaturizerConfig::estimated(),
        )
        .train(&samples)
    });
    (db, model)
}

fn classical_fixture() -> (
    &'static HistogramEstimator,
    &'static SamplingEstimator,
    &'static ExactEstimator,
) {
    static CLASSICAL: OnceLock<ClassicalEstimators> = OnceLock::new();
    let all = CLASSICAL.get_or_init(|| {
        let db = property_db();
        ClassicalEstimators {
            histogram: HistogramEstimator::build(db, 3),
            sampling: SamplingEstimator::build(db, 1_000, 4),
            exact: ExactEstimator::build(db),
        }
    });
    (&all.histogram, &all.sampling, &all.exact)
}

/// One step of a serving schedule: a single blocking prediction or a
/// batched submission, both indexing into the fixture's plan pool.
#[derive(Debug, Clone)]
enum ServeOp {
    Single(usize),
    Batch(Vec<usize>),
}

/// Derive an arbitrary schedule from a seed (the vendored proptest has
/// no combinator strategies, so structured inputs follow the same
/// seeded-`StdRng` idiom as the estimator property test above).
fn arbitrary_schedule(seed: u64) -> (Vec<ServeOp>, usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5E4E);
    let len = rng.random_range(1..16);
    let ops = (0..len)
        .map(|_| {
            if rng.random_range(0..3) == 0 {
                let batch = rng.random_range(1..6);
                ServeOp::Batch(
                    (0..batch)
                        .map(|_| rng.random_range(0..NUM_SERVE_PLANS))
                        .collect(),
                )
            } else {
                ServeOp::Single(rng.random_range(0..NUM_SERVE_PLANS))
            }
        })
        .collect();
    let swap_at = rng.random_range(0..16);
    (ops, swap_at)
}

/// Serving fixture shared across proptest cases: two small trained
/// models (the second is the hot-swap target) and the plan pool requests
/// are drawn from.  Training is expensive, so it happens once.
fn serving_models() -> &'static (
    TrainedModel,
    TrainedModel,
    Vec<zero_shot_db::engine::PlanNode>,
) {
    static FIX: OnceLock<(
        TrainedModel,
        TrainedModel,
        Vec<zero_shot_db::engine::PlanNode>,
    )> = OnceLock::new();
    FIX.get_or_init(|| {
        let db = property_db();
        let (first, plans) = tiny_serving_fixture(db, NUM_SERVE_PLANS, 5);
        let (swapped, _) = tiny_serving_fixture(db, NUM_SERVE_PLANS, 9);
        (first, swapped, plans)
    })
}

const NUM_SERVE_PLANS: usize = 10;

/// Replay `ops` against a fresh server with the given shard count,
/// hot-swapping to the second model before step `swap_at`.  Requests are
/// issued one at a time (submission order is part of the schedule), and
/// every observable of every prediction is captured bit-exactly.
fn replay_schedule(
    workers: usize,
    ops: &[ServeOp],
    swap_at: usize,
) -> Result<Vec<(u64, u64, u32, bool)>, TestCaseError> {
    let (first, swapped, plans) = serving_models();
    let server = PredictionServer::start(
        first.clone(),
        property_db().catalog().clone(),
        ServerConfig {
            workers,
            // Large enough that no shard slice ever evicts: the hit/miss
            // pattern is then a pure function of the schedule.
            cache_capacity: 64 * workers,
            ..ServerConfig::default()
        },
    );
    let mut observed = Vec::new();
    let mut record = |p: &zero_shot_db::serve::Prediction| {
        observed.push((
            p.runtime_secs.to_bits(),
            p.fingerprint,
            p.model_version,
            p.cache_hit,
        ));
    };
    for (i, op) in ops.iter().enumerate() {
        if i == swap_at {
            server.swap_model(swapped.clone(), 2);
        }
        match op {
            ServeOp::Single(p) => {
                let prediction = server
                    .predict_blocking(plans[*p].clone())
                    .map_err(|e| TestCaseError::fail(format!("predict: {e}")))?;
                record(&prediction);
            }
            ServeOp::Batch(indices) => {
                let batch: Vec<_> = indices.iter().map(|&p| plans[p].clone()).collect();
                let predictions = server
                    .submit_batch(batch)
                    .and_then(|t| t.wait())
                    .map_err(|e| TestCaseError::fail(format!("batch: {e}")))?;
                for prediction in &predictions {
                    record(prediction);
                }
            }
        }
    }
    Ok(observed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// **Sharding is invisible in the numbers.**  Any schedule of single
    /// and batched submissions — including a mid-stream hot-swap to a
    /// different model — produces bit-identical predictions, fingerprints,
    /// model versions and cache-hit flags on a multi-shard server and on
    /// a single-shard server, whichever shard each request lands on and
    /// whoever steals it.
    #[test]
    fn sharded_serving_is_bit_identical_to_single_shard(
        seed in 0u64..10_000,
        workers in 2usize..5,
    ) {
        let (ops, swap_at) = arbitrary_schedule(seed);
        let baseline = replay_schedule(1, &ops, swap_at)?;
        let sharded = replay_schedule(workers, &ops, swap_at)?;
        prop_assert_eq!(&baseline, &sharded);
        // The swap is observable: predictions from step `swap_at` onward
        // carry the swapped model's version.
        let steps_before_swap: usize = ops.iter().take(swap_at).map(|op| match op {
            ServeOp::Single(_) => 1,
            ServeOp::Batch(b) => b.len(),
        }).sum();
        for (i, &(_, _, version, _)) in baseline.iter().enumerate() {
            prop_assert_eq!(version, if i < steps_before_swap { 1 } else { 2 });
        }
    }
}

/// An arbitrary — possibly hostile — predicate on one of the query's
/// tables: random column, random comparison, and a literal drawn from a
/// pool including extreme integers/floats, NULL, booleans and
/// out-of-domain category codes.
fn arbitrary_predicate(
    rng: &mut StdRng,
    catalog: &zero_shot_db::catalog::SchemaCatalog,
    query: &Query,
) -> Predicate {
    let table = query.tables[rng.random_range(0..query.tables.len())];
    let meta = catalog.table(table);
    let column = zero_shot_db::catalog::ColumnRef::new(
        table,
        zero_shot_db::catalog::ColumnId(rng.random_range(0..meta.num_columns() as u32)),
    );
    let op = CmpOp::ALL[rng.random_range(0..CmpOp::ALL.len())];
    let value = match rng.random_range(0..8) {
        0 => Value::Int(i64::MAX / 2),
        1 => Value::Int(i64::MIN / 2),
        2 => Value::Int(0),
        3 => Value::Float(1e300),
        4 => Value::Float(-1e300),
        5 => Value::Null,
        6 => Value::Bool(rng.random_range(0..2) == 0),
        _ => Value::Cat(u32::MAX),
    };
    Predicate::new(column, op, value)
}
