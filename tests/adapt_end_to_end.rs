//! Hot-swap soak test (ISSUE 5 acceptance): drive ≥ 1000 concurrent
//! requests through a running `PredictionServer` while the background
//! `AdaptationLoop` performs ≥ 3 fine-tune → register → promote →
//! hot-swap cycles and one rollback, asserting
//!
//! (a) no ticket is ever lost or failed — every submitted request is
//!     answered, across every swap,
//! (b) post-swap predictions are bit-identical to loading the promoted
//!     registry version fresh (and post-rollback predictions to the
//!     prior version),
//! (c) the feature cache is invalidated on each swap and its hit-rate
//!     recovers under repeated traffic afterwards.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zero_shot_db::catalog::presets;
use zero_shot_db::engine::{ObservationLog, QueryRunner};
use zero_shot_db::query::WorkloadGenerator;
use zero_shot_db::serve::{
    rollback_and_swap, AdaptationConfig, AdaptationLoop, ModelRegistry, PredictionServer,
    ServerConfig,
};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::features::{featurize_execution, featurize_plan};
use zero_shot_db::zeroshot::{
    FeaturizerConfig, FinetuneConfig, ModelConfig, PlanGraph, Trainer, TrainingConfig,
};

const CLIENTS: usize = 4;
const MIN_REQUESTS_PER_CLIENT: usize = 250;
const TARGET_SWAPS: u64 = 3;

#[test]
fn soak_hot_swaps_and_rollback_under_concurrent_traffic() {
    // ---- A served base model on one database -------------------------
    let db = Database::generate(presets::imdb_like(0.02), 3);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 1);
    let executions = runner.run_workload(&queries, 0);
    let graphs: Vec<PlanGraph> = executions
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect();
    let trainer = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 2,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    );
    let model = trainer.train(&graphs);

    let dir = std::env::temp_dir().join(format!("zsdb_adapt_e2e_{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).expect("open registry");
    let v1 = registry
        .register("adaptive", &model, &graphs[..3])
        .expect("register base model");
    registry.promote("adaptive", v1).expect("promote v1");
    let served = registry.load("adaptive", v1).expect("load v1");
    let server = Arc::new(PredictionServer::start_versioned(
        served,
        v1,
        db.catalog().clone(),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
    ));
    let plans = runner.plan_workload(&queries);

    // ---- Background adaptation over a live observation log -----------
    let log = Arc::new(ObservationLog::new(64, 9));
    let adaptation = AdaptationLoop::start(
        Arc::clone(&server),
        registry.clone(),
        "adaptive",
        Arc::clone(&log),
        AdaptationConfig {
            // Threshold 1.0 = any observed traffic counts as drift; the
            // test exercises the machinery, not the detector's judgement.
            drift_threshold: 1.0,
            drift_window: 64,
            min_observations: 4,
            poll_interval: Duration::from_millis(10),
            finetune: FinetuneConfig {
                epochs: 2,
                learning_rate: 1e-4,
                ..FinetuneConfig::default()
            },
            max_probe_graphs: 2,
            max_swaps: TARGET_SWAPS,
        },
    );

    // ---- Concurrent clients: ≥ 1000 requests across the swaps --------
    let stop_clients = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let server = Arc::clone(&server);
        let plans = plans.clone();
        let stop = Arc::clone(&stop_clients);
        let answered = Arc::clone(&answered);
        clients.push(std::thread::spawn(move || {
            let mut i = 0usize;
            loop {
                let plan = plans[(c + i) % plans.len()].clone();
                // Every ticket must be answered: a lost or failed
                // request across a swap fails the test here.
                let prediction = server
                    .submit(plan)
                    .expect("submit must succeed while serving")
                    .wait()
                    .expect("every ticket must be answered");
                assert!(prediction.runtime_secs.is_finite());
                answered.fetch_add(1, Ordering::Relaxed);
                i += 1;
                if i >= MIN_REQUESTS_PER_CLIENT && stop.load(Ordering::Relaxed) {
                    break;
                }
                // Safety valve: never spin forever if the main thread
                // panicked before flipping the stop flag.
                if i >= 100 * MIN_REQUESTS_PER_CLIENT {
                    break;
                }
            }
        }));
    }

    // ---- Feed observations until three swaps happened ----------------
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut feed_round = 0u64;
    while adaptation.status().swaps < TARGET_SWAPS {
        runner.run_workload_observed(&queries, 1000 + feed_round, &log);
        feed_round += 1;
        std::thread::sleep(Duration::from_millis(15));
        if Instant::now() > deadline {
            break;
        }
    }
    stop_clients.store(true, Ordering::Relaxed);
    for client in clients {
        client.join().expect("client thread must not panic");
    }
    let status = adaptation.stop();
    assert!(
        status.swaps >= TARGET_SWAPS,
        "expected ≥ {TARGET_SWAPS} hot-swaps, got {} (status: {status:?})",
        status.swaps
    );
    assert_eq!(status.last_error, None, "the loop must never hit an error");
    assert!(
        answered.load(Ordering::Relaxed) >= (CLIENTS * MIN_REQUESTS_PER_CLIENT) as u64,
        "≥ 1000 concurrent requests must have been answered"
    );

    // ---- The server serves the promoted version, bit-identically -----
    let promoted = registry
        .promoted("adaptive")
        .expect("read promotion history")
        .expect("the loop promoted its versions");
    assert_eq!(promoted, status.last_version);
    assert_eq!(server.model_version(), promoted);
    assert_eq!(
        registry.promotion_history("adaptive").unwrap().len() as u64,
        1 + TARGET_SWAPS,
        "v1 plus one promotion per swap"
    );
    let fresh = registry
        .load("adaptive", promoted)
        .expect("promoted version reloads through the integrity check");
    for plan in &plans {
        let served = server.predict_blocking(plan.clone()).expect("serve");
        let reference = fresh.predict(&featurize_plan(db.catalog(), plan, fresh.featurizer));
        assert_eq!(
            served.runtime_secs.to_bits(),
            reference.to_bits(),
            "post-swap prediction must equal a fresh load of the promoted version"
        );
        assert_eq!(served.model_version, promoted);
    }

    // ---- Cache: invalidated per swap, recovers under traffic ---------
    let stats = server.cache_stats();
    assert!(
        stats.invalidations >= TARGET_SWAPS,
        "each swap must invalidate the feature cache (got {})",
        stats.invalidations
    );
    let warm = server.cache_stats();
    for plan in &plans {
        server.predict_blocking(plan.clone()).unwrap();
    }
    let after = server.cache_stats();
    assert_eq!(
        after.hits - warm.hits,
        plans.len() as u64,
        "hit-rate recovers: a warmed shape set hits on every repeat"
    );

    // ---- Rollback: the prior version returns, bit for bit ------------
    let rolled_back_to = rollback_and_swap(&server, &registry, "adaptive")
        .expect("rollback to the previous promoted version");
    assert_eq!(rolled_back_to, promoted - 1);
    assert_eq!(server.model_version(), rolled_back_to);
    let prior = registry
        .load("adaptive", rolled_back_to)
        .expect("prior version reloads");
    for plan in plans.iter().take(10) {
        let served = server.predict_blocking(plan.clone()).expect("serve");
        let reference = prior.predict(&featurize_plan(db.catalog(), plan, prior.featurizer));
        assert_eq!(
            served.runtime_secs.to_bits(),
            reference.to_bits(),
            "post-rollback prediction must equal the prior version"
        );
        assert_eq!(served.model_version, rolled_back_to);
    }

    let metrics = server.metrics();
    assert!(metrics.model_swaps > TARGET_SWAPS, "swaps + rollback");
    assert_eq!(
        metrics.total_requests,
        answered.load(Ordering::Relaxed) + plans.len() as u64 * 2 + 10
    );

    let _ = std::fs::remove_dir_all(registry.root());
}
