//! Allocation-regression guard for the serving hot path.
//!
//! The raw-speed inference path promises that a **warm** request —
//! featurization into arena-backed scratch, a cache hit on the slab LRU,
//! and the forward pass through caller-provided [`InferenceScratch`] —
//! performs **zero heap allocations**.  This test enforces it with a
//! counting `#[global_allocator]`: warm the buffers to their high-water
//! mark, then replay the hot path and assert the allocation counter does
//! not move.
//!
//! Integration tests are separate crates, so installing a global
//! allocator (and the `unsafe` it requires) here does not relax the
//! `#![forbid(unsafe_code)]` contract of any library crate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use zero_shot_db::catalog::presets;
use zero_shot_db::serve::FeatureCache;
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::features::featurize_plan_into;
use zero_shot_db::zeroshot::{plan_fingerprint, GraphArena, InferenceScratch};
use zsdb_bench::tiny_serving_fixture;

/// Pass-through allocator that counts every allocation (fresh and
/// growing reallocations both count — the hot path must do neither).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_inference_hot_path_does_not_allocate() {
    // Cold setup: database, trained model, request plans — allocate freely.
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let (model, plans) = tiny_serving_fixture(&db, 8, 5);
    let featurizer = model.featurizer;

    let mut arena = GraphArena::new();
    let mut graph = arena.take_graph();
    let mut scratch = InferenceScratch::default();
    let cache = FeatureCache::new(16);

    // Warm-up: every buffer (arena node pools, flat state vector, MLP
    // ping-pong buffers, cache slab) grows to its high-water mark here.
    // Two rounds so re-featurizing an already-seen shape is exercised
    // warm too.
    for _ in 0..2 {
        for plan in &plans {
            featurize_plan_into(db.catalog(), plan, featurizer, &mut arena, &mut graph);
            let fingerprint = plan_fingerprint(plan);
            cache.get_or_insert_with(1, fingerprint, || graph.clone());
            let prediction = model.model.predict_with(&graph, &mut scratch);
            assert!(prediction.is_finite());
        }
    }

    // Measured section: the exact per-request hot path of a serving
    // worker — featurize into warm scratch, slab-cache hit, forward
    // pass — must not touch the allocator at all.
    let mut checksum = 0.0;
    let before = allocations();
    for _ in 0..50 {
        for plan in &plans {
            featurize_plan_into(db.catalog(), plan, featurizer, &mut arena, &mut graph);
            let fingerprint = plan_fingerprint(plan);
            let cached = cache
                .get(1, fingerprint)
                .expect("warmed shape must be cached");
            checksum += model.model.predict_with(&cached, &mut scratch);
        }
    }
    let after = allocations();

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "warm hot path allocated {} times over {} requests",
        after - before,
        50 * plans.len()
    );
}

/// ISSUE 9: with the flight recorder and SLO tracker enabled, the warm
/// cache-hit path stays zero-allocation.  Every request crosses
/// [`FlightRecorder::classify`] and [`SloTracker::record`] on the hot
/// path — both must be pure atomics.  Provenance assembly is cold-path
/// only (slow or explicitly traced requests) and is deliberately *not*
/// in the measured loop.
#[test]
fn warm_hot_path_stays_zero_alloc_with_flight_recorder_enabled() {
    use zero_shot_db::obs::{FlightRecorder, FlightRecorderConfig, SloConfig, SloTracker};

    let db = Database::generate(presets::imdb_like(0.02), 13);
    let (model, plans) = tiny_serving_fixture(&db, 8, 5);
    let featurizer = model.featurizer;

    let mut arena = GraphArena::new();
    let mut graph = arena.take_graph();
    let mut scratch = InferenceScratch::default();
    let cache = FeatureCache::new(16);
    let recorder = FlightRecorder::new(FlightRecorderConfig::default());
    let slo = SloTracker::new(SloConfig::default());

    // Warm-up, classifying every request just like a serving worker.
    for _ in 0..2 {
        for plan in &plans {
            featurize_plan_into(db.catalog(), plan, featurizer, &mut arena, &mut graph);
            let fingerprint = plan_fingerprint(plan);
            cache.get_or_insert_with(1, fingerprint, || graph.clone());
            let prediction = model.model.predict_with(&graph, &mut scratch);
            assert!(prediction.is_finite());
            recorder.classify(1_000, true);
            slo.record(1_000, true);
        }
    }

    // Measured section: hot path *plus* per-request observability.
    let mut checksum = 0.0;
    let before = allocations();
    for round in 0..50u64 {
        for plan in &plans {
            featurize_plan_into(db.catalog(), plan, featurizer, &mut arena, &mut graph);
            let fingerprint = plan_fingerprint(plan);
            let cached = cache
                .get(1, fingerprint)
                .expect("warmed shape must be cached");
            checksum += model.model.predict_with(&cached, &mut scratch);
            // Vary the latency so the percentile trigger arms and both
            // classification branches execute inside the measured loop.
            // Any verdict is fine — classify must not allocate either way.
            let _ = recorder.classify(500 + round * 10, true);
            slo.record(500 + round * 10, true);
        }
    }
    let after = allocations();

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "observed warm hot path allocated {} times over {} requests",
        after - before,
        50 * plans.len()
    );
}

#[test]
fn counting_allocator_is_installed() {
    let before = allocations();
    let v: Vec<u64> = Vec::with_capacity(1024);
    drop(v);
    assert!(allocations() > before, "global allocator hook not active");
}
