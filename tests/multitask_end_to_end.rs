//! End-to-end multi-task pipeline: train the joint model on a
//! multi-database corpus, register the artifact in the persistent
//! registry, load it back through the all-heads integrity check, serve it
//! concurrently (one submit → every head), and **close the loop**: drive
//! the System-R optimizer and the what-if planner with the registry-loaded
//! model's learned cardinality head on a database the model never saw.

use std::sync::Arc;
use zero_shot_db::cardest::{CardinalityEstimator, PostgresLikeEstimator};
use zero_shot_db::catalog::presets;
use zero_shot_db::engine::{EngineConfig, Optimizer, PhysOperatorKind, QueryRunner};
use zero_shot_db::multitask::{
    sample_from_execution, LearnedCardEstimator, MultiTaskConfig, MultiTaskSample,
    MultiTaskTrainer, TrainedMultiTaskModel,
};
use zero_shot_db::query::{CmpOp, Predicate, WorkloadGenerator};
use zero_shot_db::serve::{ModelRegistry, MultiTaskPredictionServer, ServerConfig};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::features::featurize_plan;
use zero_shot_db::zeroshot::{FeaturizerConfig, TrainingConfig};
use zsdb_catalog::Value;

/// Train a small multi-task model on two synthetic databases (estimated
/// featurization, so the cardinality heads can run at planning time).
fn train_small_model() -> TrainedMultiTaskModel {
    let mut samples: Vec<MultiTaskSample> = Vec::new();
    for seed in [31u64, 32] {
        let db = Database::generate(presets::imdb_like(0.02), seed);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 40, seed);
        samples.extend(
            runner
                .run_workload(&queries, 0)
                .iter()
                .map(|e| sample_from_execution(db.catalog(), e, FeaturizerConfig::estimated())),
        );
    }
    MultiTaskTrainer::new(
        MultiTaskConfig::tiny(),
        TrainingConfig {
            epochs: 10,
            validation_fraction: 0.0,
            early_stopping_patience: 0,
            ..TrainingConfig::default()
        },
        FeaturizerConfig::estimated(),
    )
    .train(&samples)
}

#[test]
fn registry_serve_and_optimizer_close_the_loop() {
    let trained = train_small_model();

    // --- A database the model has never seen -------------------------
    let db = Database::generate(presets::imdb_like(0.02), 77);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 13);
    let plans = runner.plan_workload(&queries);
    let probe_graphs: Vec<_> = plans
        .iter()
        .take(4)
        .map(|p| featurize_plan(db.catalog(), p, trained.featurizer))
        .collect();

    // --- Register + integrity-checked load ---------------------------
    let dir = std::env::temp_dir().join(format!("zsdb_multitask_e2e_{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).expect("open registry");
    let version = registry
        .register_multitask("one-model", &trained, &probe_graphs)
        .expect("register multitask artifact");
    let manifest = registry
        .multitask_manifest("one-model", version)
        .expect("read manifest");
    assert_eq!(
        manifest.task_heads,
        vec!["cost", "root_cardinality", "operator_cardinality"]
    );
    assert_eq!(manifest.probes.len(), 4);
    let loaded = registry
        .load_multitask("one-model", version)
        .expect("integrity-checked load");

    // --- Serve: one submit answers all heads, bit-identical ----------
    let server = Arc::new(MultiTaskPredictionServer::start(
        loaded.clone(),
        db.catalog().clone(),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    ));
    let mut clients = Vec::new();
    for c in 0..3usize {
        let server = Arc::clone(&server);
        let plans = plans.clone();
        clients.push(std::thread::spawn(move || {
            let mut served = Vec::new();
            for round in 0..10 {
                let idx = (c + round) % plans.len();
                served.push((idx, server.predict_blocking(plans[idx].clone()).unwrap()));
            }
            served
        }));
    }
    for client in clients {
        for (idx, served) in client.join().unwrap() {
            let graph = featurize_plan(db.catalog(), &plans[idx], loaded.featurizer);
            let reference = trained.predict(&graph);
            assert_eq!(
                served.tasks.runtime_secs.to_bits(),
                reference.runtime_secs.to_bits(),
                "served cost differs from the trained model"
            );
            assert_eq!(
                served.tasks.root_rows.to_bits(),
                reference.root_rows.to_bits(),
                "served root cardinality differs"
            );
            assert_eq!(served.tasks.operator_rows, reference.operator_rows);
        }
    }
    assert_eq!(server.metrics().total_requests, 30);

    // --- Close the loop: optimizer driven by the served model --------
    let fallback = PostgresLikeEstimator::new(db.catalog().clone());
    let learned = LearnedCardEstimator::new(&loaded, fallback);
    let optimizer = Optimizer::new(&db, EngineConfig::default(), &learned);
    for (query, _) in queries.iter().zip(&plans) {
        let plan = optimizer.plan(query);
        assert_eq!(plan.op.kind(), PhysOperatorKind::Aggregate);
        assert_eq!(plan.scanned_tables().len(), query.num_tables());
        assert!(plan.est_cost.is_finite() && plan.est_cost > 0.0);
        assert!(plan.est_cardinality.is_finite() && plan.est_cardinality >= 1.0);
        // The learned plan executes to the same results as the classical
        // plan — cardinality estimates may change the shape, never the
        // answer.
        let learned_run = runner.run_plan(query, plan, 5);
        let classical_run = runner.run(query, 5);
        assert_eq!(learned_run.aggregates, classical_run.aggregates);
    }

    // --- What-if planning with learned cardinalities ------------------
    let year = db
        .catalog()
        .resolve_column("title", "production_year")
        .unwrap();
    let (title, _) = db.catalog().table_by_name("title").unwrap();
    let whatif_query = zero_shot_db::query::Query {
        tables: vec![title],
        joins: vec![],
        predicates: vec![Predicate::new(year, CmpOp::Gt, Value::Int(2018))],
        aggregates: vec![zero_shot_db::query::Aggregate::count_star()],
    };
    let mut whatif = Optimizer::new(&db, EngineConfig::default(), &learned);
    whatif.add_hypothetical_index(year);
    let whatif_plan = whatif.plan(&whatif_query);
    assert!(whatif_plan.est_cost.is_finite() && whatif_plan.est_cost > 0.0);
    assert!(
        whatif_plan
            .iter()
            .any(|n| n.op.kind() == PhysOperatorKind::IndexScan),
        "hypothetical index should be picked for a selective predicate:\n{}",
        whatif_plan.explain()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn learned_estimates_are_sane_on_an_unseen_database() {
    let trained = train_small_model();
    let db = Database::generate(presets::imdb_like(0.03), 91);
    let learned =
        LearnedCardEstimator::new(&trained, PostgresLikeEstimator::new(db.catalog().clone()));
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 15, 21);
    for q in &queries {
        let card = learned.query_cardinality(q);
        assert!(card.is_finite() && card >= 1.0, "query cardinality {card}");
        for &t in &q.tables {
            let rows = learned.table_cardinality(t, &q.predicates);
            let upper = db.catalog().table(t).num_tuples as f64;
            assert!(rows.is_finite() && rows >= 1.0 && rows <= upper + 0.5);
        }
    }
}
