//! Optimizer correctness: on 2–4-table queries, the System-R dynamic
//! programming join enumeration must find exactly the plan an exhaustive
//! enumeration of *all* (bushy) join trees finds under the same cost model
//! and the same [`ExactEstimator`] — and cost ties must be broken
//! deterministically (repeated planning yields the identical plan).
//!
//! The oracle below re-derives plan costs independently of the optimizer's
//! DP table: it recursively enumerates every connected binary partition of
//! the query's table set and prices joins with the public
//! [`CostModel`](zero_shot_db::engine::CostModel) formulas, mirroring the
//! optimizer's physical conventions (hash build on the smaller estimated
//! side, nested-loop outer on the larger, cheaper of the two wins).  Index
//! scans are disabled so access paths are single-candidate and the test
//! isolates the join-enumeration logic.

use zero_shot_db::cardest::{CardinalityEstimator, ExactEstimator};
use zero_shot_db::catalog::{presets, TableId};
use zero_shot_db::engine::{CostModel, EngineConfig, Optimizer, PhysOperatorKind, QueryRunner};
use zero_shot_db::query::{Query, WorkloadGenerator, WorkloadSpec};
use zero_shot_db::storage::Database;

/// Tables selected by `mask` (bit `i` = `query.tables[i]`).
fn subset_tables(query: &Query, mask: usize) -> Vec<TableId> {
    query
        .tables
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, t)| *t)
        .collect()
}

/// Whether any join edge of `query` connects the two disjoint subsets.
fn connected(query: &Query, left_mask: usize, right_mask: usize) -> bool {
    query.joins.iter().any(|join| {
        let li = query
            .tables
            .iter()
            .position(|t| *t == join.left.table)
            .expect("join table in query");
        let ri = query
            .tables
            .iter()
            .position(|t| *t == join.right.table)
            .expect("join table in query");
        (left_mask & (1 << li) != 0 && right_mask & (1 << ri) != 0)
            || (right_mask & (1 << li) != 0 && left_mask & (1 << ri) != 0)
    })
}

/// Estimated output rows of the sub-query over `mask` — the same numbers
/// the optimizer annotates its plans with.
fn est_rows(query: &Query, est: &ExactEstimator, mask: usize) -> f64 {
    let tables = subset_tables(query, mask);
    if tables.len() == 1 {
        est.table_cardinality(tables[0], &query.predicates).max(1.0)
    } else {
        est.subquery_cardinality(query, &tables).max(1.0)
    }
}

/// Exhaustive minimum join-tree cost over `mask`: every connected binary
/// partition is explored recursively (no memoisation shortcuts through the
/// DP being tested), leaves are sequential scans.
fn exhaustive_min_cost(
    query: &Query,
    est: &ExactEstimator,
    cost: &CostModel,
    mask: usize,
) -> Option<f64> {
    if mask.count_ones() == 1 {
        let table = subset_tables(query, mask)[0];
        let meta = est.catalog().table(table);
        let num_predicates = query
            .predicates
            .iter()
            .filter(|p| p.column.table == table)
            .count();
        return Some(cost.seq_scan(
            meta.num_pages() as f64,
            meta.num_tuples as f64,
            num_predicates,
        ));
    }

    let mut best: Option<f64> = None;
    let mut left = (mask - 1) & mask;
    while left > 0 {
        let right = mask ^ left;
        // Each unordered partition once (the physical build/probe and
        // outer/inner choices below are order-independent).
        if left > right && connected(query, left, right) {
            if let (Some(lc), Some(rc)) = (
                exhaustive_min_cost(query, est, cost, left),
                exhaustive_min_cost(query, est, cost, right),
            ) {
                let out = est_rows(query, est, mask);
                let (l_rows, r_rows) = (est_rows(query, est, left), est_rows(query, est, right));
                let (build, probe) = if l_rows <= r_rows {
                    (l_rows, r_rows)
                } else {
                    (r_rows, l_rows)
                };
                let mut candidate = lc + rc + cost.hash_join(build, probe, out);
                if cost.config().enable_nested_loop {
                    // Outer is the larger side, inner the smaller.
                    let nl = lc + rc + cost.nested_loop_join(probe, build, out);
                    candidate = candidate.min(nl);
                }
                best = Some(best.map_or(candidate, |b: f64| b.min(candidate)));
            }
        }
        left = (left - 1) & mask;
    }
    best
}

#[test]
fn dp_join_enumeration_matches_exhaustive_enumeration_under_exact_cardinalities() {
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let est = ExactEstimator::build(&db);
    // No index scans: access paths are single-candidate, so any plan-cost
    // difference must come from the join enumeration being tested.
    let config = EngineConfig::default().without_indexes();
    let optimizer = Optimizer::new(&db, config.clone(), &est);
    let cost = CostModel::new(config);

    let spec = WorkloadSpec {
        max_tables: 4,
        ..WorkloadSpec::default()
    };
    let workload = WorkloadGenerator::new(spec).generate(db.catalog(), 40, 3);
    let mut checked = 0usize;
    for query in workload.iter().filter(|q| q.num_tables() >= 2) {
        let n = query.num_tables();
        let full_mask = (1 << n) - 1;
        let oracle_join_cost = exhaustive_min_cost(query, &est, &cost, full_mask)
            .expect("generated queries have connected join graphs");
        let oracle_total = oracle_join_cost
            + cost.aggregate(est_rows(query, &est, full_mask), query.aggregates.len());

        let plan = optimizer.plan(query);
        assert_eq!(plan.op.kind(), PhysOperatorKind::Aggregate);
        assert!(
            (plan.est_cost - oracle_total).abs() <= 1e-9 * (1.0 + oracle_total.abs()),
            "{n}-table query: DP cost {} vs exhaustive minimum {oracle_total}\n{}",
            plan.est_cost,
            plan.explain()
        );
        checked += 1;
    }
    assert!(checked >= 15, "only {checked} multi-table queries checked");
}

#[test]
fn cost_ties_are_broken_deterministically() {
    // The DP keeps the first strictly-cheapest candidate in a fixed
    // enumeration order, so planning the same query repeatedly — and
    // planning through a freshly built optimizer — must return the
    // identical plan structure, not just an equal cost.
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let est = ExactEstimator::build(&db);
    let spec = WorkloadSpec {
        max_tables: 4,
        ..WorkloadSpec::default()
    };
    let workload = WorkloadGenerator::new(spec).generate(db.catalog(), 15, 9);
    let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
    for query in &workload {
        let first = optimizer.plan(query);
        let second = optimizer.plan(query);
        let fresh = Optimizer::new(&db, EngineConfig::default(), &est).plan(query);
        assert_eq!(first, second, "replanning changed the plan");
        assert_eq!(first, fresh, "a fresh optimizer changed the plan");
    }
}

#[test]
fn dp_plans_execute_to_the_same_results_as_any_plan() {
    // Sanity on top of the cost comparison: the chosen plan is not just
    // cheapest but correct — executing it yields the same aggregates as
    // the runner's default path.
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let runner = QueryRunner::with_defaults(&db);
    let spec = WorkloadSpec {
        max_tables: 3,
        ..WorkloadSpec::default()
    };
    let workload = WorkloadGenerator::new(spec).generate(db.catalog(), 8, 5);
    let est = ExactEstimator::build(&db);
    let optimizer = Optimizer::new(&db, EngineConfig::default().without_indexes(), &est);
    for query in &workload {
        let exact_plan = optimizer.plan(query);
        let exact_run = runner.run_plan(query, exact_plan, 0);
        let default_run = runner.run(query, 0);
        assert_eq!(exact_run.aggregates, default_run.aggregates);
    }
}
