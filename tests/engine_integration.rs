//! Integration tests of the engine substrate across crates: correctness of
//! execution against brute-force evaluation, plan invariants over generated
//! workloads, index what-if consistency and hardware-profile sensitivity.

use zero_shot_db::cardest::{CardinalityEstimator, HistogramEstimator, PostgresLikeEstimator};
use zero_shot_db::catalog::{presets, Value};
use zero_shot_db::engine::{
    EngineConfig, HardwareProfile, PhysOperatorKind, QueryRunner, WhatIfPlanner,
};
use zero_shot_db::query::{Aggregate, BenchmarkWorkload, CmpOp, Predicate, Query, WorkloadKind};
use zero_shot_db::storage::Database;

fn imdb() -> Database {
    Database::generate(presets::imdb_like(0.02), 11)
}

/// Brute-force COUNT(*) of a (possibly joined) query by nested evaluation.
fn brute_force_count(db: &Database, query: &Query) -> i64 {
    // Only supports 1- and 2-table queries; enough for correctness checks.
    assert!(query.num_tables() <= 2);
    let catalog = db.catalog();
    let matches_preds = |table, row: usize| {
        query
            .predicates
            .iter()
            .filter(|p| p.column.table == table)
            .all(|p| p.matches(db.table_data(table).value(row, p.column.column)))
    };
    if query.num_tables() == 1 {
        let t = query.tables[0];
        return (0..db.table_data(t).num_rows())
            .filter(|&r| matches_preds(t, r))
            .count() as i64;
    }
    let join = query.joins[0];
    let (ta, tb) = (query.tables[0], query.tables[1]);
    let col_of = |t| join.column_of(t).expect("join touches both tables");
    let a_rows: Vec<(usize, Value)> = (0..db.table_data(ta).num_rows())
        .filter(|&r| matches_preds(ta, r))
        .map(|r| (r, db.table_data(ta).value(r, col_of(ta).column)))
        .collect();
    let mut count = 0i64;
    for rb in 0..db.table_data(tb).num_rows() {
        if !matches_preds(tb, rb) {
            continue;
        }
        let vb = db.table_data(tb).value(rb, col_of(tb).column);
        for (_, va) in &a_rows {
            if let (Some(x), Some(y)) = (va.as_f64(), vb.as_f64()) {
                if x == y {
                    count += 1;
                }
            }
        }
    }
    let _ = catalog;
    count
}

#[test]
fn executor_matches_brute_force_on_benchmark_queries() {
    let db = imdb();
    let runner = QueryRunner::with_defaults(&db);
    let workload = BenchmarkWorkload::generate(WorkloadKind::JobLight, db.catalog(), 30, 3);
    let mut checked = 0;
    for q in workload.queries.iter().filter(|q| q.num_tables() <= 2) {
        // Compare a COUNT(*)-only version of the query.
        let count_query = Query {
            aggregates: vec![Aggregate::count_star()],
            ..q.clone()
        };
        let result = runner.run(&count_query, 0);
        let expected = brute_force_count(&db, &count_query);
        assert_eq!(result.aggregates[0], Value::Int(expected));
        checked += 1;
    }
    assert!(checked > 0, "at least one 2-table query must be checked");
}

#[test]
fn all_benchmark_workloads_execute_without_panics() {
    let db = imdb();
    let runner = QueryRunner::with_defaults(&db);
    for kind in [
        WorkloadKind::Scale,
        WorkloadKind::Synthetic,
        WorkloadKind::JobLight,
    ] {
        let workload = BenchmarkWorkload::generate(kind, db.catalog(), 25, 5);
        let executions = runner.run_workload(&workload.queries, 9);
        assert_eq!(executions.len(), 25);
        for e in &executions {
            assert!(e.runtime_secs > 0.0);
            assert!(e.plan.size() >= 2);
            assert_eq!(e.executed.size(), e.plan.size());
        }
    }
}

#[test]
fn cardinality_estimators_bracket_the_truth() {
    let db = imdb();
    let pg = PostgresLikeEstimator::new(db.catalog().clone());
    let hist = HistogramEstimator::build(&db, 3);
    let year = db
        .catalog()
        .resolve_column("title", "production_year")
        .unwrap();
    let (title, _) = db.catalog().table_by_name("title").unwrap();
    let predicate = Predicate::new(year, CmpOp::Gt, Value::Int(1990));
    let column = db.table_data(title).column(year.column);
    let truth = (0..column.len())
        .filter(|&r| predicate.matches(column.get(r)))
        .count() as f64;

    let pg_est = pg.table_cardinality(title, std::slice::from_ref(&predicate));
    let hist_est = hist.table_cardinality(title, std::slice::from_ref(&predicate));
    // The histogram (data-driven) estimate must be at least as close to the
    // truth as a factor-5 bound; the Postgres-style estimate may be worse
    // but must stay within the table size.
    assert!(hist_est > 0.0 && (hist_est / truth).max(truth / hist_est) < 5.0);
    assert!(pg_est >= 0.0 && pg_est <= db.catalog().table(title).num_tuples as f64);
}

#[test]
fn whatif_ground_truth_is_consistent_with_plain_execution() {
    let mut db = imdb();
    let catalog = db.catalog();
    let (title, _) = catalog.table_by_name("title").unwrap();
    let year = catalog.resolve_column("title", "production_year").unwrap();
    let query = Query {
        tables: vec![title],
        joins: vec![],
        predicates: vec![Predicate::new(year, CmpOp::Geq, Value::Int(2015))],
        aggregates: vec![Aggregate::count_star()],
    };
    let plain = QueryRunner::with_defaults(&db).run(&query, 0);
    let planner = WhatIfPlanner::with_defaults();
    let with_index = planner.ground_truth_with_index(&mut db, &query, year, 0);
    // Same answer regardless of the physical plan.
    assert_eq!(plain.aggregates, with_index.aggregates);
    // And the index plan really used an index scan.
    assert!(with_index
        .executed
        .iter()
        .iter()
        .any(|n| n.kind == PhysOperatorKind::IndexScan));
}

#[test]
fn slower_hardware_profiles_produce_longer_runtimes() {
    let db = imdb();
    let query = Query::scan(db.catalog().table_by_name("cast_info").unwrap().0);
    let fast = QueryRunner::new(
        &db,
        EngineConfig::default(),
        HardwareProfile::fast_nvme().noiseless(),
    )
    .run(&query, 0);
    let slow = QueryRunner::new(
        &db,
        EngineConfig::default(),
        HardwareProfile::slow_disk().noiseless(),
    )
    .run(&query, 0);
    assert!(slow.runtime_secs > fast.runtime_secs);
}
