//! Determinism regression suite: the entire synthetic pipeline must be a
//! pure function of its seeds.  Any accidental use of ambient entropy
//! (hash-map iteration order, time, thread scheduling) breaks zero-shot
//! training reproducibility and shows up here.

use zero_shot_db::catalog::{GeneratorConfig, SchemaGenerator};
use zero_shot_db::engine::QueryRunner;
use zero_shot_db::query::{WorkloadGenerator, WorkloadSpec};
use zero_shot_db::storage::Database;

const SEEDS: [u64; 3] = [0, 7, 0xDEAD_BEEF];

#[test]
fn same_seed_generates_identical_schemas() {
    for seed in SEEDS {
        let a = SchemaGenerator::new(GeneratorConfig::tiny()).generate("det_db", seed);
        let b = SchemaGenerator::new(GeneratorConfig::tiny()).generate("det_db", seed);
        assert_eq!(a, b, "schema generation diverged for seed {seed}");
    }
}

#[test]
fn same_seed_generates_identical_database_contents() {
    for seed in SEEDS {
        let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("det_db", seed);
        let a = Database::generate(schema.clone(), seed ^ 0xABCD);
        let b = Database::generate(schema, seed ^ 0xABCD);
        assert_eq!(a.catalog(), b.catalog());
        for (tid, _) in a.catalog().iter_tables() {
            assert_eq!(
                a.table_data(tid),
                b.table_data(tid),
                "table {tid:?} contents diverged for seed {seed}"
            );
        }
    }
}

#[test]
fn different_seeds_generate_different_contents() {
    let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("det_db", 5);
    let a = Database::generate(schema.clone(), 1);
    let b = Database::generate(schema, 2);
    let any_differs = a
        .catalog()
        .iter_tables()
        .any(|(tid, _)| a.table_data(tid) != b.table_data(tid));
    assert!(any_differs, "different data seeds must change the contents");
}

#[test]
fn same_seed_generates_identical_query_sequences() {
    let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("det_db", 3);
    let db = Database::generate(schema, 4);
    let spec = WorkloadSpec::default();
    for seed in SEEDS {
        let a = WorkloadGenerator::new(spec.clone()).generate(db.catalog(), 25, seed);
        let b = WorkloadGenerator::new(spec.clone()).generate(db.catalog(), 25, seed);
        assert_eq!(a, b, "workload generation diverged for seed {seed}");
    }
    // And the sequence must actually depend on the seed.
    let a = WorkloadGenerator::new(spec.clone()).generate(db.catalog(), 25, 1);
    let b = WorkloadGenerator::new(spec).generate(db.catalog(), 25, 2);
    assert_ne!(a, b, "different workload seeds must change the queries");
}

#[test]
fn same_seed_executes_to_identical_observations() {
    let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("det_db", 9);
    let db = Database::generate(schema, 10);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 5, 11);
    let runner = QueryRunner::with_defaults(&db);
    for q in &queries {
        let a = runner.run(q, 12);
        let b = runner.run(q, 12);
        assert_eq!(a.runtime_secs.to_bits(), b.runtime_secs.to_bits());
        assert_eq!(a.aggregates, b.aggregates);
        assert_eq!(a.plan, b.plan);
    }
}
