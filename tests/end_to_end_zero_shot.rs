//! Integration test: the full zero-shot pipeline across crates — synthetic
//! schema generation, data generation, workload execution on the engine,
//! multi-database training, and evaluation on an unseen database.

use zero_shot_db::catalog::{presets, SchemaGenerator};
use zero_shot_db::query::WorkloadSpec;
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{
    collect_for_database, collect_training_corpus, TrainingDataConfig,
};
use zero_shot_db::zeroshot::{
    evaluate, few_shot_finetune, FeaturizerConfig, ModelConfig, Trainer, TrainingConfig,
};

fn train_tiny_zero_shot(
    featurizer: FeaturizerConfig,
) -> (zero_shot_db::zeroshot::TrainedModel, TrainingDataConfig) {
    let config = TrainingDataConfig::tiny();
    let corpus = collect_training_corpus(&config);
    let schemas = SchemaGenerator::new(config.schema_config.clone()).generate_corpus(
        "train",
        config.num_databases,
        config.seed,
    );
    let trainer = Trainer::new(ModelConfig::tiny(), TrainingConfig::tiny(), featurizer);
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas.iter().find(|s| s.name == name).expect("catalog")
    });
    (trainer.train(&graphs), config)
}

#[test]
fn zero_shot_pipeline_on_unseen_database() {
    let (model, _) = train_tiny_zero_shot(FeaturizerConfig::exact());
    assert!(model.final_train_qerror < 3.0);

    // The IMDB-like database was never part of the training corpus.
    let imdb = Database::generate(presets::imdb_like(0.02), 555);
    let executions = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 40, 3);
    let report = evaluate(&model, &imdb, "unseen-imdb", &executions);
    assert!(report.qerrors.median.is_finite());
    assert!(
        report.qerrors.median < 6.0,
        "zero-shot median q-error on unseen database too high: {}",
        report.qerrors.median
    );
    assert!(report.qerrors.max >= report.qerrors.median);
}

#[test]
fn estimated_cardinality_variant_works_end_to_end() {
    let (model, _) = train_tiny_zero_shot(FeaturizerConfig::estimated());
    let ssb = Database::generate(presets::ssb_like(0.02), 7);
    let executions = collect_for_database(&ssb, &WorkloadSpec::paper_training(), 30, 9);
    let report = evaluate(&model, &ssb, "unseen-ssb", &executions);
    assert!(report.qerrors.median.is_finite());
    assert_eq!(report.qerrors.count, 30);
}

#[test]
fn few_shot_pipeline_runs_and_stays_reasonable() {
    let (model, _) = train_tiny_zero_shot(FeaturizerConfig::exact());
    let imdb = Database::generate(presets::imdb_like(0.02), 99);
    let executions = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 60, 21);
    let (budget, holdout) = executions.split_at(30);

    let before = evaluate(&model, &imdb, "holdout", holdout);
    let finetuned = few_shot_finetune(&model, &imdb, budget, 25, 1e-3);
    let after = evaluate(&finetuned, &imdb, "holdout", holdout);
    assert!(after.qerrors.median.is_finite());
    // Fine-tuning on real target-database queries should not catastrophically
    // hurt accuracy.
    assert!(after.qerrors.median <= before.qerrors.median * 1.5);
}

#[test]
fn trained_models_roundtrip_through_json() {
    let (model, _) = train_tiny_zero_shot(FeaturizerConfig::exact());
    let imdb = Database::generate(presets::imdb_like(0.02), 1);
    let executions = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 5, 2);
    let json = model.to_json();
    let restored = zero_shot_db::zeroshot::TrainedModel::from_json(&json).unwrap();
    for e in &executions {
        let a = zero_shot_db::zeroshot::predict_runtime(&model, &imdb, e);
        let b = zero_shot_db::zeroshot::predict_runtime(&restored, &imdb, e);
        assert!((a - b).abs() < 1e-9);
    }
}
