//! Serialization round-trip suite: a trained model saved as JSON (directly
//! or through the model registry) must reload with **bit-identical**
//! predictions — the guarantee the vendored serde_json float round-trip
//! claims, verified end-to-end on held-out plans.

use zero_shot_db::catalog::presets;
use zero_shot_db::query::{WorkloadGenerator, WorkloadSpec};
use zero_shot_db::serve::ModelRegistry;
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::collect_for_database;
use zero_shot_db::zeroshot::features::{featurize_execution, featurize_plan};
use zero_shot_db::zeroshot::{
    FeaturizerConfig, ModelConfig, PlanGraph, TrainedModel, Trainer, TrainingConfig,
};
use zsdb_engine::QueryRunner;

fn train_tiny_model() -> TrainedModel {
    let db = Database::generate(presets::imdb_like(0.02), 21);
    let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 40, 3);
    let graphs: Vec<PlanGraph> = executions
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect();
    Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 4,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    )
    .train(&graphs)
}

/// 20 held-out plans from a database the model never saw during training.
fn held_out_graphs(model: &TrainedModel) -> Vec<PlanGraph> {
    let db = Database::generate(presets::ssb_like(0.02), 77);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 13);
    runner
        .plan_workload(&queries)
        .iter()
        .map(|p| featurize_plan(db.catalog(), p, model.featurizer))
        .collect()
}

#[test]
fn json_roundtrip_preserves_predictions_bit_for_bit() {
    let model = train_tiny_model();
    let graphs = held_out_graphs(&model);
    assert_eq!(graphs.len(), 20);

    let json = model.to_json();
    let restored = TrainedModel::from_json(&json).expect("reload model");
    for (i, g) in graphs.iter().enumerate() {
        let original = model.predict(g);
        let reloaded = restored.predict(g);
        assert_eq!(
            original.to_bits(),
            reloaded.to_bits(),
            "plan {i}: {original} != {reloaded} after JSON round-trip"
        );
    }

    // Double round-trip: serialize the reloaded model again; the artifact
    // must be byte-stable (no drift on repeated save/load cycles).
    assert_eq!(json, restored.to_json());
}

#[test]
fn registry_file_roundtrip_preserves_predictions_bit_for_bit() {
    let model = train_tiny_model();
    let graphs = held_out_graphs(&model);

    let dir = std::env::temp_dir().join(format!("zsdb_serialization_test_{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).expect("open registry");
    let version = registry
        .register("roundtrip", &model, &graphs[..8])
        .expect("register");
    let loaded = registry.load("roundtrip", version).expect("load");
    for (i, g) in graphs.iter().enumerate() {
        assert_eq!(
            model.predict(g).to_bits(),
            loaded.predict(g).to_bits(),
            "plan {i} drifted through the registry file round-trip"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn featurizer_config_survives_the_roundtrip() {
    let model = train_tiny_model();
    let restored = TrainedModel::from_json(&model.to_json()).unwrap();
    assert_eq!(model.featurizer, restored.featurizer);
    assert_eq!(model.model.config(), restored.model.config());
    assert_eq!(
        model.model.num_parameters(),
        restored.model.num_parameters()
    );
}
