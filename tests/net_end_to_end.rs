//! End-to-end network serving test (ISSUE 6 acceptance): train a tiny
//! model, put a [`NetServer`] gateway in front of the worker pool, and
//! talk to it through the pooled `zsdb_client` over real TCP sockets,
//! asserting
//!
//! (a) every remote prediction — single and batched — is bit-identical
//!     to the in-process `predict_blocking` path,
//! (b) the gateway meters each tenant separately (admitted / completed /
//!     in-flight visible over the wire through the `Metrics` op), and
//! (c) quota rejections surface as structured, retryable error frames
//!     and are counted per tenant,
//!
//! plus the ISSUE 7 observability acceptance:
//!
//! (d) a traced remote `predict` decomposes into named pipeline stages
//!     whose durations sum to the end-to-end latency, and
//! (e) latency/stage recording stays striped (no shared lock) under
//!     concurrent tenants and snapshot pressure,
//!
//! plus the ISSUE 9 provenance acceptance:
//!
//! (f) a deliberately slow request driven over TCP is retrievable via
//!     the `SlowLog` op, its full `ProvenanceRecord` via `Explain`, the
//!     record's stage durations tile the end-to-end latency, and the
//!     record names the serving model (name + version).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use zero_shot_db::catalog::presets;
use zero_shot_db::client::{Client, ClientConfig, ClientError};
use zero_shot_db::protocol::{ErrorCode, GatewayMetrics, TenantMetrics, PROTOCOL_VERSION};
use zero_shot_db::serve::{
    NetServer, NetServerConfig, PredictionServer, ServerConfig, TenantPolicy, STAGE_ADMISSION,
    STAGE_FEATURIZE, STAGE_FORWARD, STAGE_QUEUE_WAIT, STAGE_RESPOND,
};
use zero_shot_db::storage::Database;
use zsdb_bench::tiny_serving_fixture;

/// Poll the gateway's metrics until `done` accepts a snapshot (the
/// responder decrements `in_flight` *after* writing the response, so a
/// client can observe its own answer a beat before the gauges settle).
fn wait_for_metrics(client: &Client, done: impl Fn(&GatewayMetrics) -> bool) -> GatewayMetrics {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = client.metrics().expect("metrics over the wire");
        if done(&snapshot) || Instant::now() > deadline {
            return snapshot;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn tenant<'a>(metrics: &'a GatewayMetrics, name: &str) -> &'a TenantMetrics {
    metrics
        .tenants
        .iter()
        .find(|t| t.tenant == name)
        .unwrap_or_else(|| panic!("tenant {name} missing from gateway metrics"))
}

#[test]
fn remote_predictions_match_in_process_and_tenants_are_metered() {
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let (model, plans) = tiny_serving_fixture(&db, 20, 5);

    let gateway = NetServer::start(
        "127.0.0.1:0",
        PredictionServer::start(
            model,
            db.catalog().clone(),
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                cache_capacity: 128,
                ..ServerConfig::default()
            },
        ),
        NetServerConfig::default()
            .with_tenant("alpha", TenantPolicy { max_in_flight: 64 })
            .with_tenant("beta", TenantPolicy { max_in_flight: 64 }),
    )
    .expect("bind gateway");
    let addr = gateway.local_addr();

    // In-process reference through the same worker pool, keyed by the
    // structural fingerprint the wire protocol echoes back.
    let reference: HashMap<u64, u64> = plans
        .iter()
        .map(|p| {
            let r = gateway
                .server()
                .predict_blocking(p.clone())
                .expect("in-process prediction");
            (r.fingerprint, r.runtime_secs.to_bits())
        })
        .collect();

    // (a) Bit-identity for the single-request path…
    let alpha = Client::connect(
        addr,
        ClientConfig {
            connections: 2,
            ..ClientConfig::tenant("alpha")
        },
    )
    .expect("connect alpha");
    assert_eq!(alpha.handshake_model_version().unwrap(), 1);
    assert_eq!(alpha.handshake_tenant_quota().unwrap(), 64);
    for plan in &plans {
        let remote = alpha.predict(plan).expect("remote predict");
        assert_eq!(
            remote.runtime_secs.to_bits(),
            reference[&remote.fingerprint],
            "remote single prediction diverged from predict_blocking"
        );
        assert_eq!(remote.model_version, 1);
    }
    // …and for the batched path.
    let batch = alpha.predict_batch(&plans).expect("remote batch");
    assert_eq!(batch.len(), plans.len());
    for remote in &batch {
        assert_eq!(
            remote.runtime_secs.to_bits(),
            reference[&remote.fingerprint],
            "remote batched prediction diverged from predict_blocking"
        );
    }

    // A second tenant on the same gateway.
    let beta = Client::connect(addr, ClientConfig::tenant("beta")).expect("connect beta");
    for plan in plans.iter().take(5) {
        let remote = beta.predict(plan).expect("beta predict");
        assert_eq!(
            remote.runtime_secs.to_bits(),
            reference[&remote.fingerprint]
        );
    }

    // (b) Per-tenant accounting over the wire.
    let alpha_total = (plans.len() * 2) as u64; // singles + batch
    let metrics = wait_for_metrics(&alpha, |m| {
        let a = tenant(m, "alpha");
        let b = tenant(m, "beta");
        a.completed == alpha_total && b.completed == 5 && a.in_flight == 0 && b.in_flight == 0
    });
    let a = tenant(&metrics, "alpha");
    assert_eq!(a.admitted, alpha_total);
    assert_eq!(a.completed, alpha_total);
    assert_eq!(a.rejected_quota + a.rejected_shed, 0);
    assert_eq!(a.quota, 64);
    let b = tenant(&metrics, "beta");
    assert_eq!(b.admitted, 5);
    assert_eq!(b.completed, 5);
    assert!(metrics.server_total_requests >= alpha_total + 5 + plans.len() as u64);
    assert_eq!(metrics.model_version, 1);

    let health = alpha.health().expect("health over the wire");
    assert!(health.healthy);
    assert_eq!(health.model_version, 1);

    drop(alpha);
    drop(beta);
    let fin = gateway.shutdown();
    assert_eq!(tenant(&fin, "alpha").completed, alpha_total);
    assert_eq!(tenant(&fin, "beta").completed, 5);
}

#[test]
fn quota_rejections_are_retryable_structured_errors_and_counted() {
    let db = Database::generate(presets::imdb_like(0.02), 13);
    let (model, plans) = tiny_serving_fixture(&db, 6, 2);

    let gateway = NetServer::start(
        "127.0.0.1:0",
        PredictionServer::start(
            model,
            db.catalog().clone(),
            ServerConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 16,
                ..ServerConfig::default()
            },
        ),
        // `starved` may never have a request in flight; `vip` is roomy.
        NetServerConfig::default()
            .with_tenant("starved", TenantPolicy { max_in_flight: 0 })
            .with_tenant("vip", TenantPolicy { max_in_flight: 32 }),
    )
    .expect("bind gateway");
    let addr = gateway.local_addr();

    let starved = Client::connect(addr, ClientConfig::tenant("starved")).expect("connect");
    for plan in &plans {
        match starved.predict(plan) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::QuotaExceeded);
                assert!(code.is_retryable(), "quota pressure must be retryable");
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
    }
    // Batches are admitted all-or-nothing against the quota.
    match starved.predict_batch(&plans) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::QuotaExceeded),
        other => panic!("expected QuotaExceeded for the batch, got {other:?}"),
    }

    // The starved tenant's rejections don't touch the vip tenant.
    let vip = Client::connect(addr, ClientConfig::tenant("vip")).expect("connect vip");
    let remote = vip.predict(&plans[0]).expect("vip predicts fine");
    let local = gateway
        .server()
        .predict_blocking(plans[0].clone())
        .expect("in-process");
    assert_eq!(remote.runtime_secs.to_bits(), local.runtime_secs.to_bits());

    let metrics = wait_for_metrics(&vip, |m| tenant(m, "vip").completed == 1);
    let s = tenant(&metrics, "starved");
    assert_eq!(s.admitted, 0);
    // Each request counts: 6 singles + every plan of the rejected batch.
    assert_eq!(s.rejected_quota, 2 * plans.len() as u64);
    assert_eq!(s.in_flight, 0);
    let v = tenant(&metrics, "vip");
    assert_eq!(v.completed, 1);
    assert_eq!(v.rejected_quota + v.rejected_shed, 0);

    drop(starved);
    drop(vip);
    gateway.shutdown();
}

/// ISSUE 7 acceptance: a remote `predict` yields an end-to-end trace.
/// The client mints a trace id, the id rides the v2 frame header both
/// ways, and the gateway's tracer decomposes the request into named
/// pipeline stages whose durations tile — and therefore sum to — the
/// reported end-to-end latency.
#[test]
fn remote_predict_trace_decomposes_end_to_end_latency() {
    let db = Database::generate(presets::imdb_like(0.02), 17);
    let (model, plans) = tiny_serving_fixture(&db, 8, 3);

    let gateway = NetServer::start(
        "127.0.0.1:0",
        PredictionServer::start(
            model,
            db.catalog().clone(),
            ServerConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 16,
                ..ServerConfig::default()
            },
        ),
        NetServerConfig::default().with_tenant("obs", TenantPolicy { max_in_flight: 16 }),
    )
    .expect("bind gateway");

    let client =
        Client::connect(gateway.local_addr(), ClientConfig::tenant("obs")).expect("connect");
    assert_eq!(
        client.negotiated_protocol_version().unwrap(),
        PROTOCOL_VERSION,
        "a current client against a current server negotiates v2"
    );

    let started = Instant::now();
    let remote = client.predict(&plans[0]).expect("remote predict");
    let wall_ns = started.elapsed().as_nanos() as u64;
    assert_ne!(
        remote.trace_id, 0,
        "v2 connections mint a trace id per request"
    );

    // The responder finishes the trace just *after* writing the response
    // frame, so the client can see its answer a beat before the trace
    // lands in the ring — poll briefly.
    let trace = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(t) = gateway.tracer().find(remote.trace_id) {
                break t;
            }
            assert!(
                Instant::now() < deadline,
                "trace {} never finished",
                remote.trace_id
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };

    // At least four named stages decompose the request; a cold cache
    // makes featurization explicit.
    let names: Vec<&str> = trace.stages.iter().map(|s| s.name).collect();
    assert!(
        names.len() >= 4,
        "expected >= 4 pipeline stages, got {names:?}"
    );
    for expected in [
        STAGE_ADMISSION,
        STAGE_QUEUE_WAIT,
        STAGE_FEATURIZE,
        STAGE_FORWARD,
        STAGE_RESPOND,
    ] {
        assert!(
            names.contains(&expected),
            "stage {expected} missing from {names:?}"
        );
    }

    // The stages are checkpoints, so their durations tile start..finish:
    // the sum *is* the reported end-to-end latency (the 20% acceptance
    // bound holds with zero slack), and it can never exceed what the
    // client observed around the whole round trip.
    let stage_sum: u64 = trace.stages.iter().map(|s| s.duration_ns).sum();
    assert_eq!(stage_sum, trace.total_ns, "stage durations tile the trace");
    assert!(
        (stage_sum as f64 - trace.total_ns as f64).abs() <= 0.2 * trace.total_ns as f64,
        "stage sum {stage_sum}ns strays >20% from end-to-end {}ns",
        trace.total_ns
    );
    assert!(
        trace.total_ns <= wall_ns,
        "server-side trace ({}ns) cannot exceed the client's wall clock ({wall_ns}ns)",
        trace.total_ns
    );

    // The gateway's independent end-to-end measurement (admission stamp
    // to response write, surfaced as the tenant's lifetime-max latency —
    // this tenant completed exactly one request) agrees with the stage
    // sum up to the decode/encode edges outside one clock but inside the
    // other: 20% relative or half a millisecond, whichever is larger.
    let metrics = wait_for_metrics(&client, |m| tenant(m, "obs").completed == 1);
    let reported_ns = tenant(&metrics, "obs").latency_max_ms * 1e6;
    assert!(reported_ns > 0.0, "gateway recorded the request's latency");
    let slack = (0.2 * reported_ns).max(500_000.0);
    assert!(
        (stage_sum as f64 - reported_ns).abs() <= slack,
        "stage sum {stage_sum}ns vs gateway-reported {reported_ns}ns exceeds {slack}ns slack"
    );

    drop(client);
    gateway.shutdown();
}

/// ISSUE 9 acceptance: drive a deliberately slow request over TCP,
/// retrieve it through the `SlowLog` wire op and its full provenance
/// through `Explain`.  The flight recorder's threshold is set to 1ns so
/// the request's classification as slow is deterministic, not a race
/// against the scheduler.
#[test]
fn slow_requests_are_retrievable_and_explainable_over_the_wire() {
    use zero_shot_db::obs::{FlightRecorderConfig, SloConfig};
    use zero_shot_db::serve::{ObservabilityConfig, MODEL_NAME};

    let db = Database::generate(presets::imdb_like(0.02), 23);
    let (model, plans) = tiny_serving_fixture(&db, 8, 3);

    let gateway = NetServer::start(
        "127.0.0.1:0",
        PredictionServer::start_observed(
            model,
            5,
            db.catalog().clone(),
            ServerConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 16,
                ..ServerConfig::default()
            },
            ObservabilityConfig {
                flight: FlightRecorderConfig {
                    slow_threshold_ns: 1,
                    ..FlightRecorderConfig::default()
                },
                slo: SloConfig {
                    // Everything violates a 1ns objective, so the burn
                    // rate is deterministically nonzero.
                    latency_objective_ns: 1,
                    ..SloConfig::default()
                },
            },
        ),
        NetServerConfig::default().with_tenant("prov", TenantPolicy { max_in_flight: 16 }),
    )
    .expect("bind gateway");

    let client =
        Client::connect(gateway.local_addr(), ClientConfig::tenant("prov")).expect("connect");
    // The deliberately slow request: a cold cache forces featurization,
    // and the 1ns threshold guarantees retention in the slow ring.
    let remote = client.predict(&plans[0]).expect("remote predict");
    assert_ne!(remote.trace_id, 0, "v2 connection mints a trace id");

    // The responder assembles provenance just after writing the
    // response, so poll briefly for the record to land.
    let record = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client.explain(remote.trace_id) {
                Ok(record) => break record,
                Err(ClientError::Server {
                    code: ErrorCode::BadRequest,
                    ..
                }) => {
                    assert!(
                        Instant::now() < deadline,
                        "provenance for trace {} never landed",
                        remote.trace_id
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("explain failed: {e}"),
            }
        }
    };

    // The record names the serving model and carries the prediction.
    assert_eq!(record.trace_id, remote.trace_id);
    assert_eq!(record.model_name, MODEL_NAME);
    assert_eq!(record.model_version, 5, "record names the served version");
    assert_eq!(record.fingerprint, remote.fingerprint);
    assert!(!record.cache_hit, "first request was cold");
    assert_eq!(record.flight_class, "slow_threshold");
    assert!(record.predicted_secs.is_finite());

    // Its stage durations tile the end-to-end latency exactly.
    assert!(
        record.stages.len() >= 4,
        "named stages: {:?}",
        record.stages
    );
    let stage_sum: u64 = record.stages.iter().map(|s| s.duration_ns).sum();
    assert_eq!(
        stage_sum, record.total_ns,
        "stage durations tile the end-to-end latency"
    );

    // The slow log retrieves the same record, worst-first.
    let slow = client.slow_log(16).expect("slow log over the wire");
    assert!(
        slow.iter().any(|r| r.trace_id == remote.trace_id),
        "the slow request is in the slow log"
    );
    assert!(
        slow.windows(2).all(|w| w[0].total_ns >= w[1].total_ns),
        "slow log is sorted worst-first"
    );

    // SLO status over the wire: the 1ns objective makes the request bad,
    // so every window burns.
    let slo = client.slo_status().expect("slo status over the wire");
    assert_eq!(slo.latency_objective_ns, 1);
    assert!(!slo.windows.is_empty());
    for window in &slo.windows {
        assert_eq!(window.good + window.bad, 1, "one request graded");
        assert_eq!(window.bad, 1, "the slow request violates the objective");
        assert!(window.burn_rate > 1.0, "burning through the error budget");
    }

    // The snapshot + prometheus surfaces carry the new series too.
    let text = client.metrics_text().expect("prometheus over the wire");
    assert!(text.contains("serve_slow_requests_retained"));
    assert!(text.contains("serve_slo_burn_rate"));

    // Unknown trace ids answer a structured error, not a hang.
    match client.explain(u64::MAX) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("no provenance"), "got: {message}");
        }
        other => panic!("expected BadRequest for unknown trace, got {other:?}"),
    }

    drop(client);
    gateway.shutdown();
}

/// Latency/stage recording is striped per thread — no lock shared
/// between worker threads — so concurrent tenants hammering the gateway
/// while another thread repeatedly merges snapshots (JSON and
/// Prometheus text over the wire) can never serialize or wedge, and no
/// sample is lost.
#[test]
fn concurrent_recording_under_snapshot_pressure_loses_nothing() {
    let db = Database::generate(presets::imdb_like(0.02), 19);
    let (model, plans) = tiny_serving_fixture(&db, 10, 4);

    let gateway = NetServer::start(
        "127.0.0.1:0",
        PredictionServer::start(
            model,
            db.catalog().clone(),
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                cache_capacity: 64,
                ..ServerConfig::default()
            },
        ),
        NetServerConfig::default()
            .with_tenant("alpha", TenantPolicy { max_in_flight: 64 })
            .with_tenant("beta", TenantPolicy { max_in_flight: 64 }),
    )
    .expect("bind gateway");
    let addr = gateway.local_addr();

    const THREADS_PER_TENANT: usize = 2;
    const ROUNDS: usize = 8;
    let alpha = Client::connect(
        addr,
        ClientConfig {
            connections: 2,
            ..ClientConfig::tenant("alpha")
        },
    )
    .expect("connect alpha");
    let beta = Client::connect(addr, ClientConfig::tenant("beta")).expect("connect beta");

    std::thread::scope(|scope| {
        for client in [&alpha, &beta] {
            for worker in 0..THREADS_PER_TENANT {
                let plans = &plans;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        let plan = &plans[(worker + round) % plans.len()];
                        client.predict(plan).expect("remote predict");
                    }
                });
            }
        }
        // Merge snapshots as fast as possible while recording is hot:
        // a shared recording lock would show up here as serialization
        // (or a deadlock); striped shards only ever merge on this path.
        scope.spawn(|| {
            for _ in 0..50 {
                let _ = alpha.metrics().expect("metrics mid-flight");
                let text = alpha.metrics_text().expect("prometheus mid-flight");
                assert!(text.contains("serve_stage_forward_ns"));
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });

    let per_tenant = (THREADS_PER_TENANT * ROUNDS) as u64;
    let metrics = wait_for_metrics(&alpha, |m| {
        tenant(m, "alpha").completed == per_tenant && tenant(m, "beta").completed == per_tenant
    });
    for name in ["alpha", "beta"] {
        let t = tenant(&metrics, name);
        assert_eq!(t.completed, per_tenant, "{name} lost completions");
        assert_eq!(t.rejected_quota + t.rejected_shed, 0);
        assert_eq!(t.in_flight, 0);
        assert!(t.latency_max_ms >= t.latency_min_ms);
        assert!(t.latency_min_ms > 0.0, "{name} recorded real latencies");
    }
    assert!(metrics.server_total_requests >= 2 * per_tenant);
    assert!(metrics.window_capacity >= metrics.window_occupancy);

    drop(alpha);
    drop(beta);
    gateway.shutdown();
}
