//! End-to-end serving test (ISSUE 2 acceptance): train a zero-shot model
//! on generated databases, register it, reload it through the integrity
//! check, and serve ≥ 1000 concurrent predictions through a ≥ 4-thread
//! worker pool, asserting
//!
//! (a) every served prediction equals the single-threaded path
//!     bit-for-bit,
//! (b) the feature cache gets hits on a repeated workload, and
//! (c) the emitted `BENCH_serve.json` reports throughput and p50/p95/p99
//!     latency.

use std::collections::HashMap;
use std::sync::Arc;
use zero_shot_db::catalog::presets;
use zero_shot_db::query::WorkloadGenerator;
use zero_shot_db::serve::{MetricsSnapshot, ModelRegistry, PredictionServer, ServerConfig};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{collect_training_corpus, TrainingDataConfig};
use zero_shot_db::zeroshot::features::featurize_plan;
use zero_shot_db::zeroshot::{
    plan_fingerprint, FeaturizerConfig, ModelConfig, PlanGraph, Trainer, TrainingConfig,
};
use zsdb_engine::QueryRunner;

const WORKERS: usize = 4;
const REPEATS: usize = 10;
const DISTINCT_PLANS: usize = 100;

#[test]
fn train_register_and_serve_concurrently() {
    // ---- Train on generated databases --------------------------------
    let data_config = TrainingDataConfig::tiny();
    let corpus = collect_training_corpus(&data_config);
    let schemas = zero_shot_db::catalog::SchemaGenerator::new(data_config.schema_config.clone())
        .generate_corpus("train", data_config.num_databases, data_config.seed);
    let trainer = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 3,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::estimated(),
    );
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas.iter().find(|s| s.name == name).expect("catalog")
    });
    let model = trainer.train(&graphs);

    // ---- Register + integrity-checked reload -------------------------
    let dir = std::env::temp_dir().join(format!("zsdb_serve_e2e_{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).expect("open registry");
    let version = registry
        .register("e2e", &model, &graphs[..6])
        .expect("register");
    let served_model = registry
        .load("e2e", version)
        .expect("integrity-checked load");

    // ---- Request stream: optimizer plans on an unseen database -------
    let imdb = Database::generate(presets::imdb_like(0.02), 42);
    let runner = QueryRunner::with_defaults(&imdb);
    let queries = WorkloadGenerator::with_defaults().generate(imdb.catalog(), DISTINCT_PLANS, 99);
    let plans = runner.plan_workload(&queries);
    assert_eq!(plans.len(), DISTINCT_PLANS);

    // Single-threaded reference predictions, keyed by fingerprint.
    let reference: HashMap<u64, u64> = plans
        .iter()
        .map(|p| {
            let g: PlanGraph = featurize_plan(imdb.catalog(), p, served_model.featurizer);
            (plan_fingerprint(p), served_model.predict(&g).to_bits())
        })
        .collect();

    // ---- Serve ≥ 1000 requests through ≥ 4 workers -------------------
    let server = Arc::new(PredictionServer::start(
        served_model,
        imdb.catalog().clone(),
        ServerConfig {
            workers: WORKERS,
            queue_capacity: 64,
            cache_capacity: 512,
            ..ServerConfig::default()
        },
    ));
    let clients = 8;
    let per_client = DISTINCT_PLANS * REPEATS / clients;
    assert!(clients * per_client >= 1000);

    let mut handles = Vec::new();
    for c in 0..clients {
        let server = Arc::clone(&server);
        let plans = plans.clone();
        handles.push(std::thread::spawn(move || {
            let mut results = Vec::with_capacity(per_client);
            for i in 0..per_client {
                let plan = plans[(c * per_client + i) % plans.len()].clone();
                let prediction = server.submit(plan).expect("submit").wait().expect("wait");
                results.push(prediction);
            }
            results
        }));
    }
    let predictions: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(predictions.len(), DISTINCT_PLANS * REPEATS);

    // (a) bit-for-bit equality with the single-threaded path.
    for p in &predictions {
        let expected = reference
            .get(&p.fingerprint)
            .expect("served fingerprint matches a submitted plan");
        assert_eq!(
            p.runtime_secs.to_bits(),
            *expected,
            "served prediction diverged from the single-threaded path"
        );
    }

    // (b) repeated workload ⇒ cache hits.
    let final_metrics = server.metrics();
    assert!(
        final_metrics.cache_hit_rate > 0.0,
        "expected cache hits on a {REPEATS}x-repeated workload"
    );
    assert!(predictions.iter().any(|p| p.cache_hit));

    // (c) BENCH_serve.json reports throughput and latency percentiles.
    let report_path = dir.join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(&final_metrics).expect("serialize metrics");
    std::fs::write(&report_path, &json).expect("write BENCH_serve.json");
    let raw = std::fs::read_to_string(&report_path).expect("read back report");
    for key in [
        "throughput_qps",
        "latency_p50_ms",
        "latency_p95_ms",
        "latency_p99_ms",
        "cache_hit_rate",
        "total_requests",
    ] {
        assert!(raw.contains(key), "BENCH_serve.json missing key {key}");
    }
    let parsed: MetricsSnapshot = serde_json::from_str(&raw).expect("parse report");
    assert_eq!(parsed.total_requests, (DISTINCT_PLANS * REPEATS) as u64);
    assert_eq!(parsed.workers, WORKERS);
    assert!(parsed.throughput_qps > 0.0);
    assert!(parsed.latency_p50_ms > 0.0);
    assert!(parsed.latency_p95_ms >= parsed.latency_p50_ms);
    assert!(parsed.latency_p99_ms >= parsed.latency_p95_ms);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_submission_matches_single_submission_over_1000_requests() {
    // ISSUE 3 acceptance: 1000 requests in batches of 32 through
    // `submit_batch`, bit-identical to `submit`, with the batch sizes
    // showing up in the metrics histogram.
    const TOTAL: usize = 1000;
    const BATCH: usize = 32;

    let db = Database::generate(presets::imdb_like(0.02), 21);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 40, 9);
    let executions = runner.run_workload(&queries, 0);
    let graphs: Vec<PlanGraph> = executions
        .iter()
        .map(|e| {
            zero_shot_db::zeroshot::features::featurize_execution(
                db.catalog(),
                e,
                FeaturizerConfig::exact(),
            )
        })
        .collect();
    let model = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 1,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    )
    .train(&graphs);
    let plans = runner.plan_workload(&queries);

    let server = PredictionServer::start(
        model,
        db.catalog().clone(),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
    );

    // Single-submission reference, keyed by fingerprint.
    let reference: HashMap<u64, u64> = plans
        .iter()
        .map(|p| {
            let served = server.submit(p.clone()).unwrap().wait().unwrap();
            (served.fingerprint, served.runtime_secs.to_bits())
        })
        .collect();
    let singles = plans.len() as u64;

    // The same request stream as 32-plan batches.
    let request_stream: Vec<_> = (0..TOTAL).map(|i| plans[i % plans.len()].clone()).collect();
    let mut tickets = Vec::new();
    for chunk in request_stream.chunks(BATCH) {
        tickets.push(server.submit_batch(chunk.to_vec()).expect("submit batch"));
    }
    let mut served = 0usize;
    for ticket in tickets {
        for prediction in ticket.wait().expect("batch answered") {
            let expected = reference
                .get(&prediction.fingerprint)
                .expect("known fingerprint");
            assert_eq!(
                prediction.runtime_secs.to_bits(),
                *expected,
                "batched prediction diverged from single submission"
            );
            served += 1;
        }
    }
    assert_eq!(served, TOTAL);

    // Histogram: 31 full batches of 32 in "32-63", one tail batch of 8 in
    // "8-15", plus the single-submission warmup in "1".
    let metrics = server.shutdown();
    assert_eq!(metrics.total_requests, TOTAL as u64 + singles);
    let labels = zero_shot_db::serve::BATCH_SIZE_BUCKET_LABELS;
    let hist = &metrics.batch_size_histogram;
    assert_eq!(hist.len(), labels.len());
    let bucket_of = |label: &str| labels.iter().position(|l| *l == label).unwrap();
    assert_eq!(hist[bucket_of("1")], singles);
    assert_eq!(hist[bucket_of("32-63")], (TOTAL / BATCH) as u64);
    assert_eq!(hist[bucket_of("8-15")], 1, "tail batch of 8");
}

#[test]
fn backpressure_sheds_load_under_a_burst() {
    // A tiny queue and a single worker: a fast burst of try_submit calls
    // must observe `Overloaded` instead of queueing without bound, while
    // blocking `submit` still eventually serves everything.
    let db = Database::generate(presets::imdb_like(0.02), 7);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 10, 3);
    let executions = runner.run_workload(&queries, 0);
    let graphs: Vec<PlanGraph> = executions
        .iter()
        .map(|e| {
            zero_shot_db::zeroshot::features::featurize_execution(
                db.catalog(),
                e,
                FeaturizerConfig::exact(),
            )
        })
        .collect();
    let model = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 1,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    )
    .train(&graphs);
    let plans = runner.plan_workload(&queries);

    let server = PredictionServer::start(
        model,
        db.catalog().clone(),
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..300 {
        match server.try_submit(plans[i % plans.len()].clone()) {
            Ok(ticket) => accepted.push(ticket),
            Err(rejected)
                if matches!(rejected.reason, zero_shot_db::serve::ServeError::Overloaded) =>
            {
                shed += 1
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(shed > 0, "burst of 300 should overflow a 2-slot queue");
    for ticket in accepted {
        ticket.wait().expect("accepted requests are served");
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.total_requests as usize, 300 - shed);
}
