//! Column metadata and column references.

use crate::stats::ColumnStatistics;
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::schema::TableId;

/// Index of a column *within its table* (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// Column index as `usize` for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Fully qualified reference to a column: `(table, column)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table the column belongs to.
    pub table: TableId,
    /// Column index within that table.
    pub column: ColumnId,
}

impl ColumnRef {
    /// Convenience constructor.
    pub fn new(table: TableId, column: ColumnId) -> Self {
        ColumnRef { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.table.0, self.column)
    }
}

/// Metadata of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Human-readable name (unique within its table).
    pub name: String,
    /// Logical data type.
    pub data_type: DataType,
    /// Whether the column is the table's primary key.
    pub is_primary_key: bool,
    /// Catalog statistics (distinct count, range, null fraction, generative
    /// distribution).
    pub stats: ColumnStatistics,
}

impl ColumnMeta {
    /// Create a new column with the given name, type and statistics.
    pub fn new(name: impl Into<String>, data_type: DataType, stats: ColumnStatistics) -> Self {
        ColumnMeta {
            name: name.into(),
            data_type,
            is_primary_key: false,
            stats,
        }
    }

    /// Create a primary-key column named `name` for a table with
    /// `num_tuples` rows.
    pub fn primary_key(name: impl Into<String>, num_tuples: u64) -> Self {
        ColumnMeta {
            name: name.into(),
            data_type: DataType::Int,
            is_primary_key: true,
            stats: ColumnStatistics::primary_key(num_tuples),
        }
    }

    /// Byte width of a value of this column.
    pub fn width_bytes(&self) -> u32 {
        self.data_type.width_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Distribution;

    #[test]
    fn primary_key_column() {
        let c = ColumnMeta::primary_key("id", 500);
        assert!(c.is_primary_key);
        assert_eq!(c.data_type, DataType::Int);
        assert_eq!(c.stats.distinct_count, 500);
        assert_eq!(c.width_bytes(), 8);
    }

    #[test]
    fn column_ref_display() {
        let r = ColumnRef::new(TableId(3), ColumnId(2));
        assert_eq!(r.to_string(), "t3.c2");
    }

    #[test]
    fn column_ref_ordering_is_total() {
        let a = ColumnRef::new(TableId(0), ColumnId(1));
        let b = ColumnRef::new(TableId(1), ColumnId(0));
        assert!(a < b);
    }

    #[test]
    fn plain_column_is_not_pk() {
        let stats = ColumnStatistics {
            distinct_count: 10,
            null_fraction: 0.1,
            min: Some(0.0),
            max: Some(9.0),
            distribution: Distribution::Uniform,
        };
        let c = ColumnMeta::new("kind", DataType::Categorical, stats);
        assert!(!c.is_primary_key);
        assert_eq!(c.width_bytes(), 4);
    }
}
