//! Hand-built evaluation schemas.
//!
//! The paper evaluates on the IMDB database (JOB-light / scale / synthetic
//! workloads) and mentions SSB as a contrasting schema.  The real datasets
//! are not available in this environment, so these presets reproduce their
//! *shape*: the IMDB-like schema mirrors the six JOB-light tables with a
//! central `title` table, realistic relative cardinalities and skewed
//! foreign keys; the SSB-like schema is a classic star schema.
//!
//! The `scale` parameter lets tests use tiny instances while the benchmark
//! harness uses larger ones.

use crate::column::{ColumnMeta, ColumnRef};
use crate::schema::SchemaCatalog;
use crate::stats::{ColumnStatistics, Distribution};
use crate::table::TableMeta;
use crate::types::DataType;

fn numeric_col(
    name: &str,
    data_type: DataType,
    distinct: u64,
    min: f64,
    max: f64,
    null_fraction: f64,
    distribution: Distribution,
) -> ColumnMeta {
    ColumnMeta::new(
        name,
        data_type,
        ColumnStatistics {
            distinct_count: distinct,
            null_fraction,
            min: Some(min),
            max: Some(max),
            distribution,
        },
    )
}

fn categorical_col(name: &str, distinct: u64, null_fraction: f64, skew: f64) -> ColumnMeta {
    ColumnMeta::new(
        name,
        DataType::Categorical,
        ColumnStatistics {
            distinct_count: distinct,
            null_fraction,
            min: Some(0.0),
            max: Some(distinct.saturating_sub(1) as f64),
            distribution: Distribution::Zipf { skew },
        },
    )
}

fn fk_col(name: &str, parent_rows: u64, skew: Option<f64>) -> ColumnMeta {
    let distribution = match skew {
        Some(s) => Distribution::ForeignKeyZipf { skew: s },
        None => Distribution::ForeignKeyUniform,
    };
    ColumnMeta::new(
        name,
        DataType::Int,
        ColumnStatistics {
            distinct_count: parent_rows.max(1),
            null_fraction: 0.0,
            min: Some(0.0),
            max: Some(parent_rows.saturating_sub(1) as f64),
            distribution,
        },
    )
}

/// IMDB-like schema with the six tables used by the JOB-light benchmark:
/// `title`, `movie_companies`, `movie_info`, `movie_info_idx`,
/// `movie_keyword`, `cast_info`.  `scale = 1.0` gives a ~25k-row `title`
/// table with proportionally sized satellite tables (the real IMDB has
/// ~2.5M titles; the relative sizes are preserved).
pub fn imdb_like(scale: f64) -> SchemaCatalog {
    let scale = scale.max(0.01);
    let rows = |base: f64| ((base * scale) as u64).max(100);

    let title_rows = rows(25_000.0);
    let mc_rows = rows(65_000.0);
    let mi_rows = rows(120_000.0);
    let mi_idx_rows = rows(35_000.0);
    let mk_rows = rows(110_000.0);
    let ci_rows = rows(160_000.0);

    let mut schema = SchemaCatalog::new("imdb_like");

    let title = schema
        .add_table(TableMeta::new(
            "title",
            vec![
                ColumnMeta::primary_key("id", title_rows),
                numeric_col(
                    "production_year",
                    DataType::Int,
                    130,
                    1890.0,
                    2020.0,
                    0.05,
                    Distribution::Normal { spread: 0.18 },
                ),
                categorical_col("kind_id", 7, 0.0, 1.1),
                numeric_col(
                    "episode_nr",
                    DataType::Int,
                    500,
                    0.0,
                    500.0,
                    0.6,
                    Distribution::Zipf { skew: 1.4 },
                ),
                categorical_col("series_years", 80, 0.7, 1.2),
            ],
            title_rows,
        ))
        .expect("fresh schema");

    let movie_companies = schema
        .add_table(TableMeta::new(
            "movie_companies",
            vec![
                ColumnMeta::primary_key("id", mc_rows),
                fk_col("movie_id", title_rows, Some(0.8)),
                categorical_col("company_id", 2_000, 0.0, 1.3),
                categorical_col("company_type_id", 4, 0.0, 0.9),
            ],
            mc_rows,
        ))
        .expect("fresh schema");

    let movie_info = schema
        .add_table(TableMeta::new(
            "movie_info",
            vec![
                ColumnMeta::primary_key("id", mi_rows),
                fk_col("movie_id", title_rows, Some(0.9)),
                categorical_col("info_type_id", 110, 0.0, 1.2),
            ],
            mi_rows,
        ))
        .expect("fresh schema");

    let movie_info_idx = schema
        .add_table(TableMeta::new(
            "movie_info_idx",
            vec![
                ColumnMeta::primary_key("id", mi_idx_rows),
                fk_col("movie_id", title_rows, None),
                categorical_col("info_type_id", 5, 0.0, 0.8),
                numeric_col(
                    "info",
                    DataType::Float,
                    1_000,
                    0.0,
                    10.0,
                    0.0,
                    Distribution::Normal { spread: 0.2 },
                ),
            ],
            mi_idx_rows,
        ))
        .expect("fresh schema");

    let movie_keyword = schema
        .add_table(TableMeta::new(
            "movie_keyword",
            vec![
                ColumnMeta::primary_key("id", mk_rows),
                fk_col("movie_id", title_rows, Some(0.9)),
                categorical_col("keyword_id", 5_000, 0.0, 1.4),
            ],
            mk_rows,
        ))
        .expect("fresh schema");

    let cast_info = schema
        .add_table(TableMeta::new(
            "cast_info",
            vec![
                ColumnMeta::primary_key("id", ci_rows),
                fk_col("movie_id", title_rows, Some(0.9)),
                categorical_col("person_id", 10_000, 0.0, 1.3),
                categorical_col("role_id", 11, 0.0, 1.0),
                numeric_col(
                    "nr_order",
                    DataType::Int,
                    200,
                    0.0,
                    200.0,
                    0.4,
                    Distribution::Zipf { skew: 1.1 },
                ),
            ],
            ci_rows,
        ))
        .expect("fresh schema");

    let title_pk = ColumnRef::new(title, schema.table(title).primary_key().unwrap().0);
    for child in [
        movie_companies,
        movie_info,
        movie_info_idx,
        movie_keyword,
        cast_info,
    ] {
        let (fk_id, _) = schema.table(child).column_by_name("movie_id").unwrap();
        schema
            .add_foreign_key(ColumnRef::new(child, fk_id), title_pk)
            .expect("preset foreign keys are valid");
    }

    schema
}

/// SSB-like star schema: a `lineorder` fact table referencing `customer`,
/// `supplier`, `part` and `date_dim` dimensions.  Used as one of the held
/// out databases for generalization experiments.
pub fn ssb_like(scale: f64) -> SchemaCatalog {
    let scale = scale.max(0.01);
    let rows = |base: f64| ((base * scale) as u64).max(50);

    let lineorder_rows = rows(150_000.0);
    let customer_rows = rows(7_500.0);
    let supplier_rows = rows(500.0);
    let part_rows = rows(5_000.0);
    let date_rows = 2_556u64.max((2_556.0 * scale.min(1.0)) as u64);

    let mut schema = SchemaCatalog::new("ssb_like");

    let customer = schema
        .add_table(TableMeta::new(
            "customer",
            vec![
                ColumnMeta::primary_key("c_custkey", customer_rows),
                categorical_col("c_region", 5, 0.0, 0.9),
                categorical_col("c_nation", 25, 0.0, 1.0),
                categorical_col("c_mktsegment", 5, 0.0, 0.9),
            ],
            customer_rows,
        ))
        .expect("fresh schema");

    let supplier = schema
        .add_table(TableMeta::new(
            "supplier",
            vec![
                ColumnMeta::primary_key("s_suppkey", supplier_rows),
                categorical_col("s_region", 5, 0.0, 0.9),
                categorical_col("s_nation", 25, 0.0, 1.0),
            ],
            supplier_rows,
        ))
        .expect("fresh schema");

    let part = schema
        .add_table(TableMeta::new(
            "part",
            vec![
                ColumnMeta::primary_key("p_partkey", part_rows),
                categorical_col("p_category", 25, 0.0, 1.0),
                categorical_col("p_brand", 1_000, 0.0, 1.2),
                numeric_col(
                    "p_size",
                    DataType::Int,
                    50,
                    1.0,
                    50.0,
                    0.0,
                    Distribution::Uniform,
                ),
            ],
            part_rows,
        ))
        .expect("fresh schema");

    let date_dim = schema
        .add_table(TableMeta::new(
            "date_dim",
            vec![
                ColumnMeta::primary_key("d_datekey", date_rows),
                numeric_col(
                    "d_year",
                    DataType::Int,
                    7,
                    1992.0,
                    1998.0,
                    0.0,
                    Distribution::Uniform,
                ),
                numeric_col(
                    "d_month",
                    DataType::Int,
                    12,
                    1.0,
                    12.0,
                    0.0,
                    Distribution::Uniform,
                ),
            ],
            date_rows,
        ))
        .expect("fresh schema");

    let lineorder = schema
        .add_table(TableMeta::new(
            "lineorder",
            vec![
                ColumnMeta::primary_key("lo_orderkey", lineorder_rows),
                fk_col("lo_custkey", customer_rows, Some(0.8)),
                fk_col("lo_suppkey", supplier_rows, None),
                fk_col("lo_partkey", part_rows, Some(0.9)),
                fk_col("lo_orderdate", date_rows, None),
                numeric_col(
                    "lo_quantity",
                    DataType::Int,
                    50,
                    1.0,
                    50.0,
                    0.0,
                    Distribution::Uniform,
                ),
                numeric_col(
                    "lo_revenue",
                    DataType::Float,
                    10_000,
                    0.0,
                    600_000.0,
                    0.0,
                    Distribution::Normal { spread: 0.25 },
                ),
                numeric_col(
                    "lo_discount",
                    DataType::Float,
                    11,
                    0.0,
                    0.1,
                    0.0,
                    Distribution::Uniform,
                ),
            ],
            lineorder_rows,
        ))
        .expect("fresh schema");

    let fk_pairs = [
        ("lo_custkey", customer),
        ("lo_suppkey", supplier),
        ("lo_partkey", part),
        ("lo_orderdate", date_dim),
    ];
    for (fk_name, parent) in fk_pairs {
        let (fk_id, _) = schema.table(lineorder).column_by_name(fk_name).unwrap();
        let parent_pk = ColumnRef::new(parent, schema.table(parent).primary_key().unwrap().0);
        schema
            .add_foreign_key(ColumnRef::new(lineorder, fk_id), parent_pk)
            .expect("preset foreign keys are valid");
    }

    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imdb_like_has_job_light_tables() {
        let schema = imdb_like(0.1);
        for name in [
            "title",
            "movie_companies",
            "movie_info",
            "movie_info_idx",
            "movie_keyword",
            "cast_info",
        ] {
            assert!(schema.table_by_name(name).is_ok(), "missing table {name}");
        }
        assert_eq!(schema.foreign_keys().len(), 5);
    }

    #[test]
    fn imdb_like_satellites_join_to_title() {
        let schema = imdb_like(0.1);
        let (title, _) = schema.table_by_name("title").unwrap();
        for fk in schema.foreign_keys() {
            assert_eq!(fk.parent.table, title);
            assert!(schema.column(fk.parent).is_primary_key);
        }
    }

    #[test]
    fn imdb_like_scales_with_parameter() {
        let small = imdb_like(0.05);
        let large = imdb_like(0.5);
        assert!(large.total_tuples() > small.total_tuples() * 5);
    }

    #[test]
    fn ssb_like_is_a_star() {
        let schema = ssb_like(0.1);
        let (fact, _) = schema.table_by_name("lineorder").unwrap();
        assert_eq!(schema.foreign_keys().len(), 4);
        for fk in schema.foreign_keys() {
            assert_eq!(fk.child.table, fact);
        }
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(imdb_like(0.2), imdb_like(0.2));
        assert_eq!(ssb_like(0.2), ssb_like(0.2));
    }
}
