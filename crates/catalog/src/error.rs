//! Error type for catalog operations.

use std::fmt;

/// Errors produced when building or querying a [`crate::SchemaCatalog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with this name already exists.
    DuplicateTable(String),
    /// No table with this name / id exists.
    UnknownTable(String),
    /// No column with this name exists in the named table.
    UnknownColumn {
        /// Table that was searched.
        table: String,
        /// Column name that was not found.
        column: String,
    },
    /// A foreign key references a non-existent table or column.
    InvalidForeignKey(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateTable(name) => write!(f, "duplicate table `{name}`"),
            CatalogError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            CatalogError::InvalidForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            CatalogError::DuplicateTable("t".into()).to_string(),
            "duplicate table `t`"
        );
        assert_eq!(
            CatalogError::UnknownColumn {
                table: "a".into(),
                column: "b".into()
            }
            .to_string(),
            "unknown column `b` in table `a`"
        );
    }
}
