//! Coarse per-column statistics and generative distribution specifications.
//!
//! [`ColumnStatistics`] is the *catalog-level* view of a column used for
//! transferable featurization and for the Postgres-style cardinality
//! estimator: distinct count, min/max, null fraction.  The finer-grained
//! histograms are built from the actual data in `zsdb-cardest`.
//!
//! [`Distribution`] describes how synthetic data for the column is generated;
//! it is part of the catalog so that the schema generator can decide the
//! data characteristics and `zsdb-storage` merely realises them.

use serde::{Deserialize, Serialize};

/// How synthetic values for a column are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Dense sequential values `0..n`; used for primary keys.
    Sequential,
    /// Uniform over `[min, max]`.
    Uniform,
    /// Zipf-distributed over the distinct domain with the given skew
    /// parameter (1.0 ≈ classic Zipf, larger = more skew).
    Zipf {
        /// Skew exponent; must be > 0.
        skew: f64,
    },
    /// (Truncated) normal around the domain midpoint; `spread` is the
    /// standard deviation as a fraction of the domain width.
    Normal {
        /// Standard deviation as a fraction of `(max - min)`.
        spread: f64,
    },
    /// Values drawn uniformly from the key domain of the referenced table;
    /// used for foreign-key columns.
    ForeignKeyUniform,
    /// Foreign-key values drawn with Zipf skew, so some parents have many
    /// children (e.g. popular movies with many cast entries).
    ForeignKeyZipf {
        /// Skew exponent; must be > 0.
        skew: f64,
    },
}

impl Distribution {
    /// Whether this distribution models a foreign-key column.
    pub fn is_foreign_key(&self) -> bool {
        matches!(
            self,
            Distribution::ForeignKeyUniform | Distribution::ForeignKeyZipf { .. }
        )
    }
}

/// Coarse statistics of a single column, as a classical catalog would keep
/// them (`pg_stats`-style).  These are *transferable* features: they do not
/// name the column or database, only describe its data characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStatistics {
    /// Number of distinct non-null values.
    pub distinct_count: u64,
    /// Fraction of NULL values in `[0, 1]`.
    pub null_fraction: f64,
    /// Minimum value (as f64 view); `None` if the column is all-NULL.
    pub min: Option<f64>,
    /// Maximum value (as f64 view); `None` if the column is all-NULL.
    pub max: Option<f64>,
    /// Generative distribution of the column data.
    pub distribution: Distribution,
}

impl ColumnStatistics {
    /// Statistics for a dense primary-key column over `0..num_tuples`.
    pub fn primary_key(num_tuples: u64) -> Self {
        ColumnStatistics {
            distinct_count: num_tuples,
            null_fraction: 0.0,
            min: Some(0.0),
            max: Some(num_tuples.saturating_sub(1) as f64),
            distribution: Distribution::Sequential,
        }
    }

    /// Width of the value domain (`max - min`), or 0 if unknown/degenerate.
    pub fn domain_width(&self) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if hi > lo => hi - lo,
            _ => 0.0,
        }
    }

    /// Fraction of rows with a non-null value.
    pub fn non_null_fraction(&self) -> f64 {
        (1.0 - self.null_fraction).clamp(0.0, 1.0)
    }

    /// Selectivity of an equality predicate under the classical uniformity
    /// assumption: `(1 - null_frac) / distinct_count`.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct_count == 0 {
            return 0.0;
        }
        self.non_null_fraction() / self.distinct_count as f64
    }

    /// Selectivity of `col < v` (or `> v` via `1 - sel`) under a uniform
    /// value assumption over `[min, max]`.
    pub fn lt_selectivity(&self, v: f64) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if hi > lo => {
                (((v - lo) / (hi - lo)).clamp(0.0, 1.0)) * self.non_null_fraction()
            }
            _ => 0.5 * self.non_null_fraction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_key_stats() {
        let s = ColumnStatistics::primary_key(1000);
        assert_eq!(s.distinct_count, 1000);
        assert_eq!(s.null_fraction, 0.0);
        assert_eq!(s.min, Some(0.0));
        assert_eq!(s.max, Some(999.0));
        assert!(matches!(s.distribution, Distribution::Sequential));
    }

    #[test]
    fn eq_selectivity_uniform() {
        let s = ColumnStatistics {
            distinct_count: 100,
            null_fraction: 0.0,
            min: Some(0.0),
            max: Some(99.0),
            distribution: Distribution::Uniform,
        };
        assert!((s.eq_selectivity() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn eq_selectivity_respects_nulls() {
        let s = ColumnStatistics {
            distinct_count: 10,
            null_fraction: 0.5,
            min: Some(0.0),
            max: Some(9.0),
            distribution: Distribution::Uniform,
        };
        assert!((s.eq_selectivity() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn lt_selectivity_clamps() {
        let s = ColumnStatistics {
            distinct_count: 10,
            null_fraction: 0.0,
            min: Some(0.0),
            max: Some(100.0),
            distribution: Distribution::Uniform,
        };
        assert_eq!(s.lt_selectivity(-5.0), 0.0);
        assert_eq!(s.lt_selectivity(200.0), 1.0);
        assert!((s.lt_selectivity(50.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_distinct_eq_selectivity_is_zero() {
        let s = ColumnStatistics {
            distinct_count: 0,
            null_fraction: 1.0,
            min: None,
            max: None,
            distribution: Distribution::Uniform,
        };
        assert_eq!(s.eq_selectivity(), 0.0);
        assert_eq!(s.domain_width(), 0.0);
    }

    #[test]
    fn fk_distributions_flagged() {
        assert!(Distribution::ForeignKeyUniform.is_foreign_key());
        assert!(Distribution::ForeignKeyZipf { skew: 1.2 }.is_foreign_key());
        assert!(!Distribution::Uniform.is_foreign_key());
    }
}
