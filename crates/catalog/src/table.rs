//! Table metadata.

use crate::column::{ColumnId, ColumnMeta};
use crate::PAGE_SIZE_BYTES;
use serde::{Deserialize, Serialize};

/// Per-tuple storage overhead in bytes (header, alignment), mimicking the
/// ~23-byte PostgreSQL tuple header rounded to 24.
pub const TUPLE_OVERHEAD_BYTES: u64 = 24;

/// Metadata of a single table: its columns and physical size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Table name (unique within the schema).
    pub name: String,
    /// Columns in definition order; `ColumnId(i)` refers to `columns[i]`.
    pub columns: Vec<ColumnMeta>,
    /// Number of tuples stored in the table.
    pub num_tuples: u64,
}

impl TableMeta {
    /// Create a table with the given name, columns and row count.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnMeta>, num_tuples: u64) -> Self {
        TableMeta {
            name: name.into(),
            columns,
            num_tuples,
        }
    }

    /// Width of one row in bytes (sum of column widths plus tuple overhead).
    pub fn row_width_bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| c.width_bytes() as u64)
            .sum::<u64>()
            + TUPLE_OVERHEAD_BYTES
    }

    /// Number of heap pages occupied by the table.
    pub fn num_pages(&self) -> u64 {
        let rows_per_page = (PAGE_SIZE_BYTES / self.row_width_bytes().max(1)).max(1);
        self.num_tuples.div_ceil(rows_per_page).max(1)
    }

    /// Look up a column by name.
    pub fn column_by_name(&self, name: &str) -> Option<(ColumnId, &ColumnMeta)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name == name)
            .map(|(i, c)| (ColumnId(i as u32), c))
    }

    /// Column metadata by id; panics on out-of-range ids (programmer error).
    pub fn column(&self, id: ColumnId) -> &ColumnMeta {
        &self.columns[id.index()]
    }

    /// The primary-key column of this table, if any.
    pub fn primary_key(&self) -> Option<(ColumnId, &ColumnMeta)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.is_primary_key)
            .map(|(i, c)| (ColumnId(i as u32), c))
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ColumnStatistics, Distribution};
    use crate::types::DataType;

    fn sample_table() -> TableMeta {
        let stats = ColumnStatistics {
            distinct_count: 50,
            null_fraction: 0.0,
            min: Some(0.0),
            max: Some(49.0),
            distribution: Distribution::Uniform,
        };
        TableMeta::new(
            "movies",
            vec![
                ColumnMeta::primary_key("id", 10_000),
                ColumnMeta::new("year", DataType::Int, stats.clone()),
                ColumnMeta::new("kind", DataType::Categorical, stats),
            ],
            10_000,
        )
    }

    #[test]
    fn row_width_includes_overhead() {
        let t = sample_table();
        assert_eq!(t.row_width_bytes(), 8 + 8 + 4 + TUPLE_OVERHEAD_BYTES);
    }

    #[test]
    fn page_count_is_sane() {
        let t = sample_table();
        let rows_per_page = PAGE_SIZE_BYTES / t.row_width_bytes();
        assert_eq!(t.num_pages(), 10_000u64.div_ceil(rows_per_page));
        assert!(t.num_pages() > 0);
    }

    #[test]
    fn empty_table_has_one_page() {
        let t = TableMeta::new("empty", vec![ColumnMeta::primary_key("id", 0)], 0);
        assert_eq!(t.num_pages(), 1);
    }

    #[test]
    fn column_lookup_by_name() {
        let t = sample_table();
        let (id, c) = t.column_by_name("year").unwrap();
        assert_eq!(id, ColumnId(1));
        assert_eq!(c.data_type, DataType::Int);
        assert!(t.column_by_name("missing").is_none());
    }

    #[test]
    fn primary_key_lookup() {
        let t = sample_table();
        let (id, c) = t.primary_key().unwrap();
        assert_eq!(id, ColumnId(0));
        assert_eq!(c.name, "id");
    }
}
