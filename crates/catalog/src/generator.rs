//! Synthetic schema generator.
//!
//! The paper trains its zero-shot model on ~19 publicly available databases
//! with different numbers of tables, sizes and data characteristics.  Those
//! datasets are not available here, so this module generates a *family* of
//! synthetic schemas whose diversity plays the same role: different table
//! counts, join topologies, table sizes, column types, skews and null
//! fractions.  `zsdb-storage` materialises matching data.

use crate::column::{ColumnId, ColumnMeta, ColumnRef};
use crate::schema::{SchemaCatalog, TableId};
use crate::stats::{ColumnStatistics, Distribution};
use crate::table::TableMeta;
use crate::types::DataType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Join topology of a generated schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// One central fact table referencing every dimension table.
    Star,
    /// A chain `t0 <- t1 <- t2 <- ...` of foreign keys.
    Chain,
    /// A star whose dimensions may themselves have sub-dimensions.
    Snowflake,
    /// A random spanning tree over the tables.
    RandomTree,
}

impl Topology {
    /// All topologies, used for round-robin assignment across generated
    /// databases.
    pub const ALL: [Topology; 4] = [
        Topology::Star,
        Topology::Chain,
        Topology::Snowflake,
        Topology::RandomTree,
    ];
}

/// Configuration for the synthetic schema generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Minimum number of tables per database (inclusive).
    pub min_tables: usize,
    /// Maximum number of tables per database (inclusive).
    pub max_tables: usize,
    /// Minimum number of rows for the *largest* table of a database.
    pub min_rows: u64,
    /// Maximum number of rows for the *largest* table of a database.
    pub max_rows: u64,
    /// Minimum number of non-key columns per table.
    pub min_extra_columns: usize,
    /// Maximum number of non-key columns per table.
    pub max_extra_columns: usize,
    /// Probability that a non-key column is categorical.
    pub categorical_fraction: f64,
    /// Maximum null fraction assigned to nullable columns.
    pub max_null_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_tables: 3,
            max_tables: 8,
            min_rows: 5_000,
            max_rows: 100_000,
            min_extra_columns: 2,
            max_extra_columns: 6,
            categorical_fraction: 0.4,
            max_null_fraction: 0.3,
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests and doc examples (tiny tables,
    /// fast data generation).
    pub fn tiny() -> Self {
        GeneratorConfig {
            min_tables: 2,
            max_tables: 4,
            min_rows: 200,
            max_rows: 2_000,
            min_extra_columns: 1,
            max_extra_columns: 3,
            ..GeneratorConfig::default()
        }
    }
}

/// Deterministic generator of diverse synthetic schemas.
#[derive(Debug, Clone)]
pub struct SchemaGenerator {
    config: GeneratorConfig,
}

impl SchemaGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        SchemaGenerator { config }
    }

    /// Generator with the default configuration.
    pub fn with_defaults() -> Self {
        SchemaGenerator::new(GeneratorConfig::default())
    }

    /// Access the configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generate one schema.  The same `(name, seed)` always produces the
    /// same schema.
    pub fn generate(&self, name: &str, seed: u64) -> SchemaCatalog {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = &self.config;

        let num_tables = rng.random_range(cfg.min_tables..=cfg.max_tables);
        let topology = Topology::ALL[rng.random_range(0..Topology::ALL.len())];
        let max_rows = rng.random_range(cfg.min_rows..=cfg.max_rows);

        let mut schema = SchemaCatalog::new(name);

        // Table 0 is the root (fact) table and is the largest.
        let mut table_rows = Vec::with_capacity(num_tables);
        table_rows.push(max_rows);
        for _ in 1..num_tables {
            // Dimension tables are 2x–50x smaller than the fact table.
            let shrink = rng.random_range(2.0..50.0);
            let rows = ((max_rows as f64 / shrink) as u64).max(50);
            table_rows.push(rows);
        }

        for (i, &rows) in table_rows.iter().enumerate() {
            let table = self.generate_table(&mut rng, &format!("{name}_t{i}"), rows);
            schema
                .add_table(table)
                .expect("generated table names are unique");
        }

        // Parent assignment per topology: edge from child table to parent
        // table; the child gets an FK column appended.
        let parents = self.assign_parents(&mut rng, num_tables, topology);
        for (child_idx, parent_idx) in parents {
            let child = TableId(child_idx as u32);
            let parent = TableId(parent_idx as u32);
            self.add_fk_column(&mut rng, &mut schema, child, parent);
        }

        schema
    }

    /// Generate a whole corpus of `count` schemas with names
    /// `"{prefix}_{i}"`, seeds derived from `base_seed`.
    pub fn generate_corpus(
        &self,
        prefix: &str,
        count: usize,
        base_seed: u64,
    ) -> Vec<SchemaCatalog> {
        (0..count)
            .map(|i| {
                self.generate(
                    &format!("{prefix}_{i:02}"),
                    base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect()
    }

    fn generate_table(&self, rng: &mut StdRng, name: &str, rows: u64) -> TableMeta {
        let cfg = &self.config;
        let mut columns = vec![ColumnMeta::primary_key("id", rows)];
        let extra = rng.random_range(cfg.min_extra_columns..=cfg.max_extra_columns);
        for c in 0..extra {
            columns.push(self.generate_column(rng, &format!("attr{c}"), rows));
        }
        TableMeta::new(name, columns, rows)
    }

    fn generate_column(&self, rng: &mut StdRng, name: &str, rows: u64) -> ColumnMeta {
        let cfg = &self.config;
        let is_categorical = rng.random_bool(cfg.categorical_fraction);
        let nullable = rng.random_bool(0.3);
        let null_fraction = if nullable {
            rng.random_range(0.0..cfg.max_null_fraction)
        } else {
            0.0
        };

        if is_categorical {
            // Categorical columns: small-ish domains, often skewed.
            let distinct = rng.random_range(2..200u64).min(rows.max(2));
            let distribution = if rng.random_bool(0.5) {
                Distribution::Zipf {
                    skew: rng.random_range(0.8..2.0),
                }
            } else {
                Distribution::Uniform
            };
            ColumnMeta::new(
                name,
                DataType::Categorical,
                ColumnStatistics {
                    distinct_count: distinct,
                    null_fraction,
                    min: Some(0.0),
                    max: Some(distinct.saturating_sub(1) as f64),
                    distribution,
                },
            )
        } else {
            // Numeric columns: Int, Float or Date with varying domains.
            let data_type = match rng.random_range(0..3) {
                0 => DataType::Int,
                1 => DataType::Float,
                _ => DataType::Date,
            };
            let lo = rng.random_range(-1_000.0..1_000.0f64);
            let width = rng.random_range(10.0..1.0e6f64);
            let hi = lo + width;
            let distinct = rng.random_range(16..5_000u64).min(rows.max(16));
            let distribution = match rng.random_range(0..3) {
                0 => Distribution::Uniform,
                1 => Distribution::Normal {
                    spread: rng.random_range(0.05..0.35),
                },
                _ => Distribution::Zipf {
                    skew: rng.random_range(0.8..1.8),
                },
            };
            ColumnMeta::new(
                name,
                data_type,
                ColumnStatistics {
                    distinct_count: distinct,
                    null_fraction,
                    min: Some(lo),
                    max: Some(hi),
                    distribution,
                },
            )
        }
    }

    /// Pick `(child, parent)` table-index pairs according to the topology.
    fn assign_parents(
        &self,
        rng: &mut StdRng,
        num_tables: usize,
        topology: Topology,
    ) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        match topology {
            Topology::Star => {
                for i in 1..num_tables {
                    edges.push((0, i)); // fact table references every dimension
                }
            }
            Topology::Chain => {
                for i in 1..num_tables {
                    edges.push((i - 1, i));
                }
            }
            Topology::Snowflake => {
                for i in 1..num_tables {
                    if i <= (num_tables - 1).div_ceil(2) {
                        edges.push((0, i));
                    } else {
                        // Sub-dimension hangs off one of the first-level dims.
                        let parent = rng.random_range(1..=(num_tables - 1).div_ceil(2));
                        edges.push((parent, i));
                    }
                }
            }
            Topology::RandomTree => {
                for i in 1..num_tables {
                    let parent = rng.random_range(0..i);
                    edges.push((parent, i));
                }
            }
        }
        edges
    }

    /// Append an FK column to `child` referencing `parent`'s primary key and
    /// register the foreign key in the schema.
    fn add_fk_column(
        &self,
        rng: &mut StdRng,
        schema: &mut SchemaCatalog,
        child: TableId,
        parent: TableId,
    ) {
        let parent_rows = schema.table(parent).num_tuples;
        let parent_name = schema.table(parent).name.clone();
        let fk_name = format!("{parent_name}_id");
        let skewed = rng.random_bool(0.4);
        let distribution = if skewed {
            Distribution::ForeignKeyZipf {
                skew: rng.random_range(0.8..1.6),
            }
        } else {
            Distribution::ForeignKeyUniform
        };
        let stats = ColumnStatistics {
            distinct_count: parent_rows.max(1),
            null_fraction: 0.0,
            min: Some(0.0),
            max: Some(parent_rows.saturating_sub(1) as f64),
            distribution,
        };
        let child_meta = schema.table_mut(child);
        let col_id = ColumnId(child_meta.columns.len() as u32);
        child_meta
            .columns
            .push(ColumnMeta::new(fk_name, DataType::Int, stats));

        let parent_pk = schema
            .table(parent)
            .primary_key()
            .map(|(id, _)| id)
            .expect("generated tables always have a primary key");
        schema
            .add_foreign_key(
                ColumnRef::new(child, col_id),
                ColumnRef::new(parent, parent_pk),
            )
            .expect("generated foreign keys are valid");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let generator = SchemaGenerator::with_defaults();
        let a = generator.generate("db", 42);
        let b = generator.generate("db", 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let generator = SchemaGenerator::with_defaults();
        let a = generator.generate("db", 1);
        let b = generator.generate("db", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn schema_is_connected_tree() {
        let generator = SchemaGenerator::with_defaults();
        for seed in 0..20 {
            let schema = generator.generate("db", seed);
            let n = schema.num_tables();
            // A spanning tree over n tables has exactly n-1 foreign keys.
            assert_eq!(schema.foreign_keys().len(), n - 1, "seed {seed}");
            // Every table participates in at least one join edge (n >= 2).
            for (tid, _) in schema.iter_tables() {
                assert!(
                    !schema.foreign_keys_of(tid).is_empty(),
                    "table {tid} disconnected at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn fk_columns_reference_primary_keys() {
        let generator = SchemaGenerator::with_defaults();
        let schema = generator.generate("db", 7);
        for fk in schema.foreign_keys() {
            let parent_col = schema.column(fk.parent);
            assert!(parent_col.is_primary_key);
            let child_col = schema.column(fk.child);
            assert!(child_col.stats.distribution.is_foreign_key());
        }
    }

    #[test]
    fn corpus_generates_distinct_names() {
        let generator = SchemaGenerator::new(GeneratorConfig::tiny());
        let corpus = generator.generate_corpus("train", 5, 99);
        assert_eq!(corpus.len(), 5);
        for (i, schema) in corpus.iter().enumerate() {
            assert_eq!(schema.name, format!("train_{i:02}"));
        }
    }

    #[test]
    fn table_sizes_respect_config() {
        let cfg = GeneratorConfig::tiny();
        let generator = SchemaGenerator::new(cfg.clone());
        for seed in 0..10 {
            let schema = generator.generate("db", seed);
            assert!(schema.num_tables() >= cfg.min_tables);
            assert!(schema.num_tables() <= cfg.max_tables);
            let largest = schema.tables().iter().map(|t| t.num_tuples).max().unwrap();
            assert!(largest <= cfg.max_rows);
        }
    }
}
