//! Scalar data types and runtime values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical data type of a column.
///
/// The set is deliberately small but covers the feature dimensions the
/// zero-shot featurization needs (numeric vs. categorical, fixed widths).
/// Dates are represented as days-since-epoch integers, text columns as
/// dictionary-encoded categoricals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (also used for surrogate keys).
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Dictionary-encoded categorical / text value.
    Categorical,
    /// Boolean flag.
    Bool,
    /// Date stored as days since 1970-01-01.
    Date,
}

impl DataType {
    /// All data types, in the canonical order used for one-hot encodings.
    pub const ALL: [DataType; 5] = [
        DataType::Int,
        DataType::Float,
        DataType::Categorical,
        DataType::Bool,
        DataType::Date,
    ];

    /// Index of this type in [`DataType::ALL`]; stable across runs, used by
    /// one-hot featurizations.
    pub fn index(self) -> usize {
        match self {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Categorical => 2,
            DataType::Bool => 3,
            DataType::Date => 4,
        }
    }

    /// In-memory / on-page width of a value of this type in bytes.
    pub fn width_bytes(self) -> u32 {
        match self {
            DataType::Int | DataType::Float | DataType::Date => 8,
            DataType::Categorical => 4,
            DataType::Bool => 1,
        }
    }

    /// Whether values of this type have a meaningful total order for range
    /// predicates (`<`, `>`, `BETWEEN`).
    pub fn is_orderable(self) -> bool {
        !matches!(self, DataType::Bool)
    }

    /// Whether the type is numeric (Int, Float or Date).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Categorical => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A runtime value as stored in the column store or used in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer (also dates).
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Dictionary code of a categorical value.
    Cat(u32),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Cat(_) => Some(DataType::Categorical),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Numeric view of the value used for ordering, histograms and
    /// normalisation.  NULL maps to `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Cat(v) => Some(*v as f64),
            Value::Bool(v) => Some(if *v { 1.0 } else { 0.0 }),
        }
    }

    /// Integer view, if the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Compare two values with SQL-ish semantics: NULL is not comparable to
    /// anything (returns `None`), numeric types compare by value.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        let a = self.as_f64()?;
        let b = other.as_f64()?;
        a.partial_cmp(&b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Cat(v) => write!(f, "'c{v}'"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_index_roundtrips() {
        for (i, dt) in DataType::ALL.iter().enumerate() {
            assert_eq!(dt.index(), i);
        }
    }

    #[test]
    fn widths_are_positive() {
        for dt in DataType::ALL {
            assert!(dt.width_bytes() >= 1);
        }
    }

    #[test]
    fn bool_is_not_orderable() {
        assert!(!DataType::Bool.is_orderable());
        assert!(DataType::Int.is_orderable());
        assert!(DataType::Date.is_orderable());
    }

    #[test]
    fn null_compares_to_nothing() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn numeric_comparison_crosses_types() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Cat(3).to_string(), "'c3'");
        assert_eq!(DataType::Categorical.to_string(), "TEXT");
    }
}
