//! # zsdb-catalog
//!
//! Relational schema metadata for the `zero-shot-db` workspace.
//!
//! A [`SchemaCatalog`] describes a database *without* its data: tables, columns,
//! data types, primary/foreign keys and coarse per-column statistics (tuple
//! counts, distinct counts, value ranges, null fractions).  Everything a
//! *transferable* query featurization (in the sense of Hilprecht & Binnig,
//! CIDR 2022) is allowed to look at lives here; everything tied to concrete
//! values lives in `zsdb-storage`.
//!
//! The crate also contains:
//!
//! * [`generator::SchemaGenerator`] — a synthetic schema generator producing
//!   diverse databases (the substitute for the paper's 19 public training
//!   datasets), and
//! * [`presets`] — hand-written IMDB-like and SSB-like schemas used as the
//!   *unseen* evaluation databases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod error;
pub mod generator;
pub mod presets;
pub mod schema;
pub mod stats;
pub mod table;
pub mod types;

pub use column::{ColumnId, ColumnMeta, ColumnRef};
pub use error::CatalogError;
pub use generator::{GeneratorConfig, SchemaGenerator, Topology};
pub use schema::{ForeignKey, SchemaCatalog, TableId};
pub use stats::{ColumnStatistics, Distribution};
pub use table::TableMeta;
pub use types::{DataType, Value};

/// Number of bytes in one storage page of the simulated engine.
///
/// Matches PostgreSQL's default block size; used to derive `num_pages` from
/// tuple counts and row widths everywhere in the workspace.
pub const PAGE_SIZE_BYTES: u64 = 8192;
