//! Database schema: tables plus foreign-key (join) relationships.

use crate::column::{ColumnMeta, ColumnRef};
use crate::error::CatalogError;
use crate::table::TableMeta;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a table within a [`SchemaCatalog`] (index into its table
/// vector).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TableId(pub u32);

impl TableId {
    /// Table index as `usize` for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A foreign-key relationship: `child.column` references `parent.column`
/// (the parent column is the parent table's primary key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing (fact / child) side.
    pub child: ColumnRef,
    /// Referenced (dimension / parent) side — a primary key column.
    pub parent: ColumnRef,
}

impl ForeignKey {
    /// Does this foreign key connect tables `a` and `b` (in either
    /// direction)?
    pub fn connects(&self, a: TableId, b: TableId) -> bool {
        (self.child.table == a && self.parent.table == b)
            || (self.child.table == b && self.parent.table == a)
    }
}

/// A database schema: named tables and foreign keys between them.
///
/// This is the transferable, metadata-only description of a database.  It
/// carries a `name` purely for diagnostics; nothing in the featurization
/// depends on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaCatalog {
    /// Diagnostic name of the database (e.g. `"imdb_like"`, `"synth_07"`).
    pub name: String,
    tables: Vec<TableMeta>,
    foreign_keys: Vec<ForeignKey>,
}

impl SchemaCatalog {
    /// Create an empty schema with the given diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaCatalog {
            name: name.into(),
            tables: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Add a table; returns its id.  Fails if a table of the same name
    /// already exists.
    pub fn add_table(&mut self, table: TableMeta) -> Result<TableId, CatalogError> {
        if self.tables.iter().any(|t| t.name == table.name) {
            return Err(CatalogError::DuplicateTable(table.name));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(table);
        Ok(id)
    }

    /// Register a foreign key from `child` to `parent`.  Both column
    /// references must exist.
    pub fn add_foreign_key(
        &mut self,
        child: ColumnRef,
        parent: ColumnRef,
    ) -> Result<(), CatalogError> {
        for r in [child, parent] {
            let table = self
                .tables
                .get(r.table.index())
                .ok_or_else(|| CatalogError::InvalidForeignKey(format!("no table {}", r.table)))?;
            if r.column.index() >= table.columns.len() {
                return Err(CatalogError::InvalidForeignKey(format!(
                    "no column {} in table {}",
                    r.column, table.name
                )));
            }
        }
        self.foreign_keys.push(ForeignKey { child, parent });
        Ok(())
    }

    /// All tables in id order.
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table metadata by id; panics on invalid ids (programmer error).
    pub fn table(&self, id: TableId) -> &TableMeta {
        &self.tables[id.index()]
    }

    /// Mutable table metadata by id (used by the storage layer to refresh
    /// statistics after data generation).
    pub fn table_mut(&mut self, id: TableId) -> &mut TableMeta {
        &mut self.tables[id.index()]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<(TableId, &TableMeta), CatalogError> {
        self.tables
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == name)
            .map(|(i, t)| (TableId(i as u32), t))
            .ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Resolve `"table.column"`-style names to a [`ColumnRef`].
    pub fn resolve_column(&self, table: &str, column: &str) -> Result<ColumnRef, CatalogError> {
        let (tid, tmeta) = self.table_by_name(table)?;
        let (cid, _) = tmeta
            .column_by_name(column)
            .ok_or_else(|| CatalogError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(ColumnRef::new(tid, cid))
    }

    /// Column metadata for a fully-qualified reference.
    pub fn column(&self, r: ColumnRef) -> &ColumnMeta {
        self.table(r.table).column(r.column)
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys touching the given table (as child or parent).
    pub fn foreign_keys_of(&self, table: TableId) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.child.table == table || fk.parent.table == table)
            .collect()
    }

    /// The foreign key connecting two tables, if one exists.
    pub fn join_edge(&self, a: TableId, b: TableId) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| fk.connects(a, b))
    }

    /// Total number of tuples across all tables.
    pub fn total_tuples(&self) -> u64 {
        self.tables.iter().map(|t| t.num_tuples).sum()
    }

    /// Total number of heap pages across all tables.
    pub fn total_pages(&self) -> u64 {
        self.tables.iter().map(|t| t.num_pages()).sum()
    }

    /// Iterator over all `(TableId, &TableMeta)` pairs.
    pub fn iter_tables(&self) -> impl Iterator<Item = (TableId, &TableMeta)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnId, ColumnMeta};
    use crate::stats::{ColumnStatistics, Distribution};
    use crate::types::DataType;

    fn two_table_schema() -> SchemaCatalog {
        let mut schema = SchemaCatalog::new("test");
        let dim = TableMeta::new(
            "dim",
            vec![
                ColumnMeta::primary_key("id", 100),
                ColumnMeta::new(
                    "label",
                    DataType::Categorical,
                    ColumnStatistics {
                        distinct_count: 10,
                        null_fraction: 0.0,
                        min: Some(0.0),
                        max: Some(9.0),
                        distribution: Distribution::Uniform,
                    },
                ),
            ],
            100,
        );
        let fact = TableMeta::new(
            "fact",
            vec![
                ColumnMeta::primary_key("id", 1000),
                ColumnMeta::new(
                    "dim_id",
                    DataType::Int,
                    ColumnStatistics {
                        distinct_count: 100,
                        null_fraction: 0.0,
                        min: Some(0.0),
                        max: Some(99.0),
                        distribution: Distribution::ForeignKeyUniform,
                    },
                ),
            ],
            1000,
        );
        let dim_id = schema.add_table(dim).unwrap();
        let fact_id = schema.add_table(fact).unwrap();
        schema
            .add_foreign_key(
                ColumnRef::new(fact_id, ColumnId(1)),
                ColumnRef::new(dim_id, ColumnId(0)),
            )
            .unwrap();
        schema
    }

    #[test]
    fn add_and_lookup_tables() {
        let schema = two_table_schema();
        assert_eq!(schema.num_tables(), 2);
        let (tid, t) = schema.table_by_name("fact").unwrap();
        assert_eq!(tid, TableId(1));
        assert_eq!(t.num_tuples, 1000);
        assert!(schema.table_by_name("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut schema = two_table_schema();
        let dup = TableMeta::new("dim", vec![ColumnMeta::primary_key("id", 1)], 1);
        assert!(matches!(
            schema.add_table(dup),
            Err(CatalogError::DuplicateTable(_))
        ));
    }

    #[test]
    fn foreign_key_validation() {
        let mut schema = two_table_schema();
        let bad = schema.add_foreign_key(
            ColumnRef::new(TableId(5), ColumnId(0)),
            ColumnRef::new(TableId(0), ColumnId(0)),
        );
        assert!(matches!(bad, Err(CatalogError::InvalidForeignKey(_))));
    }

    #[test]
    fn join_edge_lookup() {
        let schema = two_table_schema();
        assert!(schema.join_edge(TableId(0), TableId(1)).is_some());
        assert!(schema.join_edge(TableId(1), TableId(0)).is_some());
        assert!(schema.join_edge(TableId(0), TableId(0)).is_none());
    }

    #[test]
    fn resolve_column_names() {
        let schema = two_table_schema();
        let r = schema.resolve_column("fact", "dim_id").unwrap();
        assert_eq!(r, ColumnRef::new(TableId(1), ColumnId(1)));
        assert!(schema.resolve_column("fact", "missing").is_err());
    }

    #[test]
    fn totals() {
        let schema = two_table_schema();
        assert_eq!(schema.total_tuples(), 1100);
        assert!(schema.total_pages() >= 2);
    }
}
