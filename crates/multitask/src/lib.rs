//! # zsdb-multitask — one shared encoder, many task heads
//!
//! The paper's title promise — *one model to rule them all* — is that a
//! single zero-shot model can serve **many** database tasks (cost
//! estimation, cardinality estimation, design tuning) across unseen
//! databases.  The rest of the workspace realises the single-head cost
//! model; this crate realises the *one model*:
//!
//! * [`MultiTaskModel`] ([`model`]) — the shared plan-graph encoder from
//!   `zsdb_core` ([`zsdb_core::PlanEncoder`], batched (level, kind)
//!   message passing) with one MLP head per task: **runtime cost** (the
//!   existing objective), **root-result cardinality** (rows entering the
//!   root aggregate) and **per-operator intermediate cardinality** (rows
//!   produced by every plan operator).
//! * [`MultiTaskSample`] ([`sample`]) — a featurized plan graph paired
//!   with the per-task labels extracted from a
//!   [`QueryExecution`](zsdb_engine::QueryExecution).
//! * [`MultiTaskTrainer`] ([`train`]) — joint training with per-task loss
//!   weights on the same deterministic sharded mini-batch engine as the
//!   single-head trainer (`zsdb_core::compute_shard_results`): 1-thread
//!   and N-thread training produce bit-identical weights.
//! * [`LearnedCardEstimator`] ([`estimator`]) — closes the loop: the
//!   learned cardinality head implements
//!   [`zsdb_cardest::CardinalityEstimator`], so the System-R optimizer in
//!   `zsdb_engine` (and the what-if planner on top of it) plans with
//!   *learned* cardinalities instead of classical
//!   uniformity/independence estimates.
//!
//! Train with [`FeaturizerConfig::estimated`](zsdb_core::FeaturizerConfig)
//! when the model is meant to drive the optimizer: the plan features then
//! carry the classical estimates and the cardinality heads learn to
//! *correct* them — at planning time no true cardinalities exist yet.
//!
//! ```no_run
//! use zsdb_multitask::{LearnedCardEstimator, MultiTaskConfig, MultiTaskTrainer};
//! use zsdb_cardest::PostgresLikeEstimator;
//! use zsdb_core::{FeaturizerConfig, TrainingConfig};
//! use zsdb_engine::{EngineConfig, Optimizer};
//! # fn demo(samples: Vec<zsdb_multitask::MultiTaskSample>,
//! #         db: &zsdb_storage::Database,
//! #         query: &zsdb_query::Query) {
//! let trainer = MultiTaskTrainer::new(
//!     MultiTaskConfig::default(),
//!     TrainingConfig::default(),
//!     FeaturizerConfig::estimated(),
//! );
//! let trained = trainer.train(&samples);
//! let fallback = PostgresLikeEstimator::new(db.catalog().clone());
//! let learned = LearnedCardEstimator::new(&trained, fallback);
//! let plan = Optimizer::new(db, EngineConfig::default(), &learned).plan(query);
//! println!("{}", plan.explain());
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod model;
pub mod sample;
pub mod train;

pub use estimator::LearnedCardEstimator;
pub use model::{
    MultiTaskBackprop, MultiTaskConfig, MultiTaskModel, MultiTaskPrediction, TaskHead,
};
pub use sample::{
    operator_node_indices, sample_from_execution, samples_from_executions, MultiTaskSample,
    TaskTargets,
};
pub use train::{task_qerrors, MultiTaskTrainer, TaskQErrors, TrainedMultiTaskModel};
