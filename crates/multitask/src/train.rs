//! Joint training of multi-task models on the deterministic sharded
//! mini-batch engine.
//!
//! The loop mirrors the single-task batched trainer in `zsdb_core`
//! ([`zsdb_core::Trainer::train`]) and runs on the *same* generic shard
//! scheduler ([`zsdb_core::compute_shard_results`]): every optimizer step
//! forwards a shuffled mini-batch through the shared encoder once, splits
//! it into fixed-size micro-batch shards whose joint-loss gradients are
//! computed independently (optionally on worker threads) and reduced in
//! ascending shard order.  Shard boundaries depend only on the
//! configuration — never on the thread count — so 1-thread and N-thread
//! training produce **bit-identical** weights.

use crate::model::{MultiTaskConfig, MultiTaskModel, MultiTaskPrediction};
use crate::sample::MultiTaskSample;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use zsdb_core::features::{FeaturizerConfig, PlanGraph};
use zsdb_core::{compute_shard_results, FinetuneConfig, TrainingConfig};
use zsdb_nn::{median, q_error, Adam};
use zsdb_obs::Tracer;

/// Median q-error of every task head over one evaluation set.
///
/// Cardinality q-errors are computed on `1 + rows` (the same `ln(1+·)`
/// smoothing the training targets use), so empty intermediate results do
/// not blow the ratio up to the `1e-9` floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskQErrors {
    /// Median q-error of the runtime-cost head.
    pub cost: f64,
    /// Median q-error of the root-result cardinality head.
    pub root_card: f64,
    /// Median q-error of the per-operator cardinality head (over all
    /// operators of all plans).
    pub op_card: f64,
}

/// Per-task q-errors of a batch of predictions against their samples.
fn collect_qerrors(
    predictions: &[MultiTaskPrediction],
    samples: &[&MultiTaskSample],
    cost: &mut Vec<f64>,
    root: &mut Vec<f64>,
    op: &mut Vec<f64>,
) {
    for (p, s) in predictions.iter().zip(samples) {
        cost.push(q_error(p.runtime_secs, s.targets.runtime_secs));
        root.push(q_error(p.root_rows + 1.0, s.targets.root_rows + 1.0));
        for (pr, ar) in p.operator_rows.iter().zip(&s.targets.operator_rows) {
            op.push(q_error(pr + 1.0, ar + 1.0));
        }
    }
}

/// Median q-error of every head over `samples`, evaluated through the
/// batched forward pass in bounded-size chunks.
pub fn task_qerrors(model: &MultiTaskModel, samples: &[MultiTaskSample]) -> TaskQErrors {
    const EVAL_CHUNK: usize = 256;
    let (mut cost, mut root, mut op) = (Vec::new(), Vec::new(), Vec::new());
    for chunk in samples.chunks(EVAL_CHUNK) {
        let refs: Vec<&MultiTaskSample> = chunk.iter().collect();
        let graphs: Vec<&PlanGraph> = refs.iter().map(|s| &s.graph).collect();
        let predictions = model.predict_batch(&graphs);
        collect_qerrors(&predictions, &refs, &mut cost, &mut root, &mut op);
    }
    TaskQErrors {
        cost: median(&cost),
        root_card: median(&root),
        op_card: median(&op),
    }
}

/// A trained multi-task model together with its featurizer configuration
/// and per-task training statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedMultiTaskModel {
    /// The trained model.
    pub model: MultiTaskModel,
    /// Featurizer configuration used during training (required to
    /// featurize requests identically at inference time).
    pub featurizer: FeaturizerConfig,
    /// Per-task median training q-errors of the returned weights.
    pub final_train_qerrors: TaskQErrors,
    /// Per-task median validation q-errors of the returned weights
    /// (`None` without a validation split).
    pub final_validation_qerrors: Option<TaskQErrors>,
    /// Per-epoch per-task median q-errors of the epoch's own training
    /// forwards (one entry per epoch actually run).
    pub training_curve: Vec<TaskQErrors>,
    /// Per-epoch monitored validation cost q-errors (empty without a
    /// validation split).
    pub validation_curve: Vec<f64>,
    /// Whether early stopping ended training before the epoch cap.
    pub stopped_early: bool,
}

impl TrainedMultiTaskModel {
    /// Predict every task for one plan graph.
    pub fn predict(&self, graph: &PlanGraph) -> MultiTaskPrediction {
        self.model.predict(graph)
    }

    /// Batched all-task prediction, bit-identical per graph to
    /// [`TrainedMultiTaskModel::predict`].
    pub fn predict_batch(&self, graphs: &[&PlanGraph]) -> Vec<MultiTaskPrediction> {
        self.model.predict_batch(graphs)
    }

    /// Serialize to JSON (for persistence).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trained model serialization cannot fail")
    }

    /// Restore from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Trainer for multi-task zero-shot models.
#[derive(Debug, Clone)]
pub struct MultiTaskTrainer {
    model_config: MultiTaskConfig,
    training_config: TrainingConfig,
    featurizer: FeaturizerConfig,
    tracer: Option<Tracer>,
}

/// One shard's contribution to a joint optimizer step.
struct ShardResult {
    gradients: Vec<f64>,
    cost_qerrors: Vec<f64>,
    root_qerrors: Vec<f64>,
    op_qerrors: Vec<f64>,
}

/// Per-epoch accumulator of the q-errors observed by the epoch's own
/// training forwards, one bucket per task head.
#[derive(Default)]
struct EpochQErrors {
    cost: Vec<f64>,
    root: Vec<f64>,
    op: Vec<f64>,
}

impl EpochQErrors {
    fn clear(&mut self) {
        self.cost.clear();
        self.root.clear();
        self.op.clear();
    }

    fn medians(&self) -> TaskQErrors {
        TaskQErrors {
            cost: median(&self.cost),
            root_card: median(&self.root),
            op_card: median(&self.op),
        }
    }
}

/// One optimizer step of the joint loss, shared by [`MultiTaskTrainer::train`]
/// and [`MultiTaskTrainer::finetune_from`]: split `step` into micro-batch
/// shards, compute each shard's gradients on the deterministic scheduler
/// ([`compute_shard_results`]), reduce them in ascending shard order,
/// apply Adam, and collect the step's per-task training q-errors.
fn joint_optimizer_step(
    model: &mut MultiTaskModel,
    adam: &mut Adam,
    replicas: &mut [MultiTaskModel],
    samples: &[MultiTaskSample],
    step: &[usize],
    microbatch: usize,
    epoch: &mut EpochQErrors,
) {
    let micro_batches: Vec<&[usize]> = step.chunks(microbatch).collect();
    let shards = compute_shard_results(model, replicas, &micro_batches, |replica, shard| {
        let refs: Vec<&MultiTaskSample> = shard.iter().map(|&i| &samples[i]).collect();
        replica.zero_grad();
        let backprop = replica.accumulate_gradients_batch(&refs);
        let mut gradients = Vec::new();
        replica.export_gradients(&mut gradients);
        let (mut cost, mut root, mut op) = (Vec::new(), Vec::new(), Vec::new());
        collect_qerrors(&backprop.predictions, &refs, &mut cost, &mut root, &mut op);
        ShardResult {
            gradients,
            cost_qerrors: cost,
            root_qerrors: root,
            op_qerrors: op,
        }
    });
    model.zero_grad();
    for shard in &shards {
        model.add_gradients(&shard.gradients);
    }
    model.apply_step(adam);
    for shard in shards {
        epoch.cost.extend(shard.cost_qerrors);
        epoch.root.extend(shard.root_qerrors);
        epoch.op.extend(shard.op_qerrors);
    }
}

impl MultiTaskTrainer {
    /// Create a trainer.  The `TrainingConfig` is the same type the
    /// single-task trainer uses — epochs, batch and micro-batch sizes,
    /// threads, validation split and early stopping all mean the same
    /// thing.
    pub fn new(
        model_config: MultiTaskConfig,
        training_config: TrainingConfig,
        featurizer: FeaturizerConfig,
    ) -> Self {
        MultiTaskTrainer {
            model_config,
            training_config,
            featurizer,
            tracer: None,
        }
    }

    /// Attach a [`Tracer`]: [`MultiTaskTrainer::train`] then emits one
    /// `train.epoch_secs` event per epoch (wall time, shard-gradient time
    /// and the epoch's median cost q-error in the detail), mirroring
    /// [`zsdb_core::Trainer::with_tracer`].  Tracing never changes the
    /// trained weights.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The trainer's training configuration.
    pub fn training_config(&self) -> &TrainingConfig {
        &self.training_config
    }

    /// The trainer's featurizer configuration.
    pub fn featurizer(&self) -> FeaturizerConfig {
        self.featurizer
    }

    /// Jointly train all task heads on multi-task samples.
    ///
    /// Graphs in the validation tail split are evaluated but never trained
    /// on; the monitored early-stopping metric is the validation cost
    /// q-error (training cost q-error without a split), matching the
    /// single-task trainer's convention.
    pub fn train(&self, samples: &[MultiTaskSample]) -> TrainedMultiTaskModel {
        let cfg = &self.training_config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let val_len = ((samples.len() as f64) * cfg.validation_fraction) as usize;
        let (train_samples, val_samples) = samples.split_at(samples.len() - val_len);

        let mut model = MultiTaskModel::new(self.model_config);
        let mut adam = Adam::new(cfg.learning_rate);
        let threads = cfg.effective_threads();
        let batch_size = cfg.batch_size.max(1);
        let microbatch = cfg.microbatch_size.max(1);

        let mut replicas: Vec<MultiTaskModel> =
            (0..threads.min(batch_size.div_ceil(microbatch)).max(1))
                .map(|_| model.clone())
                .collect();

        let mut indices: Vec<usize> = (0..train_samples.len()).collect();
        let mut training_curve = Vec::with_capacity(cfg.epochs);
        let mut validation_curve = Vec::new();
        let mut best: Option<(f64, MultiTaskModel)> = None;
        let mut epochs_without_improvement = 0usize;
        let mut stopped_early = false;

        let mut epoch = EpochQErrors::default();
        for epoch_idx in 0..cfg.epochs {
            let epoch_started = Instant::now();
            let mut shard_secs = 0.0f64;
            indices.shuffle(&mut rng);
            epoch.clear();
            for step in indices.chunks(batch_size) {
                let step_started = Instant::now();
                joint_optimizer_step(
                    &mut model,
                    &mut adam,
                    &mut replicas,
                    train_samples,
                    step,
                    microbatch,
                    &mut epoch,
                );
                shard_secs += step_started.elapsed().as_secs_f64();
            }

            let train_q = epoch.medians();
            training_curve.push(train_q);
            if let Some(tracer) = &self.tracer {
                tracer.event(
                    "train.epoch_secs",
                    epoch_started.elapsed().as_secs_f64(),
                    format!(
                        "epoch {epoch_idx}: median cost q-error {:.4}, {shard_secs:.6}s in sharded optimizer steps",
                        train_q.cost
                    ),
                );
            }
            let monitored = if val_samples.is_empty() {
                train_q.cost
            } else {
                let val_q = task_qerrors(&model, val_samples).cost;
                validation_curve.push(val_q);
                val_q
            };

            if cfg.early_stopping_patience > 0 {
                let improved = best.as_ref().map(|(b, _)| monitored < *b).unwrap_or(true);
                if improved {
                    best = Some((monitored, model.clone()));
                    epochs_without_improvement = 0;
                } else {
                    epochs_without_improvement += 1;
                    if epochs_without_improvement >= cfg.early_stopping_patience {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }

        if let Some((_, best_model)) = best {
            model = best_model;
        }

        let final_train_qerrors = task_qerrors(&model, train_samples);
        let final_validation_qerrors = if val_samples.is_empty() {
            None
        } else {
            Some(task_qerrors(&model, val_samples))
        };
        TrainedMultiTaskModel {
            model,
            featurizer: self.featurizer,
            final_train_qerrors,
            final_validation_qerrors,
            training_curve,
            validation_curve,
            stopped_early,
        }
    }

    /// Incrementally fine-tune an already-trained multi-task model on
    /// newly observed samples, returning a new [`TrainedMultiTaskModel`];
    /// `trained` is not modified.
    ///
    /// Mirrors [`zsdb_core::Trainer::finetune_from`] — the same
    /// [`FinetuneConfig`], the same full-batch default, and the same
    /// deterministic shard engine, so fine-tuning with 1 thread and with
    /// N threads produces **bit-identical** weights for every head.
    pub fn finetune_from(
        trained: &TrainedMultiTaskModel,
        samples: &[MultiTaskSample],
        config: FinetuneConfig,
    ) -> TrainedMultiTaskModel {
        MultiTaskTrainer::finetune_from_traced(trained, samples, config, None)
    }

    /// [`MultiTaskTrainer::finetune_from`] emitting one
    /// `finetune.epoch_secs` event per epoch on the given tracer,
    /// mirroring [`zsdb_core::Trainer::finetune_from_traced`].  Tracing
    /// never changes the fine-tuned weights.
    pub fn finetune_from_traced(
        trained: &TrainedMultiTaskModel,
        samples: &[MultiTaskSample],
        config: FinetuneConfig,
        tracer: Option<&Tracer>,
    ) -> TrainedMultiTaskModel {
        assert!(!samples.is_empty(), "fine-tuning needs at least one sample");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = trained.model.clone();
        let mut adam = Adam::new(config.learning_rate);
        let batch_size = if config.batch_size == 0 {
            samples.len()
        } else {
            config.batch_size.max(1)
        };
        let microbatch = config.microbatch_size.max(1);
        let threads = config.effective_threads();
        let mut replicas: Vec<MultiTaskModel> =
            (0..threads.min(batch_size.div_ceil(microbatch)).max(1))
                .map(|_| model.clone())
                .collect();

        let mut indices: Vec<usize> = (0..samples.len()).collect();
        let mut training_curve = Vec::with_capacity(config.epochs);
        let mut epoch = EpochQErrors::default();
        for epoch_idx in 0..config.epochs {
            let epoch_started = Instant::now();
            let mut shard_secs = 0.0f64;
            indices.shuffle(&mut rng);
            epoch.clear();
            for step in indices.chunks(batch_size) {
                let step_started = Instant::now();
                joint_optimizer_step(
                    &mut model,
                    &mut adam,
                    &mut replicas,
                    samples,
                    step,
                    microbatch,
                    &mut epoch,
                );
                shard_secs += step_started.elapsed().as_secs_f64();
            }
            let epoch_q = epoch.medians();
            training_curve.push(epoch_q);
            if let Some(tracer) = tracer {
                tracer.event(
                    "finetune.epoch_secs",
                    epoch_started.elapsed().as_secs_f64(),
                    format!(
                        "epoch {epoch_idx}: median cost q-error {:.4}, {shard_secs:.6}s in sharded optimizer steps",
                        epoch_q.cost
                    ),
                );
            }
        }

        let final_train_qerrors = task_qerrors(&model, samples);
        TrainedMultiTaskModel {
            model,
            featurizer: trained.featurizer,
            final_train_qerrors,
            final_validation_qerrors: None,
            training_curve,
            validation_curve: Vec::new(),
            stopped_early: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_from_execution;
    use zsdb_catalog::presets;
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn tiny_samples() -> Vec<MultiTaskSample> {
        let mut samples = Vec::new();
        for seed in [3u64, 4] {
            let db = Database::generate(presets::imdb_like(0.02), seed);
            let runner = QueryRunner::with_defaults(&db);
            let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 30, seed);
            samples.extend(
                runner
                    .run_workload(&queries, 0)
                    .iter()
                    .map(|e| sample_from_execution(db.catalog(), e, FeaturizerConfig::estimated())),
            );
        }
        samples
    }

    fn tiny_training_config() -> TrainingConfig {
        TrainingConfig {
            epochs: 20,
            batch_size: 8,
            microbatch_size: 4,
            validation_fraction: 0.0,
            early_stopping_patience: 0,
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn joint_training_improves_every_task() {
        let samples = tiny_samples();
        let trainer = MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            tiny_training_config(),
            FeaturizerConfig::estimated(),
        );
        let trained = trainer.train(&samples);
        let first = trained.training_curve.first().unwrap();
        let last = trained.final_train_qerrors;
        assert!(
            last.cost < first.cost,
            "cost q-error should improve: {} -> {}",
            first.cost,
            last.cost
        );
        assert!(
            last.op_card < first.op_card,
            "op-card q-error should improve: {} -> {}",
            first.op_card,
            last.op_card
        );
        // The root-cardinality median starts degenerate on a tiny corpus
        // (many queries return zero rows and the fresh head predicts zero,
        // so the initial median q-error is already ~1); assert the trained
        // head stays accurate rather than strictly improving.
        assert!(
            last.root_card < 4.0,
            "trained root-card q-error too high: {}",
            last.root_card
        );
        assert!(
            last.cost < 2.5,
            "trained cost q-error too high: {}",
            last.cost
        );
    }

    #[test]
    fn thread_count_never_changes_the_weights() {
        let samples = tiny_samples();
        let base = TrainingConfig {
            epochs: 3,
            batch_size: 8,
            microbatch_size: 3,
            validation_fraction: 0.1,
            early_stopping_patience: 0,
            ..TrainingConfig::default()
        };
        let train_with = |threads: usize| {
            MultiTaskTrainer::new(
                MultiTaskConfig::tiny(),
                TrainingConfig { threads, ..base },
                FeaturizerConfig::estimated(),
            )
            .train(&samples)
        };
        let one = train_with(1);
        let two = train_with(2);
        let four = train_with(4);
        assert_eq!(one.model.to_json(), two.model.to_json());
        assert_eq!(one.model.to_json(), four.model.to_json());
        for s in samples.iter().take(8) {
            let a = one.predict(&s.graph);
            let b = two.predict(&s.graph);
            assert_eq!(a.runtime_secs.to_bits(), b.runtime_secs.to_bits());
            assert_eq!(a.root_rows.to_bits(), b.root_rows.to_bits());
        }
        assert_eq!(one.validation_curve, two.validation_curve);
    }

    #[test]
    fn validation_split_and_early_stopping_work() {
        let samples = tiny_samples();
        let trainer = MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            TrainingConfig {
                epochs: 40,
                validation_fraction: 0.25,
                early_stopping_patience: 2,
                ..tiny_training_config()
            },
            FeaturizerConfig::estimated(),
        );
        let trained = trainer.train(&samples);
        assert_eq!(trained.validation_curve.len(), trained.training_curve.len());
        let final_val = trained
            .final_validation_qerrors
            .expect("validation split requested");
        assert!(final_val.cost.is_finite());
        let best_seen = trained
            .validation_curve
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            (final_val.cost - best_seen).abs() < 1e-12,
            "returned model should be the best epoch: best {best_seen}, got {}",
            final_val.cost
        );
    }

    #[test]
    fn multitask_finetune_is_thread_count_deterministic() {
        let samples = tiny_samples();
        let trainer = MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                ..tiny_training_config()
            },
            FeaturizerConfig::estimated(),
        );
        let base = trainer.train(&samples);
        let finetune_set = &samples[..12];
        let tune = |threads: usize| {
            MultiTaskTrainer::finetune_from(
                &base,
                finetune_set,
                FinetuneConfig {
                    epochs: 3,
                    batch_size: 8,
                    microbatch_size: 3,
                    threads,
                    ..FinetuneConfig::default()
                },
            )
        };
        let one = tune(1);
        let two = tune(2);
        let four = tune(4);
        assert_eq!(one.model.to_json(), two.model.to_json());
        assert_eq!(one.model.to_json(), four.model.to_json());
        assert_ne!(one.model.to_json(), base.model.to_json());
        for s in finetune_set.iter().take(4) {
            let a = one.predict(&s.graph);
            let b = four.predict(&s.graph);
            assert_eq!(a.runtime_secs.to_bits(), b.runtime_secs.to_bits());
            assert_eq!(a.root_rows.to_bits(), b.root_rows.to_bits());
            assert_eq!(a.operator_rows, b.operator_rows);
        }
    }

    #[test]
    fn attached_tracer_records_epochs_without_changing_weights() {
        let samples = tiny_samples();
        let trainer = MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                ..tiny_training_config()
            },
            FeaturizerConfig::estimated(),
        );
        let tracer = Tracer::new(64);
        let plain = trainer.train(&samples);
        let traced = trainer.clone().with_tracer(tracer.clone()).train(&samples);
        assert_eq!(
            plain.model.to_json(),
            traced.model.to_json(),
            "tracing must not perturb training"
        );
        let train_epochs = tracer
            .events(16)
            .into_iter()
            .filter(|e| e.name == "train.epoch_secs")
            .count();
        assert_eq!(train_epochs, 2, "one event per epoch");

        MultiTaskTrainer::finetune_from_traced(
            &plain,
            &samples[..8],
            FinetuneConfig {
                epochs: 3,
                ..FinetuneConfig::default()
            },
            Some(&tracer),
        );
        let finetune_epochs = tracer
            .events(32)
            .into_iter()
            .filter(|e| e.name == "finetune.epoch_secs")
            .count();
        assert_eq!(finetune_epochs, 3);
    }

    #[test]
    fn trained_model_serialization_roundtrip() {
        let samples = tiny_samples();
        let trainer = MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                ..tiny_training_config()
            },
            FeaturizerConfig::estimated(),
        );
        let trained = trainer.train(&samples);
        let restored = TrainedMultiTaskModel::from_json(&trained.to_json()).unwrap();
        let a = trained.predict(&samples[0].graph);
        let b = restored.predict(&samples[0].graph);
        assert_eq!(a.runtime_secs.to_bits(), b.runtime_secs.to_bits());
        assert_eq!(a.root_rows.to_bits(), b.root_rows.to_bits());
        assert_eq!(restored.featurizer, trained.featurizer);
        assert_eq!(restored.training_curve.len(), trained.training_curve.len());
    }
}
