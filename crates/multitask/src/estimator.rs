//! Closing the loop: the learned cardinality head as a
//! [`CardinalityEstimator`] driving the System-R optimizer.
//!
//! The optimizer asks an estimator for the cardinality of every connected
//! table subset it enumerates.  [`LearnedCardEstimator`] answers those
//! questions with the multi-task model's **root-cardinality head**: the
//! sub-query is rendered as a *canonical physical plan* (sorted left-deep
//! hash-join chain over predicate-pushed sequential scans, count(*)
//! aggregate on top — the shape the training plans have), annotated with
//! the classical fallback estimator's cardinalities (exactly what
//! [`featurize_plan`] reads at planning time, when no true cardinalities
//! exist), featurized, and pushed through the model.  The learned head
//! therefore acts as a zero-shot *correction* of the classical estimates
//! it sees in its input features.
//!
//! Every estimate is sanitised — non-finite model outputs fall back to the
//! classical estimator, finite ones are clamped to a valid row-count range
//! — so the optimizer can never observe NaN or negative cardinalities no
//! matter what the model does.

use crate::train::TrainedMultiTaskModel;
use zsdb_cardest::CardinalityEstimator;
use zsdb_catalog::{SchemaCatalog, TableId};
use zsdb_core::features::featurize_plan;
use zsdb_engine::{PhysOperator, PlanNode};
use zsdb_query::{Aggregate, JoinCondition, Predicate, Query};

/// Upper clamp of learned cardinality estimates (far above any simulated
/// table, far below overflow territory).
const MAX_ROWS: f64 = 1e15;

/// A cardinality estimator backed by the multi-task model's learned
/// root-cardinality head, with a classical estimator supplying the
/// plan-feature annotations and the fallback path.
pub struct LearnedCardEstimator<'a, F: CardinalityEstimator> {
    model: &'a TrainedMultiTaskModel,
    fallback: F,
}

impl<'a, F: CardinalityEstimator> LearnedCardEstimator<'a, F> {
    /// Create an estimator over the database described by `fallback`'s
    /// catalog.
    pub fn new(model: &'a TrainedMultiTaskModel, fallback: F) -> Self {
        LearnedCardEstimator { model, fallback }
    }

    /// The classical estimator used for feature annotations and fallback.
    pub fn fallback(&self) -> &F {
        &self.fallback
    }

    /// Canonical scan leaf: sequential scan with the table's predicates
    /// pushed down, annotated with the fallback estimate.
    fn scan_plan(&self, table: TableId, predicates: &[Predicate]) -> PlanNode {
        let on_table: Vec<Predicate> = predicates
            .iter()
            .filter(|p| p.column.table == table)
            .copied()
            .collect();
        let meta = self.fallback.catalog().table(table);
        let est = self.fallback.table_cardinality(table, &on_table).max(1.0);
        let cost = est.max(meta.num_pages() as f64);
        PlanNode::leaf(
            PhysOperator::SeqScan {
                table,
                predicates: on_table,
            },
            est,
            cost,
            meta.row_width_bytes() as f64,
        )
    }

    /// Count(*) aggregate root over `child` — the plan shape the
    /// root-cardinality head was trained on (its target is the rows
    /// *entering* the root aggregate).
    fn aggregate_root(child: PlanNode) -> PlanNode {
        PlanNode {
            est_cardinality: 1.0,
            est_cost: child.est_cost + child.est_cardinality,
            output_width: 8.0,
            op: PhysOperator::Aggregate {
                aggregates: vec![Aggregate::count_star()],
            },
            children: vec![child],
        }
    }

    /// Canonical physical plan of the connected sub-query of `query`
    /// restricted to `tables`: sorted left-deep hash-join chain (build on
    /// the smaller estimated side, mirroring the optimizer's convention)
    /// under a count(*) aggregate.  `None` when `tables` is empty or not
    /// connected by `query`'s join edges (the optimizer never asks for
    /// disconnected subsets; the fallback handles them regardless).
    fn canonical_plan(&self, query: &Query, tables: &[TableId]) -> Option<PlanNode> {
        let mut sorted: Vec<TableId> = tables.to_vec();
        sorted.sort();
        sorted.dedup();
        let (&first, rest) = sorted.split_first()?;

        let mut joined = vec![first];
        let mut current = self.scan_plan(first, &query.predicates);
        let mut remaining: Vec<TableId> = rest.to_vec();
        while !remaining.is_empty() {
            let connects = |t: TableId, joined: &[TableId], j: &JoinCondition| {
                (j.left.table == t && joined.contains(&j.right.table))
                    || (j.right.table == t && joined.contains(&j.left.table))
            };
            let pos = remaining
                .iter()
                .position(|&t| query.joins.iter().any(|j| connects(t, &joined, j)))?;
            let table = remaining.remove(pos);
            let edge = *query
                .joins
                .iter()
                .find(|j| connects(table, &joined, j))
                .expect("position() found a connecting edge");
            let (current_key, new_key) = if edge.left.table == table {
                (edge.right, edge.left)
            } else {
                (edge.left, edge.right)
            };
            joined.push(table);
            let scan = self.scan_plan(table, &query.predicates);
            let out_card = self
                .fallback
                .subquery_cardinality(query, &joined)
                .clamp(1.0, MAX_ROWS);
            let out_width = current.output_width + scan.output_width;
            let cost = current.est_cost + scan.est_cost + out_card;
            // Build on the smaller estimated side, like the optimizer.
            let (build, probe, build_key, probe_key) =
                if current.est_cardinality <= scan.est_cardinality {
                    (current, scan, current_key, new_key)
                } else {
                    (scan, current, new_key, current_key)
                };
            current = PlanNode {
                est_cardinality: out_card,
                est_cost: cost,
                output_width: out_width,
                op: PhysOperator::HashJoin {
                    build_key,
                    probe_key,
                },
                children: vec![build, probe],
            };
        }
        Some(Self::aggregate_root(current))
    }

    /// Learned row estimate for a canonical plan, or `None` when the model
    /// output is unusable (non-finite).
    fn learned_rows(&self, plan: &PlanNode, upper: f64) -> Option<f64> {
        let graph = featurize_plan(self.fallback.catalog(), plan, self.model.featurizer);
        let rows = self.model.predict(&graph).root_rows;
        rows.is_finite().then(|| rows.clamp(1.0, upper.max(1.0)))
    }
}

impl<F: CardinalityEstimator> CardinalityEstimator for LearnedCardEstimator<'_, F> {
    fn catalog(&self) -> &SchemaCatalog {
        self.fallback.catalog()
    }

    /// Per-predicate selectivities (used e.g. to size index-scan ranges)
    /// come from the classical fallback, sanitised into `[0, 1]`.
    fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        let s = self.fallback.predicate_selectivity(predicate);
        if s.is_finite() {
            s.clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Learned single-table estimate: a canonical scan-plus-aggregate plan
    /// through the root-cardinality head, clamped to `[1, |table|]`;
    /// classical fallback when the model output is unusable.
    fn table_cardinality(&self, table: TableId, predicates: &[Predicate]) -> f64 {
        let plan = Self::aggregate_root(self.scan_plan(table, predicates));
        let upper = self.fallback.catalog().table(table).num_tuples as f64;
        self.learned_rows(&plan, upper)
            .unwrap_or_else(|| self.fallback.table_cardinality(table, predicates))
    }

    /// Learned sub-query estimate through the canonical join chain;
    /// classical fallback for disconnected subsets or unusable model
    /// output.
    fn subquery_cardinality(&self, query: &Query, tables: &[TableId]) -> f64 {
        match self
            .canonical_plan(query, tables)
            .and_then(|plan| self.learned_rows(&plan, MAX_ROWS))
        {
            Some(rows) => rows,
            None => self
                .fallback
                .subquery_cardinality(query, tables)
                .clamp(1e-6, MAX_ROWS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MultiTaskConfig;
    use crate::sample::sample_from_execution;
    use crate::train::MultiTaskTrainer;
    use zsdb_cardest::PostgresLikeEstimator;
    use zsdb_catalog::presets;
    use zsdb_core::features::FeaturizerConfig;
    use zsdb_core::TrainingConfig;
    use zsdb_engine::{EngineConfig, Optimizer, PhysOperatorKind, QueryRunner};
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn quickly_trained() -> TrainedMultiTaskModel {
        let db = Database::generate(presets::imdb_like(0.02), 5);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 40, 2);
        let samples: Vec<_> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| sample_from_execution(db.catalog(), e, FeaturizerConfig::estimated()))
            .collect();
        MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            TrainingConfig {
                epochs: 8,
                validation_fraction: 0.0,
                early_stopping_patience: 0,
                ..TrainingConfig::default()
            },
            FeaturizerConfig::estimated(),
        )
        .train(&samples)
    }

    #[test]
    fn estimates_are_finite_and_at_least_one() {
        let trained = quickly_trained();
        // A database the model has never seen.
        let db = Database::generate(presets::imdb_like(0.03), 42);
        let est =
            LearnedCardEstimator::new(&trained, PostgresLikeEstimator::new(db.catalog().clone()));
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 9);
        for q in &queries {
            let card = est.query_cardinality(q);
            assert!(card.is_finite() && card >= 1.0, "query cardinality {card}");
            for &t in &q.tables {
                let tc = est.table_cardinality(t, &q.predicates);
                assert!(tc.is_finite() && tc >= 1.0, "table cardinality {tc}");
                assert!(tc <= db.catalog().table(t).num_tuples as f64 + 0.5);
            }
            for p in &q.predicates {
                let s = est.predicate_selectivity(p);
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn optimizer_plans_with_learned_cardinalities() {
        let trained = quickly_trained();
        let db = Database::generate(presets::imdb_like(0.02), 42);
        let est =
            LearnedCardEstimator::new(&trained, PostgresLikeEstimator::new(db.catalog().clone()));
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 25, 4);
        for q in &queries {
            let plan = optimizer.plan(q);
            assert_eq!(plan.op.kind(), PhysOperatorKind::Aggregate);
            assert_eq!(plan.scanned_tables().len(), q.num_tables());
            assert!(plan.est_cost.is_finite() && plan.est_cost > 0.0);
        }
    }

    #[test]
    fn disconnected_subsets_fall_back_to_the_classical_estimator() {
        let trained = quickly_trained();
        let db = Database::generate(presets::imdb_like(0.02), 42);
        let fallback = PostgresLikeEstimator::new(db.catalog().clone());
        let est = LearnedCardEstimator::new(&trained, fallback);
        let catalog = db.catalog();
        let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
        let (ci, _) = catalog.table_by_name("cast_info").unwrap();
        // Two tables, no join edge: the canonical plan cannot be built.
        let q = Query {
            tables: vec![mc, ci],
            joins: vec![],
            predicates: vec![],
            aggregates: vec![Aggregate::count_star()],
        };
        let learned = est.subquery_cardinality(&q, &q.tables);
        let classical = est
            .fallback()
            .subquery_cardinality(&q, &q.tables)
            .clamp(1e-6, MAX_ROWS);
        assert_eq!(learned, classical);
    }
}
