//! The multi-task zero-shot model: one shared plan-graph encoder, one MLP
//! head per task.
//!
//! All heads read the node hidden states produced by a **single** encoder
//! pass through `zsdb_core`'s (level, kind)-batched message passing:
//!
//! * the **cost** head decodes the root state into `ln(runtime_secs)` —
//!   identical architecture (and, for the same seed, identical
//!   initialisation) to the single-task [`ZeroShotCostModel`] output MLP;
//! * the **root-cardinality** head decodes the root state into
//!   `ln(1 + rows)` of the query result before aggregation;
//! * the **per-operator cardinality** head decodes *every* plan-operator
//!   node's state into `ln(1 + rows)` of that operator's true output.
//!
//! Training accumulates one weighted joint loss
//! (`cost_weight · L_cost + root_card_weight · L_root + op_card_weight ·
//! L_op`) through a single backward pass over the shared encoder; the
//! per-operator loss is averaged over each graph's operators so plans of
//! different sizes contribute comparably.  The gradient reduction order
//! is fixed (cost → root → operator head deposits, then the encoder's
//! reverse-schedule walk), so batched multi-task training is exactly as
//! deterministic as the single-task engine.
//!
//! [`ZeroShotCostModel`]: zsdb_core::ZeroShotCostModel

use crate::sample::{operator_node_indices, MultiTaskSample};
use serde::{Deserialize, Serialize};
use zsdb_core::features::PlanGraph;
use zsdb_core::{BatchSchedule, NodeStates, PlanEncoder, ReplicaSync};
use zsdb_nn::{Activation, Adam, Batch, Mlp};

/// Hyper-parameters of the multi-task model, including the per-task loss
/// weights used during joint training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskConfig {
    /// Hidden dimension of the shared encoder's node states.
    pub hidden_dim: usize,
    /// Hidden width of every task-head MLP.
    pub head_hidden_dim: usize,
    /// Weight initialisation seed (encoder seeds derive from it exactly
    /// like the single-task model's, so the shared encoder starts
    /// weight-identical for the same seed).
    pub seed: u64,
    /// Loss weight of the runtime-cost head.
    pub cost_weight: f64,
    /// Loss weight of the root-result cardinality head.
    pub root_card_weight: f64,
    /// Loss weight of the per-operator cardinality head (averaged over
    /// each graph's operators).
    pub op_card_weight: f64,
}

impl Default for MultiTaskConfig {
    fn default() -> Self {
        MultiTaskConfig {
            hidden_dim: 48,
            head_hidden_dim: 32,
            seed: 0xC0FFEE,
            cost_weight: 1.0,
            // The auxiliary heads get deliberately small weights: large
            // enough for the cardinality heads to clearly beat the
            // classical estimators, small enough that the jointly-trained
            // cost head stays within a few percent of the single-task
            // model (see `bench_multitask`).
            root_card_weight: 0.25,
            op_card_weight: 0.1,
        }
    }
}

impl MultiTaskConfig {
    /// A small configuration for unit tests (fast training).
    pub fn tiny() -> Self {
        MultiTaskConfig {
            hidden_dim: 16,
            head_hidden_dim: 8,
            seed: 7,
            ..MultiTaskConfig::default()
        }
    }
}

/// The tasks served by the model, in canonical head order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskHead {
    /// Runtime cost (seconds; trained on `ln(runtime)`).
    Cost,
    /// Root-result cardinality (rows entering the root aggregate).
    RootCardinality,
    /// Per-operator intermediate cardinality.
    OperatorCardinality,
}

impl TaskHead {
    /// All heads in canonical order.
    pub const ALL: [TaskHead; 3] = [
        TaskHead::Cost,
        TaskHead::RootCardinality,
        TaskHead::OperatorCardinality,
    ];

    /// Short stable name (used in manifests and reports).
    pub fn name(self) -> &'static str {
        match self {
            TaskHead::Cost => "cost",
            TaskHead::RootCardinality => "root_cardinality",
            TaskHead::OperatorCardinality => "operator_cardinality",
        }
    }
}

/// All task predictions for one plan graph — one submit, every head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskPrediction {
    /// Predicted runtime in seconds.
    pub runtime_secs: f64,
    /// Predicted number of rows entering the root aggregate.
    pub root_rows: f64,
    /// Predicted output cardinality of every plan operator, aligned with
    /// [`operator_node_indices`] of the graph.
    pub operator_rows: Vec<f64>,
}

/// Result of one batched multi-task gradient-accumulation pass.
pub struct MultiTaskBackprop {
    /// Weighted joint loss over the mini-batch.
    pub loss: f64,
    /// Unweighted summed squared error of the cost head (`ln` space).
    pub cost_loss: f64,
    /// Unweighted summed squared error of the root-cardinality head.
    pub root_card_loss: f64,
    /// Unweighted per-graph-averaged squared error of the operator head.
    pub op_card_loss: f64,
    /// Per-graph predictions from the training forward pass (bit-identical
    /// to [`MultiTaskModel::predict`] under the pre-step weights).
    pub predictions: Vec<MultiTaskPrediction>,
}

/// The multi-task zero-shot model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskModel {
    config: MultiTaskConfig,
    /// Shared plan-graph encoder (same type the single-task model uses).
    encoder: PlanEncoder,
    /// Root state → `ln(runtime_secs)`.
    cost_head: Mlp,
    /// Root state → `ln(1 + root rows)`.
    root_card_head: Mlp,
    /// Operator state → `ln(1 + operator rows)`.
    op_card_head: Mlp,
}

/// Inverse of the `ln(1 + rows)` target transform, clamped to a valid row
/// count.
fn rows_from_log(x: f64) -> f64 {
    (x.exp() - 1.0).max(0.0)
}

impl MultiTaskModel {
    /// Create a freshly initialised model.  The encoder derives its seeds
    /// from `config.seed` exactly like [`zsdb_core::ZeroShotCostModel`],
    /// and the cost head uses the same seed derivation as the single-task
    /// output MLP — so for equal dimensions and seed, the cost path starts
    /// weight-identical to the single-task model.
    pub fn new(config: MultiTaskConfig) -> Self {
        let h = config.hidden_dim;
        let head = |seed_salt: u64| {
            Mlp::new(
                &[h, config.head_hidden_dim, 1],
                Activation::LeakyRelu,
                config.seed ^ seed_salt,
            )
        };
        MultiTaskModel {
            encoder: PlanEncoder::new(h, config.seed),
            cost_head: head(0x20),
            root_card_head: head(0x30),
            op_card_head: head(0x40),
            config,
        }
    }

    /// The model configuration (including loss weights).
    pub fn config(&self) -> &MultiTaskConfig {
        &self.config
    }

    /// The shared plan-graph encoder.
    pub fn encoder(&self) -> &PlanEncoder {
        &self.encoder
    }

    /// Total number of trainable parameters across encoder and heads.
    pub fn num_parameters(&self) -> usize {
        self.encoder.num_parameters()
            + self.cost_head.num_parameters()
            + self.root_card_head.num_parameters()
            + self.op_card_head.num_parameters()
    }

    /// Every parameter buffer in canonical order: encoder (kind encoders,
    /// then combine), then the heads in [`TaskHead::ALL`] order.  This
    /// order defines the flat-gradient layout of the deterministic shard
    /// reduction.
    fn all_params(&self) -> Vec<&zsdb_nn::ParamBuf> {
        let mut params = self.encoder.params();
        params.extend(self.cost_head.params());
        params.extend(self.root_card_head.params());
        params.extend(self.op_card_head.params());
        params
    }

    /// Mutable counterpart of [`MultiTaskModel::all_params`], same order.
    fn all_params_mut(&mut self) -> Vec<&mut zsdb_nn::ParamBuf> {
        let mut params = self.encoder.params_mut();
        params.extend(self.cost_head.params_mut());
        params.extend(self.root_card_head.params_mut());
        params.extend(self.op_card_head.params_mut());
        params
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.cost_head.zero_grad();
        self.root_card_head.zero_grad();
        self.op_card_head.zero_grad();
    }

    /// Apply one optimizer step over all parameters.
    pub fn apply_step(&mut self, adam: &mut Adam) {
        adam.step(&mut self.all_params_mut());
    }

    /// Export the accumulated gradients as one flat vector in canonical
    /// parameter order (cleared and refilled).
    pub fn export_gradients(&self, out: &mut Vec<f64>) {
        out.clear();
        for p in self.all_params() {
            out.extend_from_slice(&p.grad);
        }
    }

    /// Add a flat gradient vector (as produced by
    /// [`MultiTaskModel::export_gradients`]) onto this model's gradient
    /// buffers.
    pub fn add_gradients(&mut self, flat: &[f64]) {
        let mut offset = 0;
        for p in self.all_params_mut() {
            let len = p.grad.len();
            for (g, v) in p.grad.iter_mut().zip(&flat[offset..offset + len]) {
                *g += v;
            }
            offset += len;
        }
        assert_eq!(offset, flat.len(), "flat gradient length mismatch");
    }

    /// Copy the parameter *values* from `src` (allocation-free).
    pub fn copy_weights_from(&mut self, src: &Self) {
        let from = src.all_params();
        let dst = self.all_params_mut();
        assert_eq!(dst.len(), from.len(), "model shapes differ");
        for (d, s) in dst.into_iter().zip(from) {
            d.data.copy_from_slice(&s.data);
        }
    }

    /// Flat node ids of every plan-operator node across the mini-batch,
    /// with CSR-style per-graph offsets (`op_offsets[gi]..op_offsets[gi+1]`
    /// is graph `gi`'s slice of `op_flats`).
    fn operator_flats(graphs: &[&PlanGraph], schedule: &BatchSchedule) -> (Vec<usize>, Vec<usize>) {
        let mut op_flats = Vec::new();
        let mut op_offsets = Vec::with_capacity(graphs.len() + 1);
        op_offsets.push(0);
        for (gi, g) in graphs.iter().enumerate() {
            let base = schedule.offsets()[gi];
            for ni in operator_node_indices(g) {
                op_flats.push(base + ni);
            }
            op_offsets.push(op_flats.len());
        }
        (op_flats, op_offsets)
    }

    /// Assemble per-graph predictions from head output batches.
    fn assemble_predictions(
        cost_out: &Batch,
        root_out: &Batch,
        op_out: &Batch,
        op_offsets: &[usize],
    ) -> Vec<MultiTaskPrediction> {
        (0..cost_out.n())
            .map(|e| MultiTaskPrediction {
                runtime_secs: cost_out.get(0, e).exp(),
                root_rows: rows_from_log(root_out.get(0, e)),
                operator_rows: (op_offsets[e]..op_offsets[e + 1])
                    .map(|k| rows_from_log(op_out.get(0, k)))
                    .collect(),
            })
            .collect()
    }

    /// Predict every task for a mini-batch of graphs in one shared encoder
    /// pass.  Deterministic, and bit-identical to single-graph
    /// [`MultiTaskModel::predict`] per graph.
    pub fn predict_batch(&self, graphs: &[&PlanGraph]) -> Vec<MultiTaskPrediction> {
        if graphs.is_empty() {
            return Vec::new();
        }
        let schedule = BatchSchedule::build(graphs);
        let states = self.encoder.encode_batch(graphs, &schedule);
        let root_states = states.gather(schedule.roots());
        let (op_flats, op_offsets) = Self::operator_flats(graphs, &schedule);
        let op_states = states.gather(&op_flats);
        let cost_out = self.cost_head.forward_batch(&root_states);
        let root_out = self.root_card_head.forward_batch(&root_states);
        let op_out = self.op_card_head.forward_batch(&op_states);
        Self::assemble_predictions(&cost_out, &root_out, &op_out, &op_offsets)
    }

    /// Predict every task for one plan graph.
    pub fn predict(&self, graph: &PlanGraph) -> MultiTaskPrediction {
        self.predict_batch(&[graph])
            .pop()
            .expect("one graph in, one prediction out")
    }

    /// Batched joint training step contribution: one shared encoder
    /// forward, per-head losses with the configured weights, one backward
    /// pass accumulating gradients (no optimizer step).
    ///
    /// Loss conventions: the cost and root-cardinality heads sum squared
    /// errors per graph (in `ln` / `ln(1+·)` space); the operator head
    /// averages its squared errors over each graph's operators before
    /// summing, so a 15-operator plan does not dominate a 3-operator one.
    /// The gradient deposit order (cost → root → operator, examples
    /// ascending, then the encoder's reverse-schedule walk) is fixed, so
    /// accumulation is a deterministic function of the mini-batch.
    pub fn accumulate_gradients_batch(
        &mut self,
        samples: &[&MultiTaskSample],
    ) -> MultiTaskBackprop {
        if samples.is_empty() {
            return MultiTaskBackprop {
                loss: 0.0,
                cost_loss: 0.0,
                root_card_loss: 0.0,
                op_card_loss: 0.0,
                predictions: Vec::new(),
            };
        }
        let graphs: Vec<&PlanGraph> = samples.iter().map(|s| &s.graph).collect();
        let schedule = BatchSchedule::build(&graphs);
        let h = self.config.hidden_dim;

        // ---- Forward with caches -------------------------------------
        let (states, trace) = self.encoder.encode_batch_cached(&graphs, &schedule);
        let root_states = states.gather(schedule.roots());
        let (op_flats, op_offsets) = Self::operator_flats(&graphs, &schedule);
        let op_states = states.gather(&op_flats);
        let (cost_out, cost_cache) = self.cost_head.forward_batch_cached(root_states.clone());
        let (root_out, root_cache) = self.root_card_head.forward_batch_cached(root_states);
        let (op_out, op_cache) = self.op_card_head.forward_batch_cached(op_states);

        // ---- Losses --------------------------------------------------
        let n = samples.len();
        let w = &self.config;
        let mut cost_loss = 0.0;
        let mut root_card_loss = 0.0;
        let mut op_card_loss = 0.0;
        let mut d_cost = Batch::zeros(1, n);
        let mut d_root = Batch::zeros(1, n);
        let mut d_op = Batch::zeros(1, op_flats.len());
        for (e, s) in samples.iter().enumerate() {
            let cost_err = cost_out.get(0, e) - s.targets.runtime_secs.max(1e-9).ln();
            cost_loss += cost_err * cost_err;
            d_cost.set(0, e, w.cost_weight * 2.0 * cost_err);

            let root_err = root_out.get(0, e) - (s.targets.root_rows + 1.0).ln();
            root_card_loss += root_err * root_err;
            d_root.set(0, e, w.root_card_weight * 2.0 * root_err);

            let ops = op_offsets[e + 1] - op_offsets[e];
            // Samples built by `sample_from_execution` are aligned by
            // construction, but `MultiTaskSample` is all-public and
            // deserializable — a misaligned label vector must fail loudly
            // here, not deposit gradients into a neighbouring graph.
            assert_eq!(
                ops,
                s.targets.operator_rows.len(),
                "graph {e}: operator labels misaligned with the graph's operator nodes"
            );
            let per_op = 1.0 / ops.max(1) as f64;
            let mut graph_op_loss = 0.0;
            for (j, rows) in s.targets.operator_rows.iter().enumerate() {
                let k = op_offsets[e] + j;
                let op_err = op_out.get(0, k) - (rows + 1.0).ln();
                graph_op_loss += op_err * op_err;
                d_op.set(0, k, w.op_card_weight * per_op * 2.0 * op_err);
            }
            op_card_loss += graph_op_loss * per_op;
        }
        let loss = w.cost_weight * cost_loss
            + w.root_card_weight * root_card_loss
            + w.op_card_weight * op_card_loss;
        let predictions = Self::assemble_predictions(&cost_out, &root_out, &op_out, &op_offsets);

        // ---- Backward ------------------------------------------------
        let d_root_state_cost = self.cost_head.backward_batch(&cost_cache, &d_cost);
        let d_root_state_card = self.root_card_head.backward_batch(&root_cache, &d_root);
        let d_op_state = self.op_card_head.backward_batch(&op_cache, &d_op);
        let mut d_states = NodeStates::zeros(h, schedule.num_nodes());
        d_states.scatter_add(schedule.roots(), &d_root_state_cost);
        d_states.scatter_add(schedule.roots(), &d_root_state_card);
        d_states.scatter_add(&op_flats, &d_op_state);
        self.encoder.backward_batch(&schedule, &trace, d_states);

        MultiTaskBackprop {
            loss,
            cost_loss,
            root_card_loss,
            op_card_loss,
            predictions,
        }
    }

    /// Serialize the model to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Load a model from its JSON representation.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl ReplicaSync for MultiTaskModel {
    fn sync_weights_from(&mut self, src: &Self) {
        self.copy_weights_from(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_from_execution;
    use zsdb_catalog::presets;
    use zsdb_core::features::FeaturizerConfig;
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn samples() -> Vec<MultiTaskSample> {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 24, 1);
        runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| sample_from_execution(db.catalog(), e, FeaturizerConfig::estimated()))
            .collect()
    }

    #[test]
    fn predictions_are_finite_and_shaped() {
        let samples = samples();
        let model = MultiTaskModel::new(MultiTaskConfig::tiny());
        for s in &samples {
            let p = model.predict(&s.graph);
            assert!(p.runtime_secs.is_finite() && p.runtime_secs > 0.0);
            assert!(p.root_rows.is_finite() && p.root_rows >= 0.0);
            assert_eq!(p.operator_rows.len(), s.targets.operator_rows.len());
            assert!(p.operator_rows.iter().all(|r| r.is_finite() && *r >= 0.0));
        }
    }

    #[test]
    fn batched_predictions_match_single_graph_predictions() {
        let samples = samples();
        let model = MultiTaskModel::new(MultiTaskConfig::tiny());
        let refs: Vec<&PlanGraph> = samples.iter().map(|s| &s.graph).collect();
        let batched = model.predict_batch(&refs);
        for (s, b) in samples.iter().zip(&batched) {
            let single = model.predict(&s.graph);
            assert_eq!(single.runtime_secs.to_bits(), b.runtime_secs.to_bits());
            assert_eq!(single.root_rows.to_bits(), b.root_rows.to_bits());
            assert_eq!(single.operator_rows.len(), b.operator_rows.len());
            for (x, y) in single.operator_rows.iter().zip(&b.operator_rows) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn cost_path_initialises_identically_to_single_task_model() {
        // Same seed and dimensions → the shared encoder and the cost head
        // start weight-identical to the single-task cost model, so the
        // cost prediction of a fresh multi-task model equals the fresh
        // single-task prediction bit for bit.
        let samples = samples();
        let multi = MultiTaskModel::new(MultiTaskConfig::tiny());
        let single = zsdb_core::ZeroShotCostModel::new(zsdb_core::ModelConfig::tiny());
        for s in samples.iter().take(8) {
            assert_eq!(
                multi.predict(&s.graph).runtime_secs.to_bits(),
                single.predict(&s.graph).to_bits()
            );
        }
    }

    #[test]
    fn joint_training_reduces_every_task_loss() {
        let samples = samples();
        let refs: Vec<&MultiTaskSample> = samples.iter().collect();
        let mut model = MultiTaskModel::new(MultiTaskConfig::tiny());
        let mut adam = Adam::new(3e-3);
        model.zero_grad();
        let first = model.accumulate_gradients_batch(&refs);
        model.apply_step(&mut adam);
        for _ in 0..120 {
            model.zero_grad();
            model.accumulate_gradients_batch(&refs);
            model.apply_step(&mut adam);
        }
        model.zero_grad();
        let last = model.accumulate_gradients_batch(&refs);
        assert!(
            last.cost_loss < first.cost_loss,
            "cost loss should improve: {} -> {}",
            first.cost_loss,
            last.cost_loss
        );
        assert!(
            last.root_card_loss < first.root_card_loss,
            "root-card loss should improve: {} -> {}",
            first.root_card_loss,
            last.root_card_loss
        );
        assert!(
            last.op_card_loss < first.op_card_loss,
            "op-card loss should improve: {} -> {}",
            first.op_card_loss,
            last.op_card_loss
        );
        assert!(last.loss < first.loss);
    }

    #[test]
    #[should_panic(expected = "operator labels misaligned")]
    fn misaligned_operator_labels_fail_loudly() {
        // MultiTaskSample is all-public and deserializable, so a label
        // vector that does not match the graph's operator nodes must be a
        // clean panic, never silent gradient corruption.
        let samples = samples();
        let mut bad = samples[0].clone();
        bad.targets.operator_rows.push(1.0);
        let mut model = MultiTaskModel::new(MultiTaskConfig::tiny());
        model.zero_grad();
        model.accumulate_gradients_batch(&[&bad]);
    }

    #[test]
    fn gradient_accumulation_is_deterministic() {
        let samples = samples();
        let refs: Vec<&MultiTaskSample> = samples.iter().take(6).collect();
        let mut grads = Vec::new();
        for _ in 0..2 {
            let mut model = MultiTaskModel::new(MultiTaskConfig::tiny());
            model.zero_grad();
            model.accumulate_gradients_batch(&refs);
            let mut flat = Vec::new();
            model.export_gradients(&mut flat);
            grads.push(flat);
        }
        let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&grads[0]), bits(&grads[1]));
    }

    #[test]
    fn cost_head_gradients_match_finite_differences() {
        let samples = samples();
        let refs: Vec<&MultiTaskSample> = samples.iter().take(4).collect();
        let mut model = MultiTaskModel::new(MultiTaskConfig::tiny());
        model.zero_grad();
        model.accumulate_gradients_batch(&refs);
        let analytic = model.cost_head.params_mut()[0].grad[0];
        let orig = model.cost_head.params_mut()[0].data[0];
        let eps = 1e-6;
        let loss_at = |m: &mut MultiTaskModel| {
            m.zero_grad();
            let bp = m.accumulate_gradients_batch(&refs);
            m.zero_grad();
            m.config.cost_weight * bp.cost_loss
        };
        model.cost_head.params_mut()[0].data[0] = orig + eps;
        let up = loss_at(&mut model);
        model.cost_head.params_mut()[0].data[0] = orig - eps;
        let down = loss_at(&mut model);
        model.cost_head.params_mut()[0].data[0] = orig;
        let numeric = (up - down) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn serialization_roundtrip_preserves_all_heads() {
        let samples = samples();
        let model = MultiTaskModel::new(MultiTaskConfig::tiny());
        let restored = MultiTaskModel::from_json(&model.to_json()).unwrap();
        assert_eq!(model.num_parameters(), restored.num_parameters());
        for s in samples.iter().take(5) {
            let a = model.predict(&s.graph);
            let b = restored.predict(&s.graph);
            assert_eq!(a.runtime_secs.to_bits(), b.runtime_secs.to_bits());
            assert_eq!(a.root_rows.to_bits(), b.root_rows.to_bits());
            assert_eq!(a.operator_rows, b.operator_rows);
        }
    }
}
