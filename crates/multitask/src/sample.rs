//! Multi-task training samples: a featurized plan graph plus the per-task
//! labels extracted from an executed query.
//!
//! The featurizer in `zsdb_core` emits plan-operator nodes in **post-order
//! of the physical plan tree** (children before parents, attached
//! table/column/predicate nodes interleaved).  The executed tree
//! ([`ExecutedNode`]) has exactly the plan's shape, so walking it in the
//! same post-order aligns the true per-operator cardinalities with the
//! graph's plan-operator nodes — verified by a structural assertion on
//! every sample.

use serde::{Deserialize, Serialize};
use zsdb_catalog::SchemaCatalog;
use zsdb_core::features::{featurize_execution, FeaturizerConfig, NodeKind, PlanGraph};
use zsdb_engine::{ExecutedNode, QueryExecution};

/// Per-task regression targets of one executed query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTargets {
    /// Simulated runtime in seconds (the cost head's target).
    pub runtime_secs: f64,
    /// True number of rows entering the root aggregate — the query's
    /// result cardinality before aggregation (the root-cardinality head's
    /// target).
    pub root_rows: f64,
    /// True output cardinality of every plan operator, aligned with the
    /// graph's [`NodeKind::PlanOperator`] nodes in node-index order (the
    /// per-operator head's targets).
    pub operator_rows: Vec<f64>,
}

/// One multi-task training example: the featurized plan graph together
/// with all task labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskSample {
    /// The featurized plan graph (shared input of every task head).
    pub graph: PlanGraph,
    /// The per-task labels.
    pub targets: TaskTargets,
}

/// Indices of the plan-operator nodes of `graph`, ascending — the nodes
/// whose hidden states feed the per-operator cardinality head, aligned
/// with [`TaskTargets::operator_rows`].
pub fn operator_node_indices(graph: &PlanGraph) -> Vec<usize> {
    graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.kind == NodeKind::PlanOperator)
        .map(|(i, _)| i)
        .collect()
}

/// True output cardinalities of the executed tree in post-order (children
/// first, in child order) — the order the featurizer emits plan-operator
/// nodes in.
fn post_order_cardinalities(node: &ExecutedNode, out: &mut Vec<f64>) {
    for child in &node.children {
        post_order_cardinalities(child, out);
    }
    out.push(node.actual_cardinality as f64);
}

/// Build a multi-task sample from an executed query: featurize the plan
/// against `catalog` and extract all task labels from the executed tree.
///
/// The root-cardinality label is the true cardinality *entering* the root
/// operator (the result of the join tree before the scalar aggregation
/// collapses it) — for the workspace's aggregate-rooted plans that is the
/// root's single child; a plan without children labels the root itself.
pub fn sample_from_execution(
    catalog: &SchemaCatalog,
    execution: &QueryExecution,
    featurizer: FeaturizerConfig,
) -> MultiTaskSample {
    let graph = featurize_execution(catalog, execution, featurizer);
    let mut operator_rows = Vec::with_capacity(execution.executed.size());
    post_order_cardinalities(&execution.executed, &mut operator_rows);
    assert_eq!(
        operator_rows.len(),
        graph.count_kind(NodeKind::PlanOperator),
        "executed tree and featurized graph disagree on the operator count"
    );
    let root_rows = execution
        .executed
        .children
        .first()
        .map(|c| c.actual_cardinality)
        .unwrap_or(execution.executed.actual_cardinality) as f64;
    MultiTaskSample {
        graph,
        targets: TaskTargets {
            runtime_secs: execution.runtime_secs,
            root_rows,
            operator_rows,
        },
    }
}

/// Featurize a whole corpus of executions against per-database catalogs
/// (mirrors [`zsdb_core::Trainer::featurize_corpus`] for multi-task
/// samples).
pub fn samples_from_executions<'a, F>(
    executions: &[QueryExecution],
    mut catalog_of: F,
    featurizer: FeaturizerConfig,
) -> Vec<MultiTaskSample>
where
    F: FnMut(&str) -> &'a SchemaCatalog,
{
    executions
        .iter()
        .map(|e| sample_from_execution(catalog_of(&e.database), e, featurizer))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn executions() -> (Database, Vec<QueryExecution>) {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 12, 1);
        let execs = runner.run_workload(&queries, 0);
        (db, execs)
    }

    #[test]
    fn operator_labels_align_with_graph_operator_nodes() {
        let (db, execs) = executions();
        for e in &execs {
            let sample = sample_from_execution(db.catalog(), e, FeaturizerConfig::exact());
            let ops = operator_node_indices(&sample.graph);
            assert_eq!(ops.len(), sample.targets.operator_rows.len());
            assert_eq!(ops.len(), e.plan.size());
            // The graph root is the last plan-operator node, and its label
            // is the executed root's cardinality.
            assert_eq!(*ops.last().unwrap(), sample.graph.root);
            assert_eq!(
                *sample.targets.operator_rows.last().unwrap(),
                e.executed.actual_cardinality as f64
            );
            // With exact-cardinality featurization, every operator node's
            // cardinality feature is exactly log1p of its label — the
            // strongest possible alignment check.
            let kind_slots = zsdb_engine::PhysOperatorKind::ALL.len();
            for (k, &ni) in ops.iter().enumerate() {
                let feat = sample.graph.nodes[ni].features[kind_slots];
                let expected = (sample.targets.operator_rows[k] + 1.0).ln();
                assert!(
                    (feat - expected).abs() < 1e-9,
                    "operator {k}: feature {feat} vs label-derived {expected}"
                );
            }
        }
    }

    #[test]
    fn root_rows_is_the_aggregate_input() {
        let (db, execs) = executions();
        for e in &execs {
            let sample = sample_from_execution(db.catalog(), e, FeaturizerConfig::exact());
            let expected = e.executed.children[0].actual_cardinality as f64;
            assert_eq!(sample.targets.root_rows, expected);
            assert_eq!(sample.targets.runtime_secs, e.runtime_secs);
        }
    }

    #[test]
    fn samples_serialize_roundtrip() {
        let (db, execs) = executions();
        let sample = sample_from_execution(db.catalog(), &execs[0], FeaturizerConfig::estimated());
        let json = serde_json::to_string(&sample).unwrap();
        let back: MultiTaskSample = serde_json::from_str(&json).unwrap();
        assert_eq!(sample, back);
    }
}
