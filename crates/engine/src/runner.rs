//! End-to-end query running: optimize → execute → simulate runtime.

use crate::config::EngineConfig;
use crate::executor::Executor;
use crate::observed::QueryExecution;
use crate::optimizer::Optimizer;
use crate::physical::PlanNode;
use crate::runtime::HardwareProfile;
use zsdb_cardest::PostgresLikeEstimator;
use zsdb_query::Query;
use zsdb_storage::Database;

/// Runs logical queries against one database and produces
/// [`QueryExecution`] training/evaluation samples.
pub struct QueryRunner<'a> {
    db: &'a Database,
    config: EngineConfig,
    profile: HardwareProfile,
    estimator: PostgresLikeEstimator,
}

impl<'a> QueryRunner<'a> {
    /// Create a runner with the given planner configuration and hardware
    /// profile.  Planning uses the classical catalog-statistics estimator,
    /// as a real system would.
    pub fn new(db: &'a Database, config: EngineConfig, profile: HardwareProfile) -> Self {
        let estimator = PostgresLikeEstimator::new(db.catalog().clone());
        QueryRunner {
            db,
            config,
            profile,
            estimator,
        }
    }

    /// Runner with default configuration and hardware profile.
    pub fn with_defaults(db: &'a Database) -> Self {
        QueryRunner::new(db, EngineConfig::default(), HardwareProfile::default())
    }

    /// The database being queried.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The hardware profile used for runtime simulation.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Plan a query without executing it.
    pub fn plan(&self, query: &Query) -> PlanNode {
        Optimizer::new(self.db, self.config.clone(), &self.estimator).plan(query)
    }

    /// Plan every query of a workload without executing any of them.
    ///
    /// This is how the serving layer drives realistic prediction-request
    /// streams: plans come out of the same optimizer a live system would
    /// use, but no query is ever run against the data.
    pub fn plan_workload(&self, queries: &[Query]) -> Vec<PlanNode> {
        queries.iter().map(|q| self.plan(q)).collect()
    }

    /// Plan, execute and time one query.  `noise_seed` controls the
    /// run-to-run noise of the simulated runtime.
    pub fn run(&self, query: &Query, noise_seed: u64) -> QueryExecution {
        let plan = self.plan(query);
        self.run_plan(query, plan, noise_seed)
    }

    /// Execute and time an externally supplied plan (used by the what-if
    /// machinery, which plans with hypothetical indexes).
    pub fn run_plan(&self, query: &Query, plan: PlanNode, noise_seed: u64) -> QueryExecution {
        let result = Executor::new(self.db).execute(&plan);
        let runtime_secs = self.profile.plan_runtime_secs(&result.root, noise_seed);
        QueryExecution {
            database: self.db.catalog().name.clone(),
            query: query.clone(),
            plan,
            executed: result.root,
            aggregates: result.aggregates,
            runtime_secs,
        }
    }

    /// Execute and time an externally supplied plan with the row-at-a-time
    /// reference executor ([`crate::exec_row::RowExecutor`]).  Used by the
    /// equivalence suite and the executor benchmark; training-data paths go
    /// through the batched [`Executor`] via [`QueryRunner::run_plan`].
    pub fn run_plan_row_baseline(
        &self,
        query: &Query,
        plan: PlanNode,
        noise_seed: u64,
    ) -> QueryExecution {
        let result = crate::exec_row::RowExecutor::new(self.db).execute(&plan);
        let runtime_secs = self.profile.plan_runtime_secs(&result.root, noise_seed);
        QueryExecution {
            database: self.db.catalog().name.clone(),
            query: query.clone(),
            plan,
            executed: result.root,
            aggregates: result.aggregates,
            runtime_secs,
        }
    }

    /// Run a whole workload; the noise seed is derived from `base_seed`
    /// and the query index.
    pub fn run_workload(&self, queries: &[Query], base_seed: u64) -> Vec<QueryExecution> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| self.run(q, base_seed.wrapping_add(i as u64)))
            .collect()
    }

    /// Run one query and record the execution (fingerprinted plan +
    /// observed runtime/cardinalities) into an
    /// [`ObservationLog`](crate::observation::ObservationLog) — the
    /// feedback hook of the online adaptation loop.
    pub fn run_observed(
        &self,
        query: &Query,
        noise_seed: u64,
        log: &crate::observation::ObservationLog,
    ) -> QueryExecution {
        let execution = self.run(query, noise_seed);
        log.record_execution(execution.clone());
        execution
    }

    /// Run a whole workload, recording every execution into the
    /// observation log (see [`QueryRunner::run_observed`]).
    pub fn run_workload_observed(
        &self,
        queries: &[Query],
        base_seed: u64,
        log: &crate::observation::ObservationLog,
    ) -> Vec<QueryExecution> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| self.run_observed(q, base_seed.wrapping_add(i as u64), log))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_query::WorkloadGenerator;

    #[test]
    fn run_workload_produces_positive_runtimes() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 10, 1);
        let executions = runner.run_workload(&queries, 99);
        assert_eq!(executions.len(), 10);
        for e in &executions {
            assert!(e.runtime_secs > 0.0);
            assert_eq!(e.query.num_tables(), e.plan.scanned_tables().len());
        }
    }

    #[test]
    fn bigger_queries_take_longer_on_average() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let profile = HardwareProfile::default().noiseless();
        let runner = QueryRunner::new(&db, EngineConfig::default(), profile);
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let (ci, _) = db.catalog().table_by_name("cast_info").unwrap();
        let single = runner.run(&Query::scan(title), 0);

        let title_id = db.catalog().resolve_column("title", "id").unwrap();
        let movie_id = db
            .catalog()
            .resolve_column("cast_info", "movie_id")
            .unwrap();
        let join_query = Query {
            tables: vec![title, ci],
            joins: vec![zsdb_query::JoinCondition::new(movie_id, title_id)],
            predicates: vec![],
            aggregates: vec![zsdb_query::Aggregate::count_star()],
        };
        let joined = runner.run(&join_query, 0);
        assert!(joined.runtime_secs > single.runtime_secs);
    }

    #[test]
    fn plan_workload_matches_individual_planning() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 5, 2);
        let plans = runner.plan_workload(&queries);
        assert_eq!(plans.len(), queries.len());
        for (q, p) in queries.iter().zip(&plans) {
            assert_eq!(p, &runner.plan(q));
        }
    }

    #[test]
    fn row_baseline_produces_identical_executions() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let profile = HardwareProfile::default().noiseless();
        let runner = QueryRunner::new(&db, EngineConfig::default(), profile);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 5, 2);
        for (i, q) in queries.iter().enumerate() {
            let plan = runner.plan(q);
            let batched = runner.run_plan(q, plan.clone(), i as u64);
            let row = runner.run_plan_row_baseline(q, plan, i as u64);
            assert_eq!(batched.aggregates, row.aggregates);
            assert_eq!(batched.executed, row.executed);
            assert_eq!(batched.runtime_secs, row.runtime_secs);
        }
    }

    #[test]
    fn runtimes_are_deterministic_per_seed() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 3, 1);
        let a = runner.run(&queries[0], 42).runtime_secs;
        let b = runner.run(&queries[0], 42).runtime_secs;
        let c = runner.run(&queries[0], 43).runtime_secs;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
