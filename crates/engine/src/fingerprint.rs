//! Stable structural fingerprints of physical plans.
//!
//! The fingerprint hashes exactly the plan structure the zero-shot
//! featurizer reads (operator kinds, tables, columns, predicates,
//! aggregates, cardinality/width annotations and child order) using a
//! fixed-constant FNV-1a — **stable across processes, seeds and
//! platforms**, unlike `std`'s `DefaultHasher`, whose algorithm is not
//! guaranteed between Rust releases.
//!
//! It lives in `zsdb_engine` (rather than next to the featurizer in
//! `zsdb_core`) because the engine itself keys observed executions by it:
//! the [`ObservationLog`](crate::observation::ObservationLog) records
//! `(fingerprint, execution)` pairs as they leave the executor, and the
//! serving layer joins those observations against its fingerprint-keyed
//! feature cache.  `zsdb_core::fingerprint` re-exports
//! [`plan_fingerprint`] unchanged.

use crate::physical::{PhysOperator, PlanNode};
use zsdb_query::{Aggregate, Predicate};

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a (64-bit) hasher with the standard offset basis and
/// prime, specified byte-for-byte so fingerprints can be persisted.
///
/// Public so downstream fingerprints (e.g. the featurized-graph
/// fingerprint in `zsdb_core`) hash with the identical primitive.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorb a `u64` (little-endian byte order).
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Absorb a `u32` (little-endian byte order).
    pub fn write_u32(&mut self, value: u32) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Absorb an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Stable structural fingerprint of a physical plan.
///
/// Two plans receive the same fingerprint exactly when the featurizer
/// would produce the same graph from them (against a fixed catalog): the
/// hash covers operator kinds and parameters, predicate/aggregate
/// structure, literal values, estimated cardinalities and output widths,
/// and the tree shape.  Optimizer cost annotations are *excluded* — they
/// never reach the feature vectors.
pub fn plan_fingerprint(plan: &PlanNode) -> u64 {
    let mut h = Fnv64::new();
    hash_plan_node(plan, &mut h);
    h.finish()
}

fn hash_plan_node(plan: &PlanNode, h: &mut Fnv64) {
    h.write_u8(plan.op.kind().index() as u8);
    h.write_f64(plan.est_cardinality);
    h.write_f64(plan.output_width);
    match &plan.op {
        PhysOperator::SeqScan { table, predicates } => {
            h.write_u32(table.0);
            hash_predicates(predicates, h);
        }
        PhysOperator::IndexScan {
            table,
            index_column,
            lo,
            hi,
            residual,
        } => {
            h.write_u32(table.0);
            h.write_u32(index_column.table.0);
            h.write_u32(index_column.column.0);
            hash_opt_f64(*lo, h);
            hash_opt_f64(*hi, h);
            hash_predicates(residual, h);
        }
        PhysOperator::HashJoin {
            build_key,
            probe_key,
        } => {
            h.write_u32(build_key.table.0);
            h.write_u32(build_key.column.0);
            h.write_u32(probe_key.table.0);
            h.write_u32(probe_key.column.0);
        }
        PhysOperator::NestedLoopJoin {
            outer_key,
            inner_key,
        } => {
            h.write_u32(outer_key.table.0);
            h.write_u32(outer_key.column.0);
            h.write_u32(inner_key.table.0);
            h.write_u32(inner_key.column.0);
        }
        PhysOperator::Aggregate { aggregates } => {
            h.write_u8(aggregates.len() as u8);
            for agg in aggregates {
                hash_aggregate(agg, h);
            }
        }
    }
    h.write_u8(plan.children.len() as u8);
    for child in &plan.children {
        hash_plan_node(child, h);
    }
}

fn hash_opt_f64(value: Option<f64>, h: &mut Fnv64) {
    match value {
        Some(v) => {
            h.write_u8(1);
            h.write_f64(v);
        }
        None => h.write_u8(0),
    }
}

fn hash_predicates(predicates: &[Predicate], h: &mut Fnv64) {
    h.write_u8(predicates.len() as u8);
    for p in predicates {
        h.write_u32(p.column.table.0);
        h.write_u32(p.column.column.0);
        h.write_u8(p.op.index() as u8);
        hash_value(&p.value, h);
    }
}

fn hash_aggregate(agg: &Aggregate, h: &mut Fnv64) {
    h.write_u8(agg.func.index() as u8);
    match agg.column {
        Some(c) => {
            h.write_u8(1);
            h.write_u32(c.table.0);
            h.write_u32(c.column.0);
        }
        None => h.write_u8(0),
    }
}

fn hash_value(value: &zsdb_catalog::Value, h: &mut Fnv64) {
    use zsdb_catalog::Value;
    match value {
        Value::Null => h.write_u8(0),
        Value::Int(v) => {
            h.write_u8(1);
            h.write_u64(*v as u64);
        }
        Value::Float(v) => {
            h.write_u8(2);
            h.write_f64(*v);
        }
        Value::Cat(v) => {
            h.write_u8(3);
            h.write_u32(*v);
        }
        Value::Bool(v) => {
            h.write_u8(4);
            h.write_u8(*v as u8);
        }
    }
}
