//! Runtime simulation: work counters → seconds.
//!
//! This is the workspace's substitute for measuring real PostgreSQL
//! runtimes.  A [`HardwareProfile`] holds per-operation latencies, a cache
//! budget and a spill penalty; given the [`ExecutedNode`] tree produced by
//! the executor it computes a runtime that is a *nonlinear* function of the
//! work: random pages cost much more than sequential ones, hash tables that
//! exceed the cache budget slow every probe down, and every operator and
//! query pays a fixed startup overhead.  A multiplicative log-normal noise
//! term models run-to-run variance.
//!
//! Crucially the profile is *hidden* from all learned models — they only
//! see plans, cardinalities and widths — so learning the mapping from plan
//! features to runtime is a genuine regression problem, as in the paper.

use crate::executor::ExecutedNode;
use crate::physical::PhysOperatorKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-operation latency constants of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Microseconds to read one page sequentially.
    pub seq_page_us: f64,
    /// Microseconds to read one page with random access.
    pub random_page_us: f64,
    /// Microseconds of CPU per tuple passed through an operator.
    pub tuple_cpu_us: f64,
    /// Microseconds per predicate evaluation.
    pub predicate_us: f64,
    /// Microseconds per hash-table insertion.
    pub hash_build_us: f64,
    /// Microseconds per hash-table probe.
    pub hash_probe_us: f64,
    /// Microseconds per key comparison (nested loops).
    pub compare_us: f64,
    /// Microseconds per index entry touched.
    pub index_entry_us: f64,
    /// Microseconds per output byte materialised.
    pub output_byte_us: f64,
    /// Fixed startup cost per operator in microseconds.
    pub operator_startup_us: f64,
    /// Fixed per-query overhead (parsing, planning, round trip) in
    /// microseconds.
    pub query_overhead_us: f64,
    /// Cache/memory budget in bytes; hash tables larger than this spill.
    pub cache_bytes: u64,
    /// Multiplier applied to probe/build work of spilled hash tables.
    pub spill_factor: f64,
    /// Standard deviation of the log-normal noise on the total runtime.
    pub noise_sigma: f64,
}

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile {
            seq_page_us: 18.0,
            random_page_us: 70.0,
            tuple_cpu_us: 0.10,
            predicate_us: 0.035,
            hash_build_us: 0.16,
            hash_probe_us: 0.07,
            compare_us: 0.012,
            index_entry_us: 0.06,
            output_byte_us: 0.0006,
            operator_startup_us: 45.0,
            query_overhead_us: 1800.0,
            cache_bytes: 8 * 1024 * 1024,
            spill_factor: 2.6,
            noise_sigma: 0.06,
        }
    }
}

impl HardwareProfile {
    /// A machine with fast NVMe storage (cheap random reads, large cache).
    pub fn fast_nvme() -> Self {
        HardwareProfile {
            seq_page_us: 8.0,
            random_page_us: 30.0,
            cache_bytes: 64 * 1024 * 1024,
            ..HardwareProfile::default()
        }
    }

    /// A machine with slow spinning disks (expensive random reads).
    pub fn slow_disk() -> Self {
        HardwareProfile {
            seq_page_us: 40.0,
            random_page_us: 900.0,
            cache_bytes: 2 * 1024 * 1024,
            spill_factor: 4.0,
            ..HardwareProfile::default()
        }
    }

    /// Noise-free copy of the profile (used by tests and ablations).
    pub fn noiseless(mut self) -> Self {
        self.noise_sigma = 0.0;
        self
    }

    /// Simulated runtime of a single executed operator in microseconds
    /// (children not included).
    ///
    /// `input_tuples` is charged `tuple_cpu_us` per tuple.  For
    /// nested-loop joins the executor accounts inner-relation rescans
    /// (`outer + outer * inner` input tuples), so NLJ runtimes grow with
    /// the full quadratic read volume, and `output_bytes`/`build_bytes`
    /// are derived from catalog column widths
    /// ([`crate::executor::row_width_bytes`]), not a fixed 8 bytes per
    /// column.
    pub fn node_runtime_us(&self, node: &ExecutedNode) -> f64 {
        let w = &node.work;
        let spilled = w.build_bytes > self.cache_bytes;
        let spill = if spilled { self.spill_factor } else { 1.0 };

        let io =
            w.pages_seq as f64 * self.seq_page_us + w.pages_random as f64 * self.random_page_us;
        let cpu = w.input_tuples as f64 * self.tuple_cpu_us
            + w.predicate_evals as f64 * self.predicate_us
            + w.index_entries as f64 * self.index_entry_us
            + w.comparisons as f64 * self.compare_us
            + (w.hash_build_tuples as f64 * self.hash_build_us
                + w.hash_probe_tuples as f64 * self.hash_probe_us)
                * spill;
        let materialise = w.output_bytes as f64 * self.output_byte_us;

        // Aggregation and join output formation get a small extra per output
        // tuple to reflect tuple construction costs.
        let per_output = match node.kind {
            PhysOperatorKind::HashJoin | PhysOperatorKind::NestedLoopJoin => {
                w.output_tuples as f64 * self.tuple_cpu_us * 0.5
            }
            _ => 0.0,
        };

        self.operator_startup_us + io + cpu + materialise + per_output
    }

    /// Simulated runtime of a whole executed plan in **seconds**, including
    /// the per-query overhead and (if `noise_sigma > 0`) multiplicative
    /// log-normal noise seeded by `noise_seed`.
    pub fn plan_runtime_secs(&self, root: &ExecutedNode, noise_seed: u64) -> f64 {
        let mut total_us = self.query_overhead_us;
        for node in root.iter() {
            total_us += self.node_runtime_us(node);
        }
        let noisy = if self.noise_sigma > 0.0 {
            let mut rng = StdRng::seed_from_u64(noise_seed);
            let z = standard_normal(&mut rng);
            total_us * (self.noise_sigma * z).exp()
        } else {
            total_us
        };
        noisy / 1e6
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::WorkMetrics;

    fn scan_node(pages: u64, rows: u64) -> ExecutedNode {
        ExecutedNode {
            kind: PhysOperatorKind::SeqScan,
            est_cardinality: rows as f64,
            actual_cardinality: rows,
            output_width: 40.0,
            work: WorkMetrics {
                input_tuples: rows,
                output_tuples: rows,
                pages_seq: pages,
                output_bytes: rows * 40,
                ..WorkMetrics::default()
            },
            children: Vec::new(),
        }
    }

    #[test]
    fn more_work_means_more_time() {
        let profile = HardwareProfile::default().noiseless();
        let small = profile.plan_runtime_secs(&scan_node(10, 1_000), 0);
        let large = profile.plan_runtime_secs(&scan_node(1_000, 100_000), 0);
        assert!(large > small * 5.0);
    }

    #[test]
    fn spilled_hash_tables_are_slower() {
        let profile = HardwareProfile::default().noiseless();
        let mut node = scan_node(1, 1);
        node.kind = PhysOperatorKind::HashJoin;
        node.work.hash_build_tuples = 100_000;
        node.work.hash_probe_tuples = 100_000;
        node.work.build_bytes = 1024; // fits in cache
        let fast = profile.node_runtime_us(&node);
        node.work.build_bytes = profile.cache_bytes + 1; // spills
        let slow = profile.node_runtime_us(&node);
        assert!(slow > fast * 1.5);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_bounded() {
        let profile = HardwareProfile::default();
        let node = scan_node(100, 10_000);
        let a = profile.plan_runtime_secs(&node, 7);
        let b = profile.plan_runtime_secs(&node, 7);
        assert_eq!(a, b);
        let c = profile.plan_runtime_secs(&node, 8);
        assert_ne!(a, c);
        let noiseless = profile.clone().noiseless().plan_runtime_secs(&node, 7);
        assert!((a / noiseless).ln().abs() < 5.0 * profile.noise_sigma);
    }

    #[test]
    fn random_pages_cost_more_than_sequential() {
        let profile = HardwareProfile::default().noiseless();
        let seq = scan_node(1_000, 0);
        let mut random = scan_node(0, 0);
        random.work.pages_random = 1_000;
        assert!(profile.node_runtime_us(&random) > profile.node_runtime_us(&seq));
    }

    #[test]
    fn hardware_variants_differ() {
        let node = scan_node(500, 50_000);
        let nvme = HardwareProfile::fast_nvme()
            .noiseless()
            .plan_runtime_secs(&node, 0);
        let disk = HardwareProfile::slow_disk()
            .noiseless()
            .plan_runtime_secs(&node, 0);
        assert!(disk > nvme);
    }

    #[test]
    fn runtime_includes_query_overhead() {
        let profile = HardwareProfile::default().noiseless();
        let tiny = profile.plan_runtime_secs(&scan_node(0, 0), 0);
        assert!(tiny >= profile.query_overhead_us / 1e6);
    }
}
