//! Bounded log of observed query executions — the feedback half of the
//! online adaptation loop.
//!
//! A live system continuously executes queries; each execution is ground
//! truth the learned cost models could fine-tune on.  The
//! [`ObservationLog`] is the bounded, thread-safe buffer between the
//! executor and whatever consumes that feedback (the adaptation loop in
//! `zsdb_serve`): executions are recorded as
//! `(plan fingerprint, observation)` pairs, and when the log is full a
//! **deterministic reservoir sample** decides which observations survive —
//! every execution ever recorded has an equal chance of being retained,
//! so a bursty workload cannot crowd the sample with its latest shape,
//! yet memory stays constant no matter how long the server runs.
//!
//! Determinism: the reservoir is driven by a seeded [`StdRng`] stream
//! (the workspace's stable-by-contract generator), so
//! the same insert sequence against the same seed always retains exactly
//! the same observations (property-tested).  [`ObservationLog::drain`]
//! hands the current sample to the consumer and restarts the reservoir,
//! so each adaptation round sees a fresh, unbiased sample of the traffic
//! since the previous round.

use crate::fingerprint::plan_fingerprint;
use crate::observed::QueryExecution;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Mutex;

/// One observed execution retained by the log: the stable structural
/// fingerprint of the executed plan plus the payload (by default the full
/// [`QueryExecution`], carrying the plan, the true per-operator
/// cardinalities and the observed runtime).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation<T = QueryExecution> {
    /// Structural fingerprint of the executed plan
    /// ([`plan_fingerprint`]).
    pub fingerprint: u64,
    /// The observation payload.
    pub payload: T,
}

struct LogInner<T> {
    slots: Vec<Observation<T>>,
    /// Observations recorded since the last drain (reservoir clock).
    seen: u64,
    rng: StdRng,
}

/// A bounded, thread-safe observation buffer with deterministic
/// reservoir-style eviction (Algorithm R over the workspace's seeded
/// [`StdRng`] stream, which is stable by contract).
///
/// Invariants (property-tested in `tests/property_tests.rs`):
/// * `len() ≤ capacity()` at all times;
/// * `total_seen()` counts every `record` since the last drain;
/// * while `total_seen() ≤ capacity()` nothing is ever evicted;
/// * the retained set is a pure function of `(seed, insert sequence)`.
pub struct ObservationLog<T = QueryExecution> {
    inner: Mutex<LogInner<T>>,
    capacity: usize,
    seed: u64,
}

impl<T> ObservationLog<T> {
    /// Create a log retaining at most `capacity` observations.  `seed`
    /// drives the deterministic reservoir eviction.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "a zero-capacity log could never observe");
        ObservationLog {
            inner: Mutex::new(LogInner {
                slots: Vec::new(),
                seen: 0,
                rng: StdRng::seed_from_u64(seed),
            }),
            capacity,
            seed,
        }
    }

    /// Maximum number of retained observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Observations currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("observation log poisoned")
            .slots
            .len()
    }

    /// Whether the log currently retains nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Observations recorded since the last [`ObservationLog::drain`]
    /// (including ones the reservoir has already evicted).
    pub fn total_seen(&self) -> u64 {
        self.inner.lock().expect("observation log poisoned").seen
    }

    /// Record one observation under the given plan fingerprint.
    ///
    /// While the log holds fewer than `capacity` observations, every
    /// record is retained.  Once full, the new observation replaces a
    /// uniformly chosen slot with probability `capacity / seen` — the
    /// classic reservoir step, driven by the log's own deterministic
    /// random stream.
    pub fn record(&self, fingerprint: u64, payload: T) {
        let mut inner = self.inner.lock().expect("observation log poisoned");
        inner.seen += 1;
        let observation = Observation {
            fingerprint,
            payload,
        };
        if inner.slots.len() < self.capacity {
            inner.slots.push(observation);
            return;
        }
        let slot = (inner.rng.next_u64() % inner.seen) as usize;
        if slot < self.capacity {
            inner.slots[slot] = observation;
        }
    }

    /// Take the current reservoir sample and restart the log: the
    /// retained observations are returned (in retention order), `seen`
    /// resets to zero and the random stream restarts from the seed, so a
    /// drained log behaves exactly like a freshly created one.
    pub fn drain(&self) -> Vec<Observation<T>> {
        let mut inner = self.inner.lock().expect("observation log poisoned");
        inner.seen = 0;
        inner.rng = StdRng::seed_from_u64(self.seed);
        std::mem::take(&mut inner.slots)
    }
}

impl ObservationLog<QueryExecution> {
    /// Record an executed query, fingerprinting its plan.
    pub fn record_execution(&self, execution: QueryExecution) {
        let fingerprint = plan_fingerprint(&execution.plan);
        self.record(fingerprint, execution);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::QueryRunner;
    use zsdb_catalog::presets;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    #[test]
    fn below_capacity_everything_is_retained_in_order() {
        let log: ObservationLog<u32> = ObservationLog::new(8, 1);
        for i in 0..5u32 {
            log.record(i as u64, i);
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.total_seen(), 5);
        let drained = log.drain();
        assert_eq!(
            drained.iter().map(|o| o.payload).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(log.len(), 0);
        assert_eq!(log.total_seen(), 0);
    }

    #[test]
    fn eviction_is_bounded_and_deterministic() {
        let run = |_: ()| -> Vec<u64> {
            let log: ObservationLog<u64> = ObservationLog::new(16, 99);
            for i in 0..1000u64 {
                log.record(i, i);
            }
            assert_eq!(log.len(), 16);
            assert_eq!(log.total_seen(), 1000);
            log.drain().iter().map(|o| o.fingerprint).collect()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a, b, "same seed + sequence must retain the same sample");
        // The reservoir keeps a spread of the stream, not just a prefix
        // or suffix.
        assert!(a.iter().any(|&f| f < 500));
        assert!(a.iter().any(|&f| f >= 500));
    }

    #[test]
    fn drain_restarts_the_reservoir() {
        let log: ObservationLog<u64> = ObservationLog::new(4, 7);
        for i in 0..100 {
            log.record(i, i);
        }
        let first = log.drain();
        for i in 0..100 {
            log.record(i, i);
        }
        let second = log.drain();
        assert_eq!(
            first.iter().map(|o| o.fingerprint).collect::<Vec<_>>(),
            second.iter().map(|o| o.fingerprint).collect::<Vec<_>>(),
            "a drained log behaves like a fresh one"
        );
    }

    #[test]
    fn record_execution_fingerprints_the_plan() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 3, 1);
        let log = ObservationLog::new(8, 0);
        for e in runner.run_workload(&queries, 5) {
            log.record_execution(e);
        }
        assert_eq!(log.len(), 3);
        for o in log.drain() {
            assert_eq!(o.fingerprint, plan_fingerprint(&o.payload.plan));
            assert!(o.payload.runtime_secs > 0.0);
        }
    }

    #[test]
    fn concurrent_recording_stays_bounded() {
        let log = std::sync::Arc::new(ObservationLog::<u64>::new(32, 5));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    log.record(t * 1000 + i, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.total_seen(), 2000);
        assert_eq!(log.len(), 32);
    }
}
