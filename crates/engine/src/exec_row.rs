//! Row-at-a-time reference executor.
//!
//! [`RowExecutor`] is the original `Vec<Vec<Value>>` execution strategy,
//! kept as the oracle the vectorized [`crate::Executor`] is checked
//! against: both must produce bit-identical aggregates, true cardinalities
//! and [`WorkMetrics`] for every plan (pinned by the `exec_equivalence`
//! property suite).  It shares the work-accounting helpers with the
//! batched executor — catalog-derived row widths
//! ([`crate::executor::row_width_bytes`]), the index heap-fetch cap
//! ([`crate::executor::index_heap_fetch_pages`]) and typed join keys
//! ([`crate::executor::typed_join_key`]) — so the bugfixes to those labels
//! apply to both strategies identically.

use crate::executor::{
    index_heap_fetch_pages, row_width_bytes, typed_join_key, ExecutedNode, QueryResult, WorkMetrics,
};
use crate::physical::{PhysOperator, PhysOperatorKind, PlanNode};
use std::collections::HashMap;
use zsdb_catalog::{ColumnId, ColumnRef, DataType, TableId, Value};
use zsdb_query::{AggFunc, Aggregate, Predicate};
use zsdb_storage::Database;

/// An intermediate relation flowing between operators.
struct Relation {
    columns: Vec<ColumnRef>,
    types: Vec<DataType>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    fn position(&self, column: ColumnRef) -> usize {
        self.columns
            .iter()
            .position(|c| *c == column)
            .unwrap_or_else(|| panic!("column {column} not present in intermediate relation"))
    }

    fn width_bytes(&self) -> u64 {
        row_width_bytes(&self.types)
    }
}

/// Row-at-a-time plan executor over one database (reference oracle for the
/// vectorized [`crate::Executor`]).
pub struct RowExecutor<'a> {
    db: &'a Database,
}

impl<'a> RowExecutor<'a> {
    /// Create an executor for the given database.
    pub fn new(db: &'a Database) -> Self {
        RowExecutor { db }
    }

    /// Execute a physical plan and return aggregate values plus the
    /// executed tree.  The plan's root must be an `Aggregate` operator (the
    /// optimizer always produces one).
    pub fn execute(&self, plan: &PlanNode) -> QueryResult {
        let (relation, node) = self.exec_node(plan);
        let aggregates = match &plan.op {
            PhysOperator::Aggregate { .. } => {
                // The aggregate values were computed by exec_node and stored
                // in the single output row.
                relation.rows.first().cloned().unwrap_or_default()
            }
            _ => Vec::new(),
        };
        QueryResult {
            aggregates,
            root: node,
        }
    }

    fn exec_node(&self, plan: &PlanNode) -> (Relation, ExecutedNode) {
        match &plan.op {
            PhysOperator::SeqScan { table, predicates } => {
                self.exec_seq_scan(plan, *table, predicates)
            }
            PhysOperator::IndexScan {
                table,
                index_column,
                lo,
                hi,
                residual,
            } => self.exec_index_scan(plan, *table, *index_column, *lo, *hi, residual),
            PhysOperator::HashJoin {
                build_key,
                probe_key,
            } => self.exec_hash_join(plan, *build_key, *probe_key),
            PhysOperator::NestedLoopJoin {
                outer_key,
                inner_key,
            } => self.exec_nested_loop(plan, *outer_key, *inner_key),
            PhysOperator::Aggregate { aggregates } => self.exec_aggregate(plan, aggregates),
        }
    }

    fn table_columns(&self, table: TableId) -> (Vec<ColumnRef>, Vec<DataType>) {
        let meta = self.db.catalog().table(table);
        (
            (0..meta.num_columns())
                .map(|i| ColumnRef::new(table, ColumnId(i as u32)))
                .collect(),
            meta.columns.iter().map(|c| c.data_type).collect(),
        )
    }

    fn exec_seq_scan(
        &self,
        plan: &PlanNode,
        table: TableId,
        predicates: &[Predicate],
    ) -> (Relation, ExecutedNode) {
        let data = self.db.table_data(table);
        let meta = self.db.catalog().table(table);
        let (columns, types) = self.table_columns(table);
        let mut rows = Vec::new();
        let mut predicate_evals = 0u64;
        for row in 0..data.num_rows() {
            let mut keep = true;
            for p in predicates {
                predicate_evals += 1;
                if !p.matches(data.value(row, p.column.column)) {
                    keep = false;
                    break;
                }
            }
            if keep {
                rows.push(data.row(row));
            }
        }
        let relation = Relation {
            columns,
            types,
            rows,
        };
        let work = WorkMetrics {
            input_tuples: data.num_rows() as u64,
            output_tuples: relation.rows.len() as u64,
            pages_seq: meta.num_pages(),
            predicate_evals,
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::SeqScan,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: Vec::new(),
        };
        (relation, node)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_index_scan(
        &self,
        plan: &PlanNode,
        table: TableId,
        index_column: ColumnRef,
        lo: Option<f64>,
        hi: Option<f64>,
        residual: &[Predicate],
    ) -> (Relation, ExecutedNode) {
        let index_id = self
            .db
            .index_on(index_column)
            .unwrap_or_else(|| panic!("index scan requires a physical index on {index_column}"));
        let index = self.db.index(index_id);
        let data = self.db.table_data(table);
        let meta = self.db.catalog().table(table);
        let (columns, types) = self.table_columns(table);

        let matched = index.range(lo, hi);
        let mut rows = Vec::new();
        let mut predicate_evals = 0u64;
        for &row in &matched {
            let row = row as usize;
            let mut keep = true;
            for p in residual {
                predicate_evals += 1;
                if !p.matches(data.value(row, p.column.column)) {
                    keep = false;
                    break;
                }
            }
            if keep {
                rows.push(data.row(row));
            }
        }
        let relation = Relation {
            columns,
            types,
            rows,
        };
        let work = WorkMetrics {
            input_tuples: matched.len() as u64,
            output_tuples: relation.rows.len() as u64,
            pages_random: index.height() as u64
                + index_heap_fetch_pages(matched.len() as u64, meta.num_tuples),
            index_entries: matched.len() as u64,
            predicate_evals,
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::IndexScan,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: Vec::new(),
        };
        (relation, node)
    }

    fn exec_hash_join(
        &self,
        plan: &PlanNode,
        build_key: ColumnRef,
        probe_key: ColumnRef,
    ) -> (Relation, ExecutedNode) {
        let (build_rel, build_node) = self.exec_node(&plan.children[0]);
        let (probe_rel, probe_node) = self.exec_node(&plan.children[1]);

        let build_pos = build_rel.position(build_key);
        let probe_pos = probe_rel.position(probe_key);

        let mut hash_table = HashMap::new();
        for (i, row) in build_rel.rows.iter().enumerate() {
            if let Some(key) = typed_join_key(&row[build_pos]) {
                hash_table.entry(key).or_insert_with(Vec::new).push(i);
            }
        }

        let mut columns = build_rel.columns.clone();
        columns.extend(probe_rel.columns.iter().copied());
        let mut types = build_rel.types.clone();
        types.extend(probe_rel.types.iter().copied());
        let mut rows = Vec::new();
        for probe_row in &probe_rel.rows {
            if let Some(key) = typed_join_key(&probe_row[probe_pos]) {
                if let Some(matches) = hash_table.get(&key) {
                    for &build_idx in matches {
                        let mut row = build_rel.rows[build_idx].clone();
                        row.extend(probe_row.iter().copied());
                        rows.push(row);
                    }
                }
            }
        }
        let relation = Relation {
            columns,
            types,
            rows,
        };
        let build_bytes = build_rel.rows.len() as u64 * (build_rel.width_bytes() + 16);
        let work = WorkMetrics {
            input_tuples: (build_rel.rows.len() + probe_rel.rows.len()) as u64,
            output_tuples: relation.rows.len() as u64,
            hash_build_tuples: build_rel.rows.len() as u64,
            hash_probe_tuples: probe_rel.rows.len() as u64,
            build_bytes,
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::HashJoin,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: vec![build_node, probe_node],
        };
        (relation, node)
    }

    fn exec_nested_loop(
        &self,
        plan: &PlanNode,
        outer_key: ColumnRef,
        inner_key: ColumnRef,
    ) -> (Relation, ExecutedNode) {
        let (outer_rel, outer_node) = self.exec_node(&plan.children[0]);
        let (inner_rel, inner_node) = self.exec_node(&plan.children[1]);

        let outer_pos = outer_rel.position(outer_key);
        let inner_pos = inner_rel.position(inner_key);

        let mut columns = outer_rel.columns.clone();
        columns.extend(inner_rel.columns.iter().copied());
        let mut types = outer_rel.types.clone();
        types.extend(inner_rel.types.iter().copied());
        let mut rows = Vec::new();
        let mut comparisons = 0u64;
        for outer_row in &outer_rel.rows {
            for inner_row in &inner_rel.rows {
                comparisons += 1;
                let matches = match (
                    typed_join_key(&outer_row[outer_pos]),
                    typed_join_key(&inner_row[inner_pos]),
                ) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                };
                if matches {
                    let mut row = outer_row.clone();
                    row.extend(inner_row.iter().copied());
                    rows.push(row);
                }
            }
        }
        let relation = Relation {
            columns,
            types,
            rows,
        };
        // The inner relation is rescanned once per outer tuple, so input
        // tuples are `outer + outer * inner`, not one pass over each side.
        let input_tuples =
            outer_rel.rows.len() as u64 + outer_rel.rows.len() as u64 * inner_rel.rows.len() as u64;
        let work = WorkMetrics {
            input_tuples,
            output_tuples: relation.rows.len() as u64,
            comparisons,
            build_bytes: inner_rel.rows.len() as u64 * inner_rel.width_bytes(),
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::NestedLoopJoin,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: vec![outer_node, inner_node],
        };
        (relation, node)
    }

    fn exec_aggregate(
        &self,
        plan: &PlanNode,
        aggregates: &[Aggregate],
    ) -> (Relation, ExecutedNode) {
        let (input, child_node) = self.exec_node(&plan.children[0]);
        let values: Vec<Value> = aggregates
            .iter()
            .map(|agg| compute_aggregate(&input, agg))
            .collect();
        let relation = Relation {
            columns: Vec::new(),
            types: Vec::new(),
            rows: vec![values],
        };
        let work = WorkMetrics {
            input_tuples: input.rows.len() as u64,
            output_tuples: 1,
            predicate_evals: input.rows.len() as u64 * aggregates.len() as u64,
            output_bytes: 8 * aggregates.len() as u64,
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::Aggregate,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: 1,
            output_width: plan.output_width,
            work,
            children: vec![child_node],
        };
        (relation, node)
    }
}

fn compute_aggregate(input: &Relation, agg: &Aggregate) -> Value {
    match agg.column {
        None => Value::Int(input.rows.len() as i64),
        Some(column) => {
            let pos = input.position(column);
            let values: Vec<f64> = input
                .rows
                .iter()
                .filter_map(|row| row[pos].as_f64())
                .collect();
            if values.is_empty() {
                return match agg.func {
                    AggFunc::Count => Value::Int(0),
                    _ => Value::Null,
                };
            }
            match agg.func {
                AggFunc::Count => Value::Int(values.len() as i64),
                AggFunc::Sum => Value::Float(values.iter().sum()),
                AggFunc::Avg => Value::Float(values.iter().sum::<f64>() / values.len() as f64),
                AggFunc::Min => Value::Float(values.iter().copied().fold(f64::INFINITY, f64::min)),
                AggFunc::Max => {
                    Value::Float(values.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::executor::Executor;
    use crate::optimizer::Optimizer;
    use zsdb_cardest::PostgresLikeEstimator;
    use zsdb_catalog::presets;
    use zsdb_query::{CmpOp, Query, WorkloadGenerator};

    fn imdb_db() -> Database {
        Database::generate(presets::imdb_like(0.02), 7)
    }

    fn run_row(db: &Database, q: &Query) -> QueryResult {
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(db, EngineConfig::default(), &est);
        let plan = optimizer.plan(q);
        RowExecutor::new(db).execute(&plan)
    }

    #[test]
    fn row_executor_counts_rows() {
        let db = imdb_db();
        let (title, meta) = db.catalog().table_by_name("title").unwrap();
        let result = run_row(&db, &Query::scan(title));
        assert_eq!(result.aggregates[0], Value::Int(meta.num_tuples as i64));
    }

    #[test]
    fn row_and_batched_agree_on_a_small_workload() {
        let db = imdb_db();
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let workload = WorkloadGenerator::with_defaults().generate(db.catalog(), 10, 3);
        for q in &workload {
            let plan = optimizer.plan(q);
            let row = RowExecutor::new(&db).execute(&plan);
            let batched = Executor::new(&db).execute(&plan);
            assert_eq!(row, batched, "executors diverged on {q:?}");
        }
    }

    #[test]
    fn nested_loop_input_tuples_account_rescans() {
        // Build a plan by hand: NLJ of two small seq scans.  The inner
        // relation is rescanned once per outer tuple.
        let db = imdb_db();
        let catalog = db.catalog();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let scan = |t| PlanNode {
            op: PhysOperator::SeqScan {
                table: t,
                predicates: vec![],
            },
            children: vec![],
            est_cardinality: 1.0,
            est_cost: 1.0,
            output_width: 8.0,
        };
        let plan = PlanNode {
            op: PhysOperator::NestedLoopJoin {
                outer_key: movie_id,
                inner_key: title_id,
            },
            children: vec![scan(mc), scan(title)],
            est_cardinality: 1.0,
            est_cost: 1.0,
            output_width: 16.0,
        };
        let result = RowExecutor::new(&db).execute(&plan);
        let nlj = &result.root;
        let outer = nlj.children[0].work.output_tuples;
        let inner = nlj.children[1].work.output_tuples;
        assert_eq!(nlj.work.input_tuples, outer + outer * inner);
        // Comparison semantics are unchanged: one per (outer, inner) pair.
        assert_eq!(nlj.work.comparisons, outer * inner);
        // And the batched executor agrees.
        let batched = Executor::new(&db).execute(&plan);
        assert_eq!(result, batched);
    }

    #[test]
    fn predicate_shortcircuit_counts_match_batched() {
        let db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let kind = db.catalog().resolve_column("title", "kind_id").unwrap();
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![
                Predicate::new(year, CmpOp::Gt, Value::Int(2005)),
                Predicate::new(kind, CmpOp::Eq, Value::Cat(1)),
            ],
            aggregates: vec![Aggregate::count_star()],
        };
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let plan = optimizer.plan(&q);
        let row = RowExecutor::new(&db).execute(&plan);
        let batched = Executor::new(&db).execute(&plan);
        assert_eq!(
            row.root.total_work().predicate_evals,
            batched.root.total_work().predicate_evals
        );
        assert_eq!(row, batched);
    }
}
