//! Observed query executions — the unit of training data.

use crate::executor::ExecutedNode;
use crate::physical::PlanNode;
use serde::{Deserialize, Serialize};
use zsdb_catalog::Value;
use zsdb_query::Query;

/// One executed query with everything the learned cost models may need:
/// the logical query, the chosen physical plan (with estimates), the
/// executed tree (with true cardinalities and work) and the simulated
/// runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryExecution {
    /// Name of the database the query ran on (diagnostics only; never used
    /// as a model feature).
    pub database: String,
    /// The logical query.
    pub query: Query,
    /// The optimizer's physical plan with estimated cardinalities/costs.
    pub plan: PlanNode,
    /// The executed plan with true cardinalities and work counters.
    pub executed: ExecutedNode,
    /// Aggregate results (for correctness checks in tests/examples).
    pub aggregates: Vec<Value>,
    /// Simulated runtime in seconds — the regression target.
    pub runtime_secs: f64,
}

impl QueryExecution {
    /// The optimizer's total estimated cost of the plan (planner units),
    /// used by the "Scaled Optimizer Cost" baseline.
    pub fn optimizer_cost(&self) -> f64 {
        self.plan.est_cost
    }

    /// Number of physical operators in the plan.
    pub fn num_operators(&self) -> usize {
        self.plan.size()
    }

    /// Largest true intermediate cardinality in the executed plan.
    pub fn max_true_cardinality(&self) -> u64 {
        self.executed
            .iter()
            .iter()
            .map(|n| n.actual_cardinality)
            .max()
            .unwrap_or(0)
    }

    /// Total work of the executed plan, summed over all operators.
    pub fn total_work(&self) -> crate::executor::WorkMetrics {
        self.executed.total_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::runner::QueryRunner;
    use crate::runtime::HardwareProfile;
    use zsdb_catalog::presets;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    #[test]
    fn execution_exposes_cost_and_size() {
        let db = Database::generate(presets::imdb_like(0.02), 1);
        let runner = QueryRunner::new(&db, EngineConfig::default(), HardwareProfile::default());
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 3, 0);
        let execution = runner.run(&queries[0], 0);
        assert!(execution.optimizer_cost() > 0.0);
        assert!(execution.num_operators() >= 2);
        assert!(execution.runtime_secs > 0.0);
        assert_eq!(execution.database, "imdb_like");
        assert!(execution.total_work().input_tuples > 0);
    }

    #[test]
    fn executions_serialize_roundtrip() {
        let db = Database::generate(presets::imdb_like(0.02), 1);
        let runner = QueryRunner::new(&db, EngineConfig::default(), HardwareProfile::default());
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 1, 5);
        let execution = runner.run(&queries[0], 0);
        let json = serde_json::to_string(&execution).expect("serialize");
        let back: QueryExecution = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(execution, back);
    }
}
