//! Cost-based query optimizer.
//!
//! A textbook System-R style optimizer: access-path selection per base
//! table (sequential vs. index scan), dynamic programming over connected
//! table subsets for the join order (bushy plans allowed), and physical
//! join selection (hash vs. nested loop) by estimated cost.  Cardinalities
//! come from a pluggable [`CardinalityEstimator`], which is how the
//! classical estimates reach both the plans and, later, the zero-shot
//! featurization.

use crate::config::EngineConfig;
use crate::cost::CostModel;
use crate::physical::{PhysOperator, PlanNode};
use zsdb_cardest::CardinalityEstimator;
use zsdb_catalog::{ColumnRef, TableId};
use zsdb_query::{CmpOp, Predicate, Query};
use zsdb_storage::Database;

/// Cost-based optimizer over one database.
pub struct Optimizer<'a, E: CardinalityEstimator> {
    db: &'a Database,
    estimator: &'a E,
    cost: CostModel,
    /// Extra columns to treat as indexed even though no physical index
    /// exists (hypothetical indexes for what-if planning).
    hypothetical_indexes: Vec<ColumnRef>,
}

impl<'a, E: CardinalityEstimator> Optimizer<'a, E> {
    /// Create an optimizer for `db` with the given configuration and
    /// cardinality estimator.
    pub fn new(db: &'a Database, config: EngineConfig, estimator: &'a E) -> Self {
        Optimizer {
            db,
            estimator,
            cost: CostModel::new(config),
            hypothetical_indexes: Vec::new(),
        }
    }

    /// Register a hypothetical index on `column`: the optimizer will plan
    /// as if that index existed ("what-if" mode).
    pub fn add_hypothetical_index(&mut self, column: ColumnRef) {
        if !self.hypothetical_indexes.contains(&column) {
            self.hypothetical_indexes.push(column);
        }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Produce the cheapest physical plan for `query`.
    ///
    /// The query must be valid for the database's catalog (checked by
    /// debug assertion) and reference at most 20 tables (bitmask limit,
    /// far above the 5-way joins used in the workloads).
    pub fn plan(&self, query: &Query) -> PlanNode {
        debug_assert!(query.validate(self.db.catalog()).is_ok());
        assert!(
            query.tables.len() <= 20,
            "join order DP supports at most 20 tables"
        );

        let n = query.tables.len();
        // best[mask] = cheapest plan joining exactly the tables in `mask`.
        let mut best: Vec<Option<PlanNode>> = vec![None; 1 << n];

        for (i, &table) in query.tables.iter().enumerate() {
            best[1 << i] = Some(self.best_access_path(query, table));
        }

        for mask in 1usize..(1 << n) {
            if mask.count_ones() < 2 {
                continue;
            }
            let mut best_for_mask: Option<PlanNode> = None;
            // Enumerate proper non-empty subsets of `mask`.
            let mut left = (mask - 1) & mask;
            while left > 0 {
                let right = mask ^ left;
                if left < right {
                    // Each split is considered once; build/probe choice is
                    // made inside `join_plans`.
                    left = (left - 1) & mask;
                    continue;
                }
                if let (Some(lp), Some(rp)) = (&best[left], &best[right]) {
                    if let Some(edge) = self.connecting_edge(query, left, right) {
                        let candidate = self.join_plans(query, mask, lp.clone(), rp.clone(), edge);
                        if best_for_mask
                            .as_ref()
                            .map(|b| candidate.est_cost < b.est_cost)
                            .unwrap_or(true)
                        {
                            best_for_mask = Some(candidate);
                        }
                    }
                }
                left = (left - 1) & mask;
            }
            best[mask] = best_for_mask;
        }

        let join_plan = best[(1 << n) - 1]
            .clone()
            .expect("query join graph is connected, so a full plan exists");

        // Scalar aggregation on top.
        let agg_cost = self
            .cost
            .aggregate(join_plan.est_cardinality, query.aggregates.len());
        PlanNode {
            est_cardinality: 1.0,
            est_cost: join_plan.est_cost + agg_cost,
            output_width: 8.0 * query.aggregates.len().max(1) as f64,
            op: PhysOperator::Aggregate {
                aggregates: query.aggregates.clone(),
            },
            children: vec![join_plan],
        }
    }

    /// Find a join condition connecting the two table subsets, if any.
    fn connecting_edge(
        &self,
        query: &Query,
        left_mask: usize,
        right_mask: usize,
    ) -> Option<zsdb_query::JoinCondition> {
        for join in &query.joins {
            let li = query.tables.iter().position(|t| *t == join.left.table)?;
            let ri = query.tables.iter().position(|t| *t == join.right.table)?;
            let l_in_left = left_mask & (1 << li) != 0;
            let r_in_left = left_mask & (1 << ri) != 0;
            let l_in_right = right_mask & (1 << li) != 0;
            let r_in_right = right_mask & (1 << ri) != 0;
            if (l_in_left && r_in_right) || (l_in_right && r_in_left) {
                return Some(*join);
            }
        }
        None
    }

    /// Cheapest physical join of two sub-plans along `edge`.
    fn join_plans(
        &self,
        query: &Query,
        mask: usize,
        left: PlanNode,
        right: PlanNode,
        edge: zsdb_query::JoinCondition,
    ) -> PlanNode {
        let tables: Vec<TableId> = query
            .tables
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, t)| *t)
            .collect();
        let out_card = self.estimator.subquery_cardinality(query, &tables).max(1.0);
        let out_width = left.output_width + right.output_width;

        // Keys per side: the edge column that belongs to a table scanned in
        // that subtree.
        let left_tables = left.scanned_tables();
        let (left_key, right_key) = if left_tables.contains(&edge.left.table) {
            (edge.left, edge.right)
        } else {
            (edge.right, edge.left)
        };

        // Hash join: build on the smaller side.
        let (build, probe, build_key, probe_key) = if left.est_cardinality <= right.est_cardinality
        {
            (left.clone(), right.clone(), left_key, right_key)
        } else {
            (right.clone(), left.clone(), right_key, left_key)
        };
        let hash_cost = build.est_cost
            + probe.est_cost
            + self
                .cost
                .hash_join(build.est_cardinality, probe.est_cardinality, out_card);
        let hash_plan = PlanNode {
            est_cardinality: out_card,
            est_cost: hash_cost,
            output_width: out_width,
            op: PhysOperator::HashJoin {
                build_key,
                probe_key,
            },
            children: vec![build, probe],
        };

        if !self.cost.config().enable_nested_loop {
            return hash_plan;
        }

        // Nested loop: outer = larger side, inner = smaller side (the inner
        // is materialised once by our executor).
        let (outer, inner, outer_key, inner_key) = if left.est_cardinality >= right.est_cardinality
        {
            (left, right, left_key, right_key)
        } else {
            (right, left, right_key, left_key)
        };
        let nl_cost = outer.est_cost
            + inner.est_cost
            + self
                .cost
                .nested_loop_join(outer.est_cardinality, inner.est_cardinality, out_card);
        if nl_cost < hash_plan.est_cost {
            PlanNode {
                est_cardinality: out_card,
                est_cost: nl_cost,
                output_width: out_width,
                op: PhysOperator::NestedLoopJoin {
                    outer_key,
                    inner_key,
                },
                children: vec![outer, inner],
            }
        } else {
            hash_plan
        }
    }

    /// Cheapest access path (sequential or index scan) for one base table.
    fn best_access_path(&self, query: &Query, table: TableId) -> PlanNode {
        let meta = self.db.catalog().table(table);
        let predicates: Vec<Predicate> = query
            .predicates
            .iter()
            .filter(|p| p.column.table == table)
            .copied()
            .collect();
        let est_rows = self
            .estimator
            .table_cardinality(table, &predicates)
            .max(1.0);
        let width = meta.row_width_bytes() as f64;
        let pages = meta.num_pages() as f64;

        let seq_cost = self
            .cost
            .seq_scan(pages, meta.num_tuples as f64, predicates.len());
        let mut best = PlanNode::leaf(
            PhysOperator::SeqScan {
                table,
                predicates: predicates.clone(),
            },
            est_rows,
            seq_cost,
            width,
        );

        if !self.cost.config().enable_index_scan {
            return best;
        }

        // Try an index scan driven by each sargable predicate on an indexed
        // (physically or hypothetically) column.
        for (i, p) in predicates.iter().enumerate() {
            if !self.has_index(p.column) {
                continue;
            }
            let Some((lo, hi)) = sargable_range(p) else {
                continue;
            };
            let driving_selectivity = self.estimator.predicate_selectivity(p).clamp(0.0, 1.0);
            let matched = (meta.num_tuples as f64 * driving_selectivity).max(1.0);
            let mut residual = predicates.clone();
            residual.remove(i);
            let height = self
                .db
                .index_on(p.column)
                .map(|id| self.db.index(id).height() as f64)
                .unwrap_or_else(|| hypothetical_index_height(meta.num_tuples));
            let idx_cost = self.cost.index_scan(
                height,
                matched,
                meta.num_tuples as f64,
                pages,
                residual.len(),
            );
            if idx_cost < best.est_cost {
                best = PlanNode::leaf(
                    PhysOperator::IndexScan {
                        table,
                        index_column: p.column,
                        lo,
                        hi,
                        residual,
                    },
                    est_rows,
                    idx_cost,
                    width,
                );
            }
        }
        best
    }

    /// Whether a physical or hypothetical index exists on `column`.
    fn has_index(&self, column: ColumnRef) -> bool {
        self.db.index_on(column).is_some() || self.hypothetical_indexes.contains(&column)
    }
}

/// Estimated height of a B-tree index over `rows` entries that does not
/// physically exist yet (hypothetical what-if indexes): ~512 entries per
/// leaf page and a fan-out of 256 for inner nodes, matching
/// `zsdb_storage::BTreeIndex::height`.
fn hypothetical_index_height(rows: u64) -> f64 {
    let mut nodes = (rows as f64 / 512.0).ceil().max(1.0);
    let mut height = 1.0;
    while nodes > 1.0 {
        nodes = (nodes / 256.0).ceil();
        height += 1.0;
    }
    height
}

/// Key range implied by a sargable predicate, or `None` if the predicate
/// cannot drive an index scan (`<>` cannot).
fn sargable_range(p: &Predicate) -> Option<(Option<f64>, Option<f64>)> {
    let v = p.value.as_f64()?;
    match p.op {
        CmpOp::Eq => Some((Some(v), Some(v))),
        CmpOp::Lt | CmpOp::Leq => Some((None, Some(v))),
        CmpOp::Gt | CmpOp::Geq => Some((Some(v), None)),
        CmpOp::Neq => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysOperatorKind;
    use zsdb_cardest::PostgresLikeEstimator;
    use zsdb_catalog::{presets, Value};
    use zsdb_query::{Aggregate, JoinCondition, WorkloadGenerator};

    fn imdb_db() -> Database {
        Database::generate(presets::imdb_like(0.02), 5)
    }

    fn two_way_query(db: &Database) -> Query {
        let catalog = db.catalog();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let year = catalog.resolve_column("title", "production_year").unwrap();
        Query {
            tables: vec![title, mc],
            joins: vec![JoinCondition::new(movie_id, title_id)],
            predicates: vec![Predicate::new(year, CmpOp::Gt, Value::Int(2010))],
            aggregates: vec![Aggregate::count_star()],
        }
    }

    #[test]
    fn plans_have_aggregate_root_and_all_scans() {
        let db = imdb_db();
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let workload = WorkloadGenerator::with_defaults().generate(db.catalog(), 50, 1);
        for q in &workload {
            let plan = optimizer.plan(q);
            assert_eq!(plan.op.kind(), PhysOperatorKind::Aggregate);
            assert_eq!(plan.scanned_tables().len(), q.num_tables());
            assert!(plan.est_cost.is_finite() && plan.est_cost > 0.0);
        }
    }

    #[test]
    fn join_count_matches_tables() {
        let db = imdb_db();
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let q = two_way_query(&db);
        let plan = optimizer.plan(&q);
        let joins = plan
            .iter()
            .filter(|n| {
                matches!(
                    n.op.kind(),
                    PhysOperatorKind::HashJoin | PhysOperatorKind::NestedLoopJoin
                )
            })
            .count();
        assert_eq!(joins, 1);
    }

    #[test]
    fn index_scan_chosen_for_selective_indexed_predicate() {
        let mut db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        db.create_index(year);
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);

        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Gt, Value::Int(2018))],
            aggregates: vec![Aggregate::count_star()],
        };
        let plan = optimizer.plan(&q);
        let has_index_scan = plan
            .iter()
            .any(|n| n.op.kind() == PhysOperatorKind::IndexScan);
        assert!(has_index_scan, "{}", plan.explain());
    }

    #[test]
    fn hypothetical_index_changes_plan_without_physical_index() {
        let db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Gt, Value::Int(2018))],
            aggregates: vec![Aggregate::count_star()],
        };

        let plain = Optimizer::new(&db, EngineConfig::default(), &est).plan(&q);
        assert!(plain
            .iter()
            .all(|n| n.op.kind() != PhysOperatorKind::IndexScan));

        let mut whatif = Optimizer::new(&db, EngineConfig::default(), &est);
        whatif.add_hypothetical_index(year);
        let plan = whatif.plan(&q);
        assert!(plan
            .iter()
            .any(|n| n.op.kind() == PhysOperatorKind::IndexScan));
    }

    #[test]
    fn disabling_index_scans_forces_seq_scan() {
        let mut db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        db.create_index(year);
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let config = EngineConfig::default().without_indexes();
        let optimizer = Optimizer::new(&db, config, &est);
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Gt, Value::Int(2018))],
            aggregates: vec![Aggregate::count_star()],
        };
        let plan = optimizer.plan(&q);
        assert!(plan
            .iter()
            .all(|n| n.op.kind() != PhysOperatorKind::IndexScan));
    }

    #[test]
    fn five_way_joins_plan_quickly() {
        let db = imdb_db();
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(&db, EngineConfig::default(), &est);
        let spec = zsdb_query::WorkloadSpec {
            max_tables: 5,
            ..Default::default()
        };
        let workload = WorkloadGenerator::new(spec).generate(db.catalog(), 20, 9);
        for q in workload.iter().filter(|q| q.num_tables() >= 4) {
            let plan = optimizer.plan(q);
            assert!(plan.size() >= q.num_tables() * 2 - 1);
        }
    }

    #[test]
    fn sargable_ranges() {
        let db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let eq = Predicate::new(year, CmpOp::Eq, Value::Int(2000));
        assert_eq!(sargable_range(&eq), Some((Some(2000.0), Some(2000.0))));
        let lt = Predicate::new(year, CmpOp::Lt, Value::Int(2000));
        assert_eq!(sargable_range(&lt), Some((None, Some(2000.0))));
        let neq = Predicate::new(year, CmpOp::Neq, Value::Int(2000));
        assert_eq!(sargable_range(&neq), None);
    }
}
