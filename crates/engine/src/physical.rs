//! Physical query plans.
//!
//! A [`PlanNode`] is a tree of physical operators annotated with the
//! optimizer's estimated cardinality, cost and output width.  The
//! zero-shot featurization consumes exactly these physical operators (not
//! the logical query), mirroring the paper's "each node in this graph
//! represents a physical operator" design.

use serde::{Deserialize, Serialize};
use zsdb_catalog::{ColumnRef, TableId};
use zsdb_query::{Aggregate, Predicate};

/// Kind of a physical operator, used for one-hot featurization and
/// reporting.  Must stay in sync with [`PhysOperator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysOperatorKind {
    /// Full sequential scan of a base table.
    SeqScan,
    /// Range/point scan over a B-tree index plus heap lookups.
    IndexScan,
    /// Hash join (children: `[build, probe]`).
    HashJoin,
    /// Nested-loop join (children: `[outer, inner]`).
    NestedLoopJoin,
    /// Scalar aggregation over its single child.
    Aggregate,
}

impl PhysOperatorKind {
    /// All operator kinds in the canonical one-hot order.
    pub const ALL: [PhysOperatorKind; 5] = [
        PhysOperatorKind::SeqScan,
        PhysOperatorKind::IndexScan,
        PhysOperatorKind::HashJoin,
        PhysOperatorKind::NestedLoopJoin,
        PhysOperatorKind::Aggregate,
    ];

    /// Stable index for one-hot encodings.
    pub fn index(self) -> usize {
        match self {
            PhysOperatorKind::SeqScan => 0,
            PhysOperatorKind::IndexScan => 1,
            PhysOperatorKind::HashJoin => 2,
            PhysOperatorKind::NestedLoopJoin => 3,
            PhysOperatorKind::Aggregate => 4,
        }
    }

    /// Short display name (PostgreSQL-style).
    pub fn name(self) -> &'static str {
        match self {
            PhysOperatorKind::SeqScan => "Seq Scan",
            PhysOperatorKind::IndexScan => "Index Scan",
            PhysOperatorKind::HashJoin => "Hash Join",
            PhysOperatorKind::NestedLoopJoin => "Nested Loop",
            PhysOperatorKind::Aggregate => "Aggregate",
        }
    }
}

/// A physical operator with its parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysOperator {
    /// Sequential scan with pushed-down predicates.
    SeqScan {
        /// Scanned table.
        table: TableId,
        /// Predicates evaluated during the scan.
        predicates: Vec<Predicate>,
    },
    /// Index scan on `index_column` with an optional key range, followed by
    /// residual predicate evaluation on fetched heap tuples.
    IndexScan {
        /// Scanned table.
        table: TableId,
        /// Indexed column driving the scan.
        index_column: ColumnRef,
        /// Lower key bound (inclusive).
        lo: Option<f64>,
        /// Upper key bound (inclusive).
        hi: Option<f64>,
        /// Predicates evaluated on fetched tuples (includes non-sargable
        /// ones and re-checks).
        residual: Vec<Predicate>,
    },
    /// Hash join; children are `[build, probe]`.
    HashJoin {
        /// Join key on the build (first child) side.
        build_key: ColumnRef,
        /// Join key on the probe (second child) side.
        probe_key: ColumnRef,
    },
    /// Nested-loop join; children are `[outer, inner]`.
    NestedLoopJoin {
        /// Join key on the outer (first child) side.
        outer_key: ColumnRef,
        /// Join key on the inner (second child) side.
        inner_key: ColumnRef,
    },
    /// Scalar aggregation (no grouping) over the single child.
    Aggregate {
        /// Aggregates to compute.
        aggregates: Vec<Aggregate>,
    },
}

impl PhysOperator {
    /// The operator kind (for featurization and display).
    pub fn kind(&self) -> PhysOperatorKind {
        match self {
            PhysOperator::SeqScan { .. } => PhysOperatorKind::SeqScan,
            PhysOperator::IndexScan { .. } => PhysOperatorKind::IndexScan,
            PhysOperator::HashJoin { .. } => PhysOperatorKind::HashJoin,
            PhysOperator::NestedLoopJoin { .. } => PhysOperatorKind::NestedLoopJoin,
            PhysOperator::Aggregate { .. } => PhysOperatorKind::Aggregate,
        }
    }

    /// The base table scanned by this operator, if it is a scan.
    pub fn scanned_table(&self) -> Option<TableId> {
        match self {
            PhysOperator::SeqScan { table, .. } | PhysOperator::IndexScan { table, .. } => {
                Some(*table)
            }
            _ => None,
        }
    }

    /// Predicates evaluated by this operator (scans only).
    pub fn predicates(&self) -> &[Predicate] {
        match self {
            PhysOperator::SeqScan { predicates, .. } => predicates,
            PhysOperator::IndexScan { residual, .. } => residual,
            _ => &[],
        }
    }
}

/// A node of a physical plan tree with optimizer annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// The physical operator.
    pub op: PhysOperator,
    /// Child plans (see the operator variants for ordering conventions).
    pub children: Vec<PlanNode>,
    /// Optimizer-estimated output cardinality.
    pub est_cardinality: f64,
    /// Optimizer-estimated total cost of the subtree (planner units).
    pub est_cost: f64,
    /// Output tuple width in bytes.
    pub output_width: f64,
}

impl PlanNode {
    /// Create a leaf node.
    pub fn leaf(op: PhysOperator, est_cardinality: f64, est_cost: f64, output_width: f64) -> Self {
        PlanNode {
            op,
            children: Vec::new(),
            est_cardinality,
            est_cost,
            output_width,
        }
    }

    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(PlanNode::depth).max().unwrap_or(0)
    }

    /// Pre-order iterator over all nodes of the subtree.
    pub fn iter(&self) -> PlanIter<'_> {
        PlanIter { stack: vec![self] }
    }

    /// All base tables scanned anywhere in the subtree.
    pub fn scanned_tables(&self) -> Vec<TableId> {
        let mut tables: Vec<TableId> = self.iter().filter_map(|n| n.op.scanned_table()).collect();
        tables.sort();
        tables.dedup();
        tables
    }

    /// Render the plan as an indented EXPLAIN-style string.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{:indent$}{} (rows={:.0} cost={:.1} width={:.0})",
            "",
            self.op.kind().name(),
            self.est_cardinality,
            self.est_cost,
            self.output_width,
            indent = indent * 2
        );
        for child in &self.children {
            child.explain_into(out, indent + 1);
        }
    }
}

/// Pre-order iterator over plan nodes.
pub struct PlanIter<'a> {
    stack: Vec<&'a PlanNode>,
}

impl<'a> Iterator for PlanIter<'a> {
    type Item = &'a PlanNode;

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        for child in node.children.iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{ColumnId, TableId};

    fn sample_plan() -> PlanNode {
        let t0 = TableId(0);
        let t1 = TableId(1);
        let scan0 = PlanNode::leaf(
            PhysOperator::SeqScan {
                table: t0,
                predicates: vec![],
            },
            100.0,
            10.0,
            40.0,
        );
        let scan1 = PlanNode::leaf(
            PhysOperator::SeqScan {
                table: t1,
                predicates: vec![],
            },
            1000.0,
            100.0,
            32.0,
        );
        let join = PlanNode {
            op: PhysOperator::HashJoin {
                build_key: ColumnRef::new(t0, ColumnId(0)),
                probe_key: ColumnRef::new(t1, ColumnId(1)),
            },
            children: vec![scan0, scan1],
            est_cardinality: 1000.0,
            est_cost: 250.0,
            output_width: 72.0,
        };
        PlanNode {
            op: PhysOperator::Aggregate {
                aggregates: vec![zsdb_query::Aggregate::count_star()],
            },
            children: vec![join],
            est_cardinality: 1.0,
            est_cost: 260.0,
            output_width: 8.0,
        }
    }

    #[test]
    fn kind_indices_are_stable() {
        for (i, kind) in PhysOperatorKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn tree_metrics() {
        let plan = sample_plan();
        assert_eq!(plan.size(), 4);
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.iter().count(), 4);
        assert_eq!(plan.scanned_tables(), vec![TableId(0), TableId(1)]);
    }

    #[test]
    fn explain_renders_every_node() {
        let plan = sample_plan();
        let text = plan.explain();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Hash Join"));
        assert_eq!(text.matches("Seq Scan").count(), 2);
    }

    #[test]
    fn operator_helpers() {
        let plan = sample_plan();
        assert_eq!(plan.op.kind(), PhysOperatorKind::Aggregate);
        assert!(plan.op.scanned_table().is_none());
        let scan = &plan.children[0].children[0];
        assert_eq!(scan.op.scanned_table(), Some(TableId(0)));
        assert!(scan.op.predicates().is_empty());
    }
}
