//! "What-if" index planning and ground-truth evaluation (paper §4.1).
//!
//! A zero-shot cost model in what-if mode must answer "how long would this
//! query take *if* an index on column X existed?".  Two pieces are needed:
//!
//! 1. [`WhatIfPlanner::plan_with_index`] — produce the physical plan the
//!    optimizer would choose if the index existed (a *hypothetical* index;
//!    nothing is built).  This plan is what the learned model featurizes.
//! 2. [`WhatIfPlanner::ground_truth_with_index`] — actually build the
//!    index, execute and time the query, then restore the database.  This
//!    provides the label for evaluating what-if predictions.

use crate::config::EngineConfig;
use crate::observed::QueryExecution;
use crate::optimizer::Optimizer;
use crate::physical::PlanNode;
use crate::runner::QueryRunner;
use crate::runtime::HardwareProfile;
use zsdb_cardest::PostgresLikeEstimator;
use zsdb_catalog::ColumnRef;
use zsdb_query::Query;
use zsdb_storage::Database;

/// Plans and evaluates hypothetical-index scenarios.
#[derive(Debug, Clone)]
pub struct WhatIfPlanner {
    config: EngineConfig,
    profile: HardwareProfile,
}

impl WhatIfPlanner {
    /// Create a what-if planner with the given configuration and hardware
    /// profile.
    pub fn new(config: EngineConfig, profile: HardwareProfile) -> Self {
        WhatIfPlanner { config, profile }
    }

    /// Planner with default configuration.
    pub fn with_defaults() -> Self {
        WhatIfPlanner::new(EngineConfig::default(), HardwareProfile::default())
    }

    /// The plan the optimizer would pick if an index on `column` existed.
    /// No index is physically created.
    pub fn plan_with_index(&self, db: &Database, query: &Query, column: ColumnRef) -> PlanNode {
        let estimator = PostgresLikeEstimator::new(db.catalog().clone());
        let mut optimizer = Optimizer::new(db, self.config.clone(), &estimator);
        optimizer.add_hypothetical_index(column);
        optimizer.plan(query)
    }

    /// Ground truth for a what-if scenario: temporarily build the index,
    /// run the query (so index scans really execute against it), and drop
    /// the index again if it did not exist before.
    pub fn ground_truth_with_index(
        &self,
        db: &mut Database,
        query: &Query,
        column: ColumnRef,
        noise_seed: u64,
    ) -> QueryExecution {
        let existed = db.index_on(column).is_some();
        db.create_index(column);
        let execution = {
            let runner = QueryRunner::new(db, self.config.clone(), self.profile.clone());
            runner.run(query, noise_seed)
        };
        if !existed {
            db.drop_index(column);
        }
        execution
    }

    /// Pick, for each query, a "random but fixed" candidate index column
    /// from the columns the query filters on — mirroring the paper's index
    /// what-if evaluation ("randomly selected attributes of queries").
    /// Queries without filter predicates yield `None`.
    pub fn candidate_index_column(query: &Query, pick_seed: u64) -> Option<ColumnRef> {
        if query.predicates.is_empty() {
            return None;
        }
        let idx = (pick_seed as usize) % query.predicates.len();
        Some(query.predicates[idx].column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysOperatorKind;
    use zsdb_catalog::{presets, Value};
    use zsdb_query::{Aggregate, CmpOp, Predicate};

    fn selective_query(db: &Database) -> (Query, ColumnRef) {
        let catalog = db.catalog();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let year = catalog.resolve_column("title", "production_year").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Geq, Value::Int(2018))],
            aggregates: vec![Aggregate::count_star()],
        };
        (q, year)
    }

    #[test]
    fn hypothetical_plan_uses_index_scan() {
        let db = Database::generate(presets::imdb_like(0.02), 7);
        let (query, column) = selective_query(&db);
        let planner = WhatIfPlanner::with_defaults();
        let plan = planner.plan_with_index(&db, &query, column);
        assert!(plan
            .iter()
            .any(|n| n.op.kind() == PhysOperatorKind::IndexScan));
        // And the database has not changed.
        assert!(db.indexes().is_empty());
    }

    #[test]
    fn ground_truth_restores_database_state() {
        let mut db = Database::generate(presets::imdb_like(0.02), 7);
        let (query, column) = selective_query(&db);
        let planner = WhatIfPlanner::with_defaults();
        let execution = planner.ground_truth_with_index(&mut db, &query, column, 3);
        assert!(execution.runtime_secs > 0.0);
        assert!(
            execution
                .executed
                .iter()
                .iter()
                .any(|n| n.kind == PhysOperatorKind::IndexScan),
            "ground truth execution should have used the index"
        );
        assert!(
            db.index_on(column).is_none(),
            "temporary index must be dropped"
        );
    }

    #[test]
    fn index_speeds_up_selective_queries() {
        let mut db = Database::generate(presets::imdb_like(0.3), 7);
        let catalog = db.catalog();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let year = catalog.resolve_column("title", "production_year").unwrap();
        // A point predicate on the tail of the year distribution is highly
        // selective, so an index scan should clearly win over a seq scan.
        let query = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Eq, Value::Int(2019))],
            aggregates: vec![Aggregate::count_star()],
        };
        let column = year;
        let profile = HardwareProfile::default().noiseless();
        let planner = WhatIfPlanner::new(EngineConfig::default(), profile.clone());
        let baseline = QueryRunner::new(&db, EngineConfig::default(), profile).run(&query, 0);
        let with_index = planner.ground_truth_with_index(&mut db, &query, column, 0);
        assert!(
            with_index.runtime_secs < baseline.runtime_secs,
            "index {:.6}s should beat seq scan {:.6}s",
            with_index.runtime_secs,
            baseline.runtime_secs
        );
    }

    #[test]
    fn candidate_column_comes_from_predicates() {
        let db = Database::generate(presets::imdb_like(0.02), 7);
        let (query, column) = selective_query(&db);
        assert_eq!(
            WhatIfPlanner::candidate_index_column(&query, 0),
            Some(column)
        );
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        assert_eq!(
            WhatIfPlanner::candidate_index_column(&Query::scan(title), 1),
            None
        );
    }
}
