//! Classical optimizer cost model.
//!
//! The formulas follow PostgreSQL's planner closely enough that the "Scaled
//! Optimizer Cost" baseline of the paper (a linear model mapping planner
//! cost to runtime) is meaningful: sequential pages, random pages, per-tuple
//! CPU and per-operator CPU terms.  These costs drive plan selection in the
//! [`crate::Optimizer`] and are also recorded on every plan node so learned
//! models can use them as features if desired.

use crate::config::EngineConfig;
use serde::{Deserialize, Serialize};

/// Cost model over an [`EngineConfig`]'s planner constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    config: EngineConfig,
}

impl CostModel {
    /// Create a cost model from planner constants.
    pub fn new(config: EngineConfig) -> Self {
        CostModel { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cost of a sequential scan over `pages` pages producing `rows` tuples
    /// with `num_predicates` predicates evaluated per tuple.
    pub fn seq_scan(&self, pages: f64, rows: f64, num_predicates: usize) -> f64 {
        let c = &self.config;
        pages * c.seq_page_cost
            + rows * c.cpu_tuple_cost
            + rows * num_predicates as f64 * c.cpu_operator_cost
    }

    /// Cost of an index scan returning `matched_rows` of a table with
    /// `table_rows` rows over `table_pages` heap pages, via an index of the
    /// given height, with `num_residual` residual predicates.
    pub fn index_scan(
        &self,
        index_height: f64,
        matched_rows: f64,
        table_rows: f64,
        table_pages: f64,
        num_residual: usize,
    ) -> f64 {
        let c = &self.config;
        let selectivity = if table_rows > 0.0 {
            (matched_rows / table_rows).clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Heap fetches: uncorrelated index order → up to one random page per
        // matched row, capped at touching every heap page once.
        let heap_pages = (matched_rows).min(table_pages.max(1.0) * selectivity.max(1e-3) + 1.0);
        index_height * c.random_page_cost
            + matched_rows * c.cpu_index_tuple_cost
            + heap_pages * c.random_page_cost
            + matched_rows * c.cpu_tuple_cost
            + matched_rows * num_residual as f64 * c.cpu_operator_cost
    }

    /// Incremental cost of a hash join with the given input/output sizes
    /// (child costs are added by the caller).
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, output_rows: f64) -> f64 {
        let c = &self.config;
        // Building the table costs ~1.5 operator evaluations per tuple
        // (hashing + insertion), probing one hash evaluation per tuple.
        build_rows * c.cpu_operator_cost * 1.5
            + probe_rows * c.cpu_operator_cost
            + output_rows * c.cpu_tuple_cost
    }

    /// Incremental cost of a nested-loop join.
    pub fn nested_loop_join(&self, outer_rows: f64, inner_rows: f64, output_rows: f64) -> f64 {
        let c = &self.config;
        outer_rows * inner_rows * c.cpu_operator_cost + output_rows * c.cpu_tuple_cost
    }

    /// Incremental cost of scalar aggregation.
    pub fn aggregate(&self, input_rows: f64, num_aggregates: usize) -> f64 {
        let c = &self.config;
        input_rows * num_aggregates.max(1) as f64 * c.cpu_operator_cost + c.cpu_tuple_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(EngineConfig::default())
    }

    #[test]
    fn seq_scan_scales_with_pages_and_rows() {
        let m = model();
        let small = m.seq_scan(10.0, 1_000.0, 1);
        let large = m.seq_scan(100.0, 10_000.0, 1);
        assert!(large > small * 5.0);
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_predicates() {
        let m = model();
        let table_rows = 1_000_000.0;
        let table_pages = 10_000.0;
        let seq = m.seq_scan(table_pages, table_rows, 1);
        let idx = m.index_scan(3.0, 100.0, table_rows, table_pages, 0);
        assert!(idx < seq, "selective index scan should win: {idx} vs {seq}");
    }

    #[test]
    fn seq_scan_beats_index_scan_for_unselective_predicates() {
        let m = model();
        let table_rows = 100_000.0;
        let table_pages = 1_000.0;
        let seq = m.seq_scan(table_pages, table_rows, 1);
        let idx = m.index_scan(3.0, 90_000.0, table_rows, table_pages, 1);
        assert!(
            seq < idx,
            "unselective index scan should lose: {seq} vs {idx}"
        );
    }

    #[test]
    fn hash_join_beats_nested_loop_for_large_inputs() {
        let m = model();
        let hash = m.hash_join(10_000.0, 100_000.0, 100_000.0);
        let nl = m.nested_loop_join(10_000.0, 100_000.0, 100_000.0);
        assert!(hash < nl);
    }

    #[test]
    fn nested_loop_wins_for_tiny_inner() {
        let m = model();
        let hash = m.hash_join(2.0, 10.0, 10.0);
        let nl = m.nested_loop_join(10.0, 2.0, 10.0);
        assert!(
            nl <= hash * 2.0,
            "nl {nl} should be competitive with hash {hash}"
        );
    }

    #[test]
    fn aggregate_cost_is_positive_and_monotone() {
        let m = model();
        assert!(m.aggregate(0.0, 1) > 0.0);
        assert!(m.aggregate(1_000.0, 3) > m.aggregate(1_000.0, 1));
    }
}
