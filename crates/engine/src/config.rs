//! Engine configuration ("knobs").
//!
//! The cost constants mirror PostgreSQL's planner parameters; the memory
//! budget plays the role of `work_mem` and drives the spill behaviour of
//! the runtime simulator.  Exposing them as a struct keeps the door open
//! for the knob-tuning extension discussed in Section 4.1 of the paper.

use serde::{Deserialize, Serialize};

/// Planner and execution configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Cost of reading one page sequentially (planner units).
    pub seq_page_cost: f64,
    /// Cost of reading one page randomly (planner units).
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of evaluating one operator/predicate.
    pub cpu_operator_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// Memory budget per operator in bytes (`work_mem`); hash tables larger
    /// than this are considered spilled by the runtime simulator.
    pub work_mem_bytes: u64,
    /// Whether the optimizer may pick index scans.
    pub enable_index_scan: bool,
    /// Whether the optimizer may pick nested-loop joins.
    pub enable_nested_loop: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            cpu_index_tuple_cost: 0.005,
            work_mem_bytes: 4 * 1024 * 1024,
            enable_index_scan: true,
            enable_nested_loop: true,
        }
    }
}

impl EngineConfig {
    /// Configuration with index scans disabled (used to contrast what-if
    /// scenarios).
    pub fn without_indexes(mut self) -> Self {
        self.enable_index_scan = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_postgres() {
        let c = EngineConfig::default();
        assert_eq!(c.seq_page_cost, 1.0);
        assert_eq!(c.random_page_cost, 4.0);
        assert!(c.enable_index_scan);
        assert!(c.work_mem_bytes > 0);
    }

    #[test]
    fn without_indexes_flips_flag() {
        let c = EngineConfig::default().without_indexes();
        assert!(!c.enable_index_scan);
        assert!(c.enable_nested_loop);
    }
}
