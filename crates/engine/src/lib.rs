//! # zsdb-engine
//!
//! A single-node analytical query engine over the `zsdb-storage` column
//! store: physical plans, a classical cost-based optimizer, an executor
//! that records *work counters* and true per-operator cardinalities, and a
//! runtime simulator that converts work into wall-clock-like runtimes.
//!
//! ## Why a simulator?
//!
//! The paper collects training data by running workloads on PostgreSQL and
//! measuring real runtimes.  This workspace has no Postgres testbed, so the
//! executor counts the work every operator performs (tuples scanned, pages
//! read sequentially/randomly, hash builds and probes, comparisons, bytes
//! materialised) and [`runtime::HardwareProfile`] maps that work to seconds
//! using hidden per-operation constants, memory-hierarchy effects (hash
//! tables spilling past the cache budget) and multiplicative noise.  The
//! learned models never see the profile — they must infer the mapping from
//! (plan structure, cardinalities, widths) to runtime, which is exactly the
//! learning problem of the paper.
//!
//! The main entry point is [`runner::QueryRunner`], which optimizes,
//! executes and times a logical query and returns a [`QueryExecution`] —
//! the unit of training data for all learned cost models in the workspace.
//!
//! ## Two execution strategies, one label contract
//!
//! Plans execute **batch-at-a-time** over the column store
//! ([`executor::Executor`], the production path driving corpus
//! generation) or **row-at-a-time** ([`exec_row::RowExecutor`], the
//! reference oracle).  Both produce bit-identical aggregates, true
//! cardinalities and work metrics, so training labels are independent of
//! the execution strategy that recorded them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod exec_row;
pub mod executor;
pub mod fingerprint;
pub mod observation;
pub mod observed;
pub mod optimizer;
pub mod physical;
pub mod runner;
pub mod runtime;
pub mod whatif;

pub use config::EngineConfig;
pub use cost::CostModel;
pub use exec_row::RowExecutor;
pub use executor::{ColumnBatch, ExecutedNode, Executor, QueryResult, WorkMetrics, BATCH_ROWS};
pub use fingerprint::plan_fingerprint;
pub use observation::{Observation, ObservationLog};
pub use observed::QueryExecution;
pub use optimizer::Optimizer;
pub use physical::{PhysOperator, PhysOperatorKind, PlanNode};
pub use runner::QueryRunner;
pub use runtime::HardwareProfile;
pub use whatif::WhatIfPlanner;
