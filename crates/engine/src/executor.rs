//! Plan execution with work accounting.
//!
//! The executor evaluates a physical plan against the column store and
//! records, per operator, both the *true* output cardinality and a set of
//! [`WorkMetrics`] (tuples, pages, probes, comparisons, bytes).  True
//! cardinalities feed the zero-shot model's "exact cardinalities" variant;
//! the work metrics feed the runtime simulator.

use crate::physical::{PhysOperator, PhysOperatorKind, PlanNode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use zsdb_catalog::{ColumnId, ColumnRef, TableId, Value, PAGE_SIZE_BYTES};
use zsdb_query::{AggFunc, Aggregate, Predicate};
use zsdb_storage::Database;

/// Work performed by one operator during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkMetrics {
    /// Tuples read from children (or from the base table for scans).
    pub input_tuples: u64,
    /// Tuples produced.
    pub output_tuples: u64,
    /// Heap pages read sequentially.
    pub pages_seq: u64,
    /// Pages read with random access (index pages and heap fetches).
    pub pages_random: u64,
    /// Index entries touched.
    pub index_entries: u64,
    /// Tuples inserted into a hash table.
    pub hash_build_tuples: u64,
    /// Hash table probes performed.
    pub hash_probe_tuples: u64,
    /// Key comparisons (nested-loop joins).
    pub comparisons: u64,
    /// Predicate evaluations.
    pub predicate_evals: u64,
    /// Bytes held in the operator's hash table / state.
    pub build_bytes: u64,
    /// Bytes of produced tuples.
    pub output_bytes: u64,
}

impl WorkMetrics {
    /// Element-wise sum of two work metrics (used for aggregating over a
    /// plan or a workload).
    pub fn add(&self, other: &WorkMetrics) -> WorkMetrics {
        WorkMetrics {
            input_tuples: self.input_tuples + other.input_tuples,
            output_tuples: self.output_tuples + other.output_tuples,
            pages_seq: self.pages_seq + other.pages_seq,
            pages_random: self.pages_random + other.pages_random,
            index_entries: self.index_entries + other.index_entries,
            hash_build_tuples: self.hash_build_tuples + other.hash_build_tuples,
            hash_probe_tuples: self.hash_probe_tuples + other.hash_probe_tuples,
            comparisons: self.comparisons + other.comparisons,
            predicate_evals: self.predicate_evals + other.predicate_evals,
            build_bytes: self.build_bytes + other.build_bytes,
            output_bytes: self.output_bytes + other.output_bytes,
        }
    }
}

/// A plan node annotated with execution results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutedNode {
    /// Operator kind.
    pub kind: PhysOperatorKind,
    /// Optimizer-estimated cardinality (copied from the plan).
    pub est_cardinality: f64,
    /// True output cardinality observed during execution.
    pub actual_cardinality: u64,
    /// Output tuple width in bytes (copied from the plan).
    pub output_width: f64,
    /// Work performed by this operator alone (not including children).
    pub work: WorkMetrics,
    /// Executed children, in the same order as the plan's children.
    pub children: Vec<ExecutedNode>,
}

impl ExecutedNode {
    /// Total work of the subtree.
    pub fn total_work(&self) -> WorkMetrics {
        self.children
            .iter()
            .fold(self.work, |acc, c| acc.add(&c.total_work()))
    }

    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ExecutedNode::size).sum::<usize>()
    }

    /// Pre-order traversal of the subtree.
    pub fn iter(&self) -> Vec<&ExecutedNode> {
        let mut nodes = vec![self];
        let mut i = 0;
        while i < nodes.len() {
            let node = nodes[i];
            nodes.extend(node.children.iter());
            i += 1;
        }
        nodes
    }
}

/// Result of executing a plan: aggregate values plus the executed tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// One value per aggregate in the plan's root `Aggregate` operator
    /// (NULL when the input was empty for value aggregates).
    pub aggregates: Vec<Value>,
    /// The executed plan with true cardinalities and work metrics.
    pub root: ExecutedNode,
}

/// An intermediate relation flowing between operators.
struct Relation {
    columns: Vec<ColumnRef>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    fn position(&self, column: ColumnRef) -> usize {
        self.columns
            .iter()
            .position(|c| *c == column)
            .unwrap_or_else(|| panic!("column {column} not present in intermediate relation"))
    }

    fn width_bytes(&self) -> u64 {
        self.columns.len() as u64 * 8
    }
}

/// Plan executor over one database.
pub struct Executor<'a> {
    db: &'a Database,
}

impl<'a> Executor<'a> {
    /// Create an executor for the given database.
    pub fn new(db: &'a Database) -> Self {
        Executor { db }
    }

    /// Execute a physical plan and return aggregate values plus the
    /// executed tree.  The plan's root must be an `Aggregate` operator (the
    /// optimizer always produces one).
    pub fn execute(&self, plan: &PlanNode) -> QueryResult {
        let (relation, node) = self.exec_node(plan);
        let aggregates = match &plan.op {
            PhysOperator::Aggregate { .. } => {
                // The aggregate values were computed by exec_node and stored
                // in the single output row.
                relation.rows.first().cloned().unwrap_or_default()
            }
            _ => Vec::new(),
        };
        QueryResult {
            aggregates,
            root: node,
        }
    }

    fn exec_node(&self, plan: &PlanNode) -> (Relation, ExecutedNode) {
        match &plan.op {
            PhysOperator::SeqScan { table, predicates } => {
                self.exec_seq_scan(plan, *table, predicates)
            }
            PhysOperator::IndexScan {
                table,
                index_column,
                lo,
                hi,
                residual,
            } => self.exec_index_scan(plan, *table, *index_column, *lo, *hi, residual),
            PhysOperator::HashJoin {
                build_key,
                probe_key,
            } => self.exec_hash_join(plan, *build_key, *probe_key),
            PhysOperator::NestedLoopJoin {
                outer_key,
                inner_key,
            } => self.exec_nested_loop(plan, *outer_key, *inner_key),
            PhysOperator::Aggregate { aggregates } => self.exec_aggregate(plan, aggregates),
        }
    }

    fn table_columns(&self, table: TableId) -> Vec<ColumnRef> {
        (0..self.db.catalog().table(table).num_columns())
            .map(|i| ColumnRef::new(table, ColumnId(i as u32)))
            .collect()
    }

    fn exec_seq_scan(
        &self,
        plan: &PlanNode,
        table: TableId,
        predicates: &[Predicate],
    ) -> (Relation, ExecutedNode) {
        let data = self.db.table_data(table);
        let meta = self.db.catalog().table(table);
        let columns = self.table_columns(table);
        let mut rows = Vec::new();
        let mut predicate_evals = 0u64;
        for row in 0..data.num_rows() {
            let mut keep = true;
            for p in predicates {
                predicate_evals += 1;
                if !p.matches(data.value(row, p.column.column)) {
                    keep = false;
                    break;
                }
            }
            if keep {
                rows.push(data.row(row));
            }
        }
        let relation = Relation { columns, rows };
        let work = WorkMetrics {
            input_tuples: data.num_rows() as u64,
            output_tuples: relation.rows.len() as u64,
            pages_seq: meta.num_pages(),
            predicate_evals,
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::SeqScan,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: Vec::new(),
        };
        (relation, node)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_index_scan(
        &self,
        plan: &PlanNode,
        table: TableId,
        index_column: ColumnRef,
        lo: Option<f64>,
        hi: Option<f64>,
        residual: &[Predicate],
    ) -> (Relation, ExecutedNode) {
        let index_id = self
            .db
            .index_on(index_column)
            .unwrap_or_else(|| panic!("index scan requires a physical index on {index_column}"));
        let index = self.db.index(index_id);
        let data = self.db.table_data(table);
        let meta = self.db.catalog().table(table);
        let columns = self.table_columns(table);

        let matched = index.range(lo, hi);
        let mut rows = Vec::new();
        let mut predicate_evals = 0u64;
        for &row in &matched {
            let row = row as usize;
            let mut keep = true;
            for p in residual {
                predicate_evals += 1;
                if !p.matches(data.value(row, p.column.column)) {
                    keep = false;
                    break;
                }
            }
            if keep {
                rows.push(data.row(row));
            }
        }
        let relation = Relation { columns, rows };
        // Random pages: index descent + heap fetches, capping heap fetches
        // at the table size (clustered access would not re-read pages, but
        // our ordering is uncorrelated with heap order).
        let heap_fetch_pages = (matched.len() as u64).min(meta.num_pages() * 4);
        let work = WorkMetrics {
            input_tuples: matched.len() as u64,
            output_tuples: relation.rows.len() as u64,
            pages_random: index.height() as u64 + heap_fetch_pages,
            index_entries: matched.len() as u64,
            predicate_evals,
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::IndexScan,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: Vec::new(),
        };
        (relation, node)
    }

    fn exec_hash_join(
        &self,
        plan: &PlanNode,
        build_key: ColumnRef,
        probe_key: ColumnRef,
    ) -> (Relation, ExecutedNode) {
        let (build_rel, build_node) = self.exec_node(&plan.children[0]);
        let (probe_rel, probe_node) = self.exec_node(&plan.children[1]);

        let build_pos = build_rel.position(build_key);
        let probe_pos = probe_rel.position(probe_key);

        let mut hash_table: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, row) in build_rel.rows.iter().enumerate() {
            if let Some(key) = join_key(&row[build_pos]) {
                hash_table.entry(key).or_default().push(i);
            }
        }

        let mut columns = build_rel.columns.clone();
        columns.extend(probe_rel.columns.iter().copied());
        let mut rows = Vec::new();
        for probe_row in &probe_rel.rows {
            if let Some(key) = join_key(&probe_row[probe_pos]) {
                if let Some(matches) = hash_table.get(&key) {
                    for &build_idx in matches {
                        let mut row = build_rel.rows[build_idx].clone();
                        row.extend(probe_row.iter().copied());
                        rows.push(row);
                    }
                }
            }
        }
        let relation = Relation { columns, rows };
        let build_bytes = build_rel.rows.len() as u64 * (build_rel.width_bytes() + 16);
        let work = WorkMetrics {
            input_tuples: (build_rel.rows.len() + probe_rel.rows.len()) as u64,
            output_tuples: relation.rows.len() as u64,
            hash_build_tuples: build_rel.rows.len() as u64,
            hash_probe_tuples: probe_rel.rows.len() as u64,
            build_bytes,
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::HashJoin,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: vec![build_node, probe_node],
        };
        (relation, node)
    }

    fn exec_nested_loop(
        &self,
        plan: &PlanNode,
        outer_key: ColumnRef,
        inner_key: ColumnRef,
    ) -> (Relation, ExecutedNode) {
        let (outer_rel, outer_node) = self.exec_node(&plan.children[0]);
        let (inner_rel, inner_node) = self.exec_node(&plan.children[1]);

        let outer_pos = outer_rel.position(outer_key);
        let inner_pos = inner_rel.position(inner_key);

        let mut columns = outer_rel.columns.clone();
        columns.extend(inner_rel.columns.iter().copied());
        let mut rows = Vec::new();
        let mut comparisons = 0u64;
        for outer_row in &outer_rel.rows {
            for inner_row in &inner_rel.rows {
                comparisons += 1;
                let matches = match (
                    join_key(&outer_row[outer_pos]),
                    join_key(&inner_row[inner_pos]),
                ) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                };
                if matches {
                    let mut row = outer_row.clone();
                    row.extend(inner_row.iter().copied());
                    rows.push(row);
                }
            }
        }
        let relation = Relation { columns, rows };
        let work = WorkMetrics {
            input_tuples: (outer_rel.rows.len() + inner_rel.rows.len()) as u64,
            output_tuples: relation.rows.len() as u64,
            comparisons,
            build_bytes: inner_rel.rows.len() as u64 * inner_rel.width_bytes(),
            output_bytes: relation.rows.len() as u64 * relation.width_bytes(),
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::NestedLoopJoin,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: relation.rows.len() as u64,
            output_width: plan.output_width,
            work,
            children: vec![outer_node, inner_node],
        };
        (relation, node)
    }

    fn exec_aggregate(
        &self,
        plan: &PlanNode,
        aggregates: &[Aggregate],
    ) -> (Relation, ExecutedNode) {
        let (input, child_node) = self.exec_node(&plan.children[0]);
        let values: Vec<Value> = aggregates
            .iter()
            .map(|agg| compute_aggregate(&input, agg))
            .collect();
        let relation = Relation {
            columns: Vec::new(),
            rows: vec![values],
        };
        let work = WorkMetrics {
            input_tuples: input.rows.len() as u64,
            output_tuples: 1,
            predicate_evals: input.rows.len() as u64 * aggregates.len() as u64,
            output_bytes: 8 * aggregates.len() as u64,
            ..WorkMetrics::default()
        };
        let node = ExecutedNode {
            kind: PhysOperatorKind::Aggregate,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: 1,
            output_width: plan.output_width,
            work,
            children: vec![child_node],
        };
        (relation, node)
    }
}

/// Integer join key of a value (NULL → no key, floats are not join keys).
fn join_key(value: &Value) -> Option<i64> {
    match value {
        Value::Int(v) => Some(*v),
        Value::Cat(v) => Some(*v as i64),
        Value::Bool(v) => Some(*v as i64),
        Value::Float(_) | Value::Null => None,
    }
}

fn compute_aggregate(input: &Relation, agg: &Aggregate) -> Value {
    match agg.column {
        None => Value::Int(input.rows.len() as i64),
        Some(column) => {
            let pos = input.position(column);
            let values: Vec<f64> = input
                .rows
                .iter()
                .filter_map(|row| row[pos].as_f64())
                .collect();
            if values.is_empty() {
                return match agg.func {
                    AggFunc::Count => Value::Int(0),
                    _ => Value::Null,
                };
            }
            match agg.func {
                AggFunc::Count => Value::Int(values.len() as i64),
                AggFunc::Sum => Value::Float(values.iter().sum()),
                AggFunc::Avg => Value::Float(values.iter().sum::<f64>() / values.len() as f64),
                AggFunc::Min => Value::Float(values.iter().copied().fold(f64::INFINITY, f64::min)),
                AggFunc::Max => {
                    Value::Float(values.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                }
            }
        }
    }
}

/// Approximate number of pages a materialised relation of `rows` tuples of
/// `width` bytes would occupy (helper shared with the runtime simulator).
pub fn pages_for(rows: u64, width: f64) -> u64 {
    let bytes = (rows as f64 * width).max(0.0) as u64;
    bytes.div_ceil(PAGE_SIZE_BYTES).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::optimizer::Optimizer;
    use zsdb_cardest::PostgresLikeEstimator;
    use zsdb_catalog::presets;
    use zsdb_query::{CmpOp, JoinCondition, Query, WorkloadGenerator};

    fn imdb_db() -> Database {
        Database::generate(presets::imdb_like(0.02), 5)
    }

    fn run(db: &Database, q: &Query) -> QueryResult {
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(db, EngineConfig::default(), &est);
        let plan = optimizer.plan(q);
        Executor::new(db).execute(&plan)
    }

    #[test]
    fn count_star_on_single_table_matches_row_count() {
        let db = imdb_db();
        let (title, meta) = db.catalog().table_by_name("title").unwrap();
        let result = run(&db, &Query::scan(title));
        assert_eq!(result.aggregates[0], Value::Int(meta.num_tuples as i64));
    }

    #[test]
    fn predicate_filtering_matches_brute_force() {
        let db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let predicate = Predicate::new(year, CmpOp::Gt, Value::Int(2000));
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![predicate],
            aggregates: vec![Aggregate::count_star()],
        };
        let result = run(&db, &q);
        let column = db.table_data(title).column(year.column);
        let expected = (0..column.len())
            .filter(|&r| predicate.matches(column.get(r)))
            .count() as i64;
        assert_eq!(result.aggregates[0], Value::Int(expected));
    }

    #[test]
    fn fk_join_count_matches_child_cardinality() {
        // Every movie_companies row joins to exactly one title, so the join
        // cardinality equals |movie_companies|.
        let db = imdb_db();
        let catalog = db.catalog();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, mc_meta) = catalog.table_by_name("movie_companies").unwrap();
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let q = Query {
            tables: vec![title, mc],
            joins: vec![JoinCondition::new(movie_id, title_id)],
            predicates: vec![],
            aggregates: vec![Aggregate::count_star()],
        };
        let result = run(&db, &q);
        assert_eq!(result.aggregates[0], Value::Int(mc_meta.num_tuples as i64));
    }

    #[test]
    fn index_scan_and_seq_scan_agree() {
        let mut db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let predicate = Predicate::new(year, CmpOp::Geq, Value::Int(2015));
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![predicate],
            aggregates: vec![Aggregate::count_star()],
        };
        let without_index = run(&db, &q);
        db.create_index(year);
        let with_index = run(&db, &q);
        assert_eq!(without_index.aggregates, with_index.aggregates);
        // The indexed execution must actually use the index.
        let kinds: Vec<PhysOperatorKind> = with_index.root.iter().iter().map(|n| n.kind).collect();
        assert!(kinds.contains(&PhysOperatorKind::IndexScan));
    }

    #[test]
    fn actual_cardinalities_and_work_are_recorded() {
        let db = imdb_db();
        let workload = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 3);
        for q in &workload {
            let result = run(&db, q);
            let root = &result.root;
            assert_eq!(root.kind, PhysOperatorKind::Aggregate);
            assert_eq!(root.actual_cardinality, 1);
            let total = root.total_work();
            assert!(total.input_tuples > 0);
            assert!(total.output_bytes > 0);
            // Scans must have read at least one page.
            for node in root.iter() {
                if node.kind == PhysOperatorKind::SeqScan {
                    assert!(node.work.pages_seq > 0);
                }
            }
        }
    }

    #[test]
    fn min_aggregate_computes_minimum() {
        let db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![],
            aggregates: vec![Aggregate::over(AggFunc::Min, year), Aggregate::count_star()],
        };
        let result = run(&db, &q);
        let column = db.table_data(title).column(year.column);
        let expected_min = (0..column.len())
            .filter_map(|r| column.as_f64(r))
            .fold(f64::INFINITY, f64::min);
        match result.aggregates[0] {
            Value::Float(v) => assert!((v - expected_min).abs() < 1e-9),
            ref other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn work_metrics_add_componentwise() {
        let a = WorkMetrics {
            input_tuples: 1,
            output_tuples: 2,
            pages_seq: 3,
            ..WorkMetrics::default()
        };
        let b = WorkMetrics {
            input_tuples: 10,
            comparisons: 5,
            ..WorkMetrics::default()
        };
        let c = a.add(&b);
        assert_eq!(c.input_tuples, 11);
        assert_eq!(c.output_tuples, 2);
        assert_eq!(c.pages_seq, 3);
        assert_eq!(c.comparisons, 5);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0, 100.0), 1);
        assert_eq!(pages_for(100, 100.0), 2);
    }
}
