//! Vectorized plan execution with work accounting.
//!
//! The executor evaluates a physical plan against the column store
//! **batch-at-a-time**: a [`ColumnBatch`] — column-major typed vectors plus
//! a *select vector* of live lanes — flows between operators instead of
//! row-major `Vec<Vec<Value>>` relations.  Scans slice batches straight out
//! of the column store, predicates are evaluated column-at-a-time into the
//! select vector (filtered-out tuples are never materialised), hash joins
//! build from and probe on key-column slices producing gather lists, and
//! aggregation folds over selected column slices.
//!
//! Per operator the executor records both the *true* output cardinality and
//! a set of [`WorkMetrics`] (tuples, pages, probes, comparisons, bytes).
//! True cardinalities feed the zero-shot model's "exact cardinalities"
//! variant; the work metrics feed the runtime simulator.  The metrics
//! contract is execution-strategy independent: the row-at-a-time reference
//! implementation ([`crate::exec_row::RowExecutor`]) produces bit-identical
//! aggregates, cardinalities and work counters (pinned by the
//! `exec_equivalence` property suite), so training labels do not depend on
//! which executor produced them.

use crate::physical::{PhysOperator, PhysOperatorKind, PlanNode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use zsdb_catalog::table::TUPLE_OVERHEAD_BYTES;
use zsdb_catalog::{ColumnRef, DataType, TableId, Value, PAGE_SIZE_BYTES};
use zsdb_query::{AggFunc, Aggregate, Predicate};
use zsdb_storage::{ColumnData, Database, TableData};

/// Number of rows per [`ColumnBatch`] emitted by scans.
pub const BATCH_ROWS: usize = 1024;

/// Work performed by one operator during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkMetrics {
    /// Tuples read from children (or from the base table for scans).  For
    /// nested-loop joins this accounts for the inner relation being
    /// rescanned once per outer tuple: `outer + outer * inner`.
    pub input_tuples: u64,
    /// Tuples produced.
    pub output_tuples: u64,
    /// Heap pages read sequentially.
    pub pages_seq: u64,
    /// Pages read with random access (index pages and heap fetches).
    pub pages_random: u64,
    /// Index entries touched.
    pub index_entries: u64,
    /// Tuples inserted into a hash table.
    pub hash_build_tuples: u64,
    /// Hash table probes performed.
    pub hash_probe_tuples: u64,
    /// Key comparisons (nested-loop joins).
    pub comparisons: u64,
    /// Predicate evaluations.
    pub predicate_evals: u64,
    /// Bytes held in the operator's hash table / state.
    pub build_bytes: u64,
    /// Bytes of produced tuples.
    pub output_bytes: u64,
}

impl WorkMetrics {
    /// Element-wise sum of two work metrics (used for aggregating over a
    /// plan or a workload).
    pub fn add(&self, other: &WorkMetrics) -> WorkMetrics {
        WorkMetrics {
            input_tuples: self.input_tuples + other.input_tuples,
            output_tuples: self.output_tuples + other.output_tuples,
            pages_seq: self.pages_seq + other.pages_seq,
            pages_random: self.pages_random + other.pages_random,
            index_entries: self.index_entries + other.index_entries,
            hash_build_tuples: self.hash_build_tuples + other.hash_build_tuples,
            hash_probe_tuples: self.hash_probe_tuples + other.hash_probe_tuples,
            comparisons: self.comparisons + other.comparisons,
            predicate_evals: self.predicate_evals + other.predicate_evals,
            build_bytes: self.build_bytes + other.build_bytes,
            output_bytes: self.output_bytes + other.output_bytes,
        }
    }
}

/// A plan node annotated with execution results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutedNode {
    /// Operator kind.
    pub kind: PhysOperatorKind,
    /// Optimizer-estimated cardinality (copied from the plan).
    pub est_cardinality: f64,
    /// True output cardinality observed during execution.
    pub actual_cardinality: u64,
    /// Output tuple width in bytes (copied from the plan).
    pub output_width: f64,
    /// Work performed by this operator alone (not including children).
    pub work: WorkMetrics,
    /// Executed children, in the same order as the plan's children.
    pub children: Vec<ExecutedNode>,
}

impl ExecutedNode {
    /// Total work of the subtree.
    pub fn total_work(&self) -> WorkMetrics {
        self.children
            .iter()
            .fold(self.work, |acc, c| acc.add(&c.total_work()))
    }

    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ExecutedNode::size).sum::<usize>()
    }

    /// Pre-order traversal of the subtree.
    pub fn iter(&self) -> Vec<&ExecutedNode> {
        let mut nodes = vec![self];
        let mut i = 0;
        while i < nodes.len() {
            let node = nodes[i];
            nodes.extend(node.children.iter());
            i += 1;
        }
        nodes
    }
}

/// Result of executing a plan: aggregate values plus the executed tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// One value per aggregate in the plan's root `Aggregate` operator
    /// (NULL when the input was empty for value aggregates).
    pub aggregates: Vec<Value>,
    /// The executed plan with true cardinalities and work metrics.
    pub root: ExecutedNode,
}

/// A batch of up to [`BATCH_ROWS`] tuples flowing between operators:
/// column-major typed vectors plus a *select vector* holding the indices of
/// the lanes that are still alive (ascending).  Predicates shrink the select
/// vector instead of materialising survivor rows; consumers (joins,
/// aggregation) only touch selected lanes.
#[derive(Debug)]
pub struct ColumnBatch {
    /// Column data, all of equal length.
    pub columns: Vec<ColumnData>,
    /// Indices of live lanes, ascending.
    pub select: Vec<u32>,
}

impl ColumnBatch {
    /// Number of live (selected) tuples in the batch.
    pub fn num_live(&self) -> usize {
        self.select.len()
    }

    /// Physical number of rows in the batch (live or not).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }
}

/// Width in bytes of one materialised tuple with the given column types:
/// the sum of the catalog column widths plus one tuple header.  This is the
/// single width helper shared by both executors and the runtime simulator's
/// page/byte accounting ([`pages_for`]), so `output_bytes`/`build_bytes`
/// labels agree with the optimizer's catalog-derived width estimates
/// instead of hardcoding 8 bytes per column.
pub fn row_width_bytes(types: &[DataType]) -> u64 {
    types.iter().map(|t| t.width_bytes() as u64).sum::<u64>() + TUPLE_OVERHEAD_BYTES
}

/// Random heap pages fetched by an index scan that matched `matched` index
/// entries on a table of `num_tuples` tuples: one uncorrelated random page
/// access per fetched tuple, capped at the table's tuple count (an index
/// never matches more entries than the table holds, so the cap is a
/// defensive invariant rather than a modelling fudge).
pub fn index_heap_fetch_pages(matched: u64, num_tuples: u64) -> u64 {
    matched.min(num_tuples)
}

/// A typed join key: the value's variant tag plus its 64-bit payload.
/// Carrying the tag keeps mistyped join columns from colliding in one key
/// space — `Int(1)` must not join `Bool(true)` or `Cat(1)`.  Floats and
/// NULLs are not join keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinKey {
    /// Variant tag (see [`join_key_tag`]).
    pub tag: u8,
    /// 64-bit key payload.
    pub key: i64,
}

/// Tag of the join-key space a column of the given type produces, `None`
/// for types that are not valid join keys (floats).  Date columns share the
/// integer key space, matching their physical representation.
pub fn join_key_tag(data_type: DataType) -> Option<u8> {
    match data_type {
        DataType::Int | DataType::Date => Some(0),
        DataType::Categorical => Some(1),
        DataType::Bool => Some(2),
        DataType::Float => None,
    }
}

/// Typed join key of a value (NULL → no key, floats are not join keys).
pub fn typed_join_key(value: &Value) -> Option<JoinKey> {
    let tag = join_key_tag(value.data_type()?)?;
    match value {
        Value::Int(v) => Some(JoinKey { tag, key: *v }),
        Value::Cat(v) => Some(JoinKey {
            tag,
            key: *v as i64,
        }),
        Value::Bool(v) => Some(JoinKey {
            tag,
            key: *v as i64,
        }),
        Value::Float(_) | Value::Null => None,
    }
}

/// Batch-at-a-time plan executor over one database.
///
/// This is the engine's production execution path; the row-at-a-time
/// reference oracle lives in [`crate::exec_row::RowExecutor`].
pub struct Executor<'a> {
    db: &'a Database,
}

impl<'a> Executor<'a> {
    /// Create an executor for the given database.
    pub fn new(db: &'a Database) -> Self {
        Executor { db }
    }

    /// Execute a physical plan and return aggregate values plus the
    /// executed tree.  The plan's root must be an `Aggregate` operator (the
    /// optimizer always produces one); plans without a root aggregate are
    /// executed for their side effects (work metrics) with no aggregate
    /// values.
    pub fn execute(&self, plan: &PlanNode) -> QueryResult {
        match &plan.op {
            PhysOperator::Aggregate { aggregates } => self.execute_aggregate_root(plan, aggregates),
            _ => {
                let (mut op, _) = build_operator(self.db, plan);
                while op.next_batch().is_some() {}
                QueryResult {
                    aggregates: Vec::new(),
                    root: op.finish(),
                }
            }
        }
    }

    fn execute_aggregate_root(&self, plan: &PlanNode, aggregates: &[Aggregate]) -> QueryResult {
        let (mut child, schema) = build_operator(self.db, &plan.children[0]);
        let positions: Vec<Option<usize>> = aggregates
            .iter()
            .map(|a| a.column.map(|c| schema.position(c)))
            .collect();
        let mut accs = vec![AggAccumulator::new(); aggregates.len()];
        let mut input_rows = 0u64;
        let mut fvals: Vec<f64> = Vec::with_capacity(BATCH_ROWS);
        let mut fnulls: Vec<bool> = Vec::with_capacity(BATCH_ROWS);
        while let Some(batch) = child.next_batch() {
            input_rows += batch.num_live() as u64;
            for (agg_idx, pos) in positions.iter().enumerate() {
                let Some(pos) = pos else { continue };
                let column = &batch.columns[*pos];
                column.f64_range_into(0, column.len(), &mut fvals, &mut fnulls);
                let acc = &mut accs[agg_idx];
                for &lane in &batch.select {
                    let lane = lane as usize;
                    if !fnulls[lane] {
                        acc.fold(fvals[lane]);
                    }
                }
            }
        }
        let values: Vec<Value> = aggregates
            .iter()
            .zip(&accs)
            .map(|(agg, acc)| acc.finalize(agg.func, agg.column.is_some(), input_rows))
            .collect();
        let work = WorkMetrics {
            input_tuples: input_rows,
            output_tuples: 1,
            predicate_evals: input_rows * aggregates.len() as u64,
            output_bytes: 8 * aggregates.len() as u64,
            ..WorkMetrics::default()
        };
        let root = ExecutedNode {
            kind: PhysOperatorKind::Aggregate,
            est_cardinality: plan.est_cardinality,
            actual_cardinality: 1,
            output_width: plan.output_width,
            work,
            children: vec![child.finish()],
        };
        QueryResult {
            aggregates: values,
            root,
        }
    }
}

/// Running state of one scalar aggregate.  Folds happen in row order, so
/// floating-point results are bit-identical to the row-at-a-time reference
/// (which collects values in the same order before reducing).
#[derive(Debug, Clone)]
struct AggAccumulator {
    non_null: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl AggAccumulator {
    fn new() -> Self {
        AggAccumulator {
            non_null: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    fn fold(&mut self, v: f64) {
        self.non_null += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn finalize(&self, func: AggFunc, over_column: bool, input_rows: u64) -> Value {
        if !over_column {
            // COUNT(*) counts tuples, not non-null values.
            return Value::Int(input_rows as i64);
        }
        if self.non_null == 0 {
            return match func {
                AggFunc::Count => Value::Int(0),
                _ => Value::Null,
            };
        }
        match func {
            AggFunc::Count => Value::Int(self.non_null as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => Value::Float(self.sum / self.non_null as f64),
            AggFunc::Min => Value::Float(self.min),
            AggFunc::Max => Value::Float(self.max),
        }
    }
}

/// Column refs and logical types of the batches an operator produces.
struct BatchSchema {
    columns: Vec<ColumnRef>,
    types: Vec<DataType>,
}

impl BatchSchema {
    fn position(&self, column: ColumnRef) -> usize {
        self.columns
            .iter()
            .position(|c| *c == column)
            .unwrap_or_else(|| panic!("column {column} not present in intermediate relation"))
    }

    fn width_bytes(&self) -> u64 {
        row_width_bytes(&self.types)
    }

    fn concat(&self, other: &BatchSchema) -> BatchSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().copied());
        let mut types = self.types.clone();
        types.extend(other.types.iter().copied());
        BatchSchema { columns, types }
    }
}

fn table_schema(db: &Database, table: TableId) -> BatchSchema {
    let meta = db.catalog().table(table);
    BatchSchema {
        columns: (0..meta.num_columns())
            .map(|i| ColumnRef::new(table, zsdb_catalog::ColumnId(i as u32)))
            .collect(),
        types: meta.columns.iter().map(|c| c.data_type).collect(),
    }
}

/// A pull-based batch operator.  `next_batch` yields batches until
/// exhausted; `finish` consumes the operator and returns the executed node
/// (callers must drain the operator first — [`Executor::execute`] does).
trait BatchOperator {
    fn next_batch(&mut self) -> Option<ColumnBatch>;
    fn finish(self: Box<Self>) -> ExecutedNode;
}

fn build_operator<'a>(
    db: &'a Database,
    plan: &'a PlanNode,
) -> (Box<dyn BatchOperator + 'a>, BatchSchema) {
    match &plan.op {
        PhysOperator::SeqScan { table, predicates } => {
            let schema = table_schema(db, *table);
            let op = SeqScanBatches::new(db, plan, *table, predicates, schema.width_bytes());
            (Box::new(op), schema)
        }
        PhysOperator::IndexScan {
            table,
            index_column,
            lo,
            hi,
            residual,
        } => {
            let schema = table_schema(db, *table);
            let op = IndexScanBatches::new(
                db,
                plan,
                *table,
                *index_column,
                *lo,
                *hi,
                residual,
                schema.width_bytes(),
            );
            (Box::new(op), schema)
        }
        PhysOperator::HashJoin {
            build_key,
            probe_key,
        } => {
            let (build, build_schema) = build_operator(db, &plan.children[0]);
            let (probe, probe_schema) = build_operator(db, &plan.children[1]);
            let schema = build_schema.concat(&probe_schema);
            let op = HashJoinBatches::new(
                plan,
                build,
                probe,
                &build_schema,
                &probe_schema,
                *build_key,
                *probe_key,
            );
            (Box::new(op), schema)
        }
        PhysOperator::NestedLoopJoin {
            outer_key,
            inner_key,
        } => {
            let (outer, outer_schema) = build_operator(db, &plan.children[0]);
            let (inner, inner_schema) = build_operator(db, &plan.children[1]);
            let schema = outer_schema.concat(&inner_schema);
            let op = NestedLoopBatches::new(
                plan,
                outer,
                inner,
                &outer_schema,
                &inner_schema,
                *outer_key,
                *inner_key,
            );
            (Box::new(op), schema)
        }
        PhysOperator::Aggregate { .. } => {
            panic!("Aggregate operators are only supported at the plan root")
        }
    }
}

/// Sequential scan: batches sliced straight from the column store,
/// predicates evaluated column-at-a-time into the select vector.
struct SeqScanBatches<'a> {
    data: &'a TableData,
    predicates: &'a [Predicate],
    plan: &'a PlanNode,
    width: u64,
    cursor: usize,
    work: WorkMetrics,
    fvals: Vec<f64>,
    fnulls: Vec<bool>,
}

impl<'a> SeqScanBatches<'a> {
    fn new(
        db: &'a Database,
        plan: &'a PlanNode,
        table: TableId,
        predicates: &'a [Predicate],
        width: u64,
    ) -> Self {
        let data = db.table_data(table);
        let meta = db.catalog().table(table);
        let work = WorkMetrics {
            input_tuples: data.num_rows() as u64,
            pages_seq: meta.num_pages(),
            ..WorkMetrics::default()
        };
        SeqScanBatches {
            data,
            predicates,
            plan,
            width,
            cursor: 0,
            work,
            fvals: Vec::with_capacity(BATCH_ROWS),
            fnulls: Vec::with_capacity(BATCH_ROWS),
        }
    }
}

impl BatchOperator for SeqScanBatches<'_> {
    fn next_batch(&mut self) -> Option<ColumnBatch> {
        loop {
            let remaining = self.data.num_rows() - self.cursor;
            if remaining == 0 {
                return None;
            }
            let len = BATCH_ROWS.min(remaining);
            let start = self.cursor;
            self.cursor += len;

            let mut select: Vec<u32> = (0..len as u32).collect();
            for p in self.predicates {
                if select.is_empty() {
                    break;
                }
                // Conjunction short-circuit: each predicate only runs on
                // lanes that survived the previous ones, matching the
                // row-at-a-time per-row early exit count for count.
                self.work.predicate_evals += select.len() as u64;
                let column = self.data.column(p.column.column);
                column.f64_range_into(start, len, &mut self.fvals, &mut self.fnulls);
                p.filter_batch(&self.fvals, &self.fnulls, &mut select);
            }
            if select.is_empty() {
                continue; // fully filtered: nothing to materialise
            }
            self.work.output_tuples += select.len() as u64;
            self.work.output_bytes += select.len() as u64 * self.width;
            return Some(ColumnBatch {
                columns: self.data.slice_columns(start, len),
                select,
            });
        }
    }

    fn finish(self: Box<Self>) -> ExecutedNode {
        ExecutedNode {
            kind: PhysOperatorKind::SeqScan,
            est_cardinality: self.plan.est_cardinality,
            actual_cardinality: self.work.output_tuples,
            output_width: self.plan.output_width,
            work: self.work,
            children: Vec::new(),
        }
    }
}

/// Index scan: the index yields matched row ids; heap rows are gathered a
/// batch at a time and residual predicates run column-at-a-time.
struct IndexScanBatches<'a> {
    data: &'a TableData,
    residual: &'a [Predicate],
    plan: &'a PlanNode,
    matched: Vec<u32>,
    width: u64,
    cursor: usize,
    work: WorkMetrics,
    fvals: Vec<f64>,
    fnulls: Vec<bool>,
}

impl<'a> IndexScanBatches<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        db: &'a Database,
        plan: &'a PlanNode,
        table: TableId,
        index_column: ColumnRef,
        lo: Option<f64>,
        hi: Option<f64>,
        residual: &'a [Predicate],
        width: u64,
    ) -> Self {
        let index_id = db
            .index_on(index_column)
            .unwrap_or_else(|| panic!("index scan requires a physical index on {index_column}"));
        let index = db.index(index_id);
        let data = db.table_data(table);
        let meta = db.catalog().table(table);
        let matched = index.range(lo, hi);
        let work = WorkMetrics {
            input_tuples: matched.len() as u64,
            pages_random: index.height() as u64
                + index_heap_fetch_pages(matched.len() as u64, meta.num_tuples),
            index_entries: matched.len() as u64,
            ..WorkMetrics::default()
        };
        IndexScanBatches {
            data,
            residual,
            plan,
            matched,
            width,
            cursor: 0,
            work,
            fvals: Vec::with_capacity(BATCH_ROWS),
            fnulls: Vec::with_capacity(BATCH_ROWS),
        }
    }
}

impl BatchOperator for IndexScanBatches<'_> {
    fn next_batch(&mut self) -> Option<ColumnBatch> {
        loop {
            let remaining = self.matched.len() - self.cursor;
            if remaining == 0 {
                return None;
            }
            let len = BATCH_ROWS.min(remaining);
            let rows = &self.matched[self.cursor..self.cursor + len];
            self.cursor += len;

            let columns = self.data.gather_columns(rows);
            let mut select: Vec<u32> = (0..len as u32).collect();
            for p in self.residual {
                if select.is_empty() {
                    break;
                }
                self.work.predicate_evals += select.len() as u64;
                let column = &columns[p.column.column.index()];
                column.f64_range_into(0, len, &mut self.fvals, &mut self.fnulls);
                p.filter_batch(&self.fvals, &self.fnulls, &mut select);
            }
            if select.is_empty() {
                continue;
            }
            self.work.output_tuples += select.len() as u64;
            self.work.output_bytes += select.len() as u64 * self.width;
            return Some(ColumnBatch { columns, select });
        }
    }

    fn finish(self: Box<Self>) -> ExecutedNode {
        ExecutedNode {
            kind: PhysOperatorKind::IndexScan,
            est_cardinality: self.plan.est_cardinality,
            actual_cardinality: self.work.output_tuples,
            output_width: self.plan.output_width,
            work: self.work,
            children: Vec::new(),
        }
    }
}

/// Hash join: the build side is drained into columnar key → row-id lists,
/// then probe batches are matched key-column-at-a-time and survivor pairs
/// are materialised through gather lists.
struct HashJoinBatches<'a> {
    plan: &'a PlanNode,
    build: Option<Box<dyn BatchOperator + 'a>>,
    probe: Option<Box<dyn BatchOperator + 'a>>,
    build_node: Option<ExecutedNode>,
    build_pos: usize,
    probe_pos: usize,
    /// Join keys can only match when both key columns live in the same
    /// typed key space (see [`join_key_tag`]).
    tags_match: bool,
    width: u64,
    build_width: u64,
    /// Keyed build rows, columnar (rows without a join key are counted but
    /// never stored — they cannot match).
    build_cols: Vec<ColumnData>,
    table: HashMap<i64, Vec<u32>>,
    built: bool,
    work: WorkMetrics,
    keyed_scratch: Vec<u32>,
    out_build_rows: Vec<u32>,
    out_probe_lanes: Vec<u32>,
}

impl<'a> HashJoinBatches<'a> {
    fn new(
        plan: &'a PlanNode,
        build: Box<dyn BatchOperator + 'a>,
        probe: Box<dyn BatchOperator + 'a>,
        build_schema: &BatchSchema,
        probe_schema: &BatchSchema,
        build_key: ColumnRef,
        probe_key: ColumnRef,
    ) -> Self {
        let build_pos = build_schema.position(build_key);
        let probe_pos = probe_schema.position(probe_key);
        let build_tag = join_key_tag(build_schema.types[build_pos]);
        let probe_tag = join_key_tag(probe_schema.types[probe_pos]);
        let build_cols = build_schema
            .types
            .iter()
            .map(|t| ColumnData::new(*t))
            .collect();
        HashJoinBatches {
            plan,
            build: Some(build),
            probe: Some(probe),
            build_node: None,
            build_pos,
            probe_pos,
            tags_match: build_tag.is_some() && build_tag == probe_tag,
            width: build_schema.concat(probe_schema).width_bytes(),
            build_width: build_schema.width_bytes(),
            build_cols,
            table: HashMap::new(),
            built: false,
            work: WorkMetrics::default(),
            keyed_scratch: Vec::with_capacity(BATCH_ROWS),
            out_build_rows: Vec::new(),
            out_probe_lanes: Vec::new(),
        }
    }

    fn ensure_built(&mut self) {
        if self.built {
            return;
        }
        self.built = true;
        let mut build = self.build.take().expect("build side consumed twice");
        let mut next_row = 0u32;
        while let Some(batch) = build.next_batch() {
            self.work.hash_build_tuples += batch.num_live() as u64;
            let key_col = &batch.columns[self.build_pos];
            self.keyed_scratch.clear();
            for &lane in &batch.select {
                if let Some(key) = key_col.join_key(lane as usize) {
                    self.table.entry(key).or_default().push(next_row);
                    next_row += 1;
                    self.keyed_scratch.push(lane);
                }
            }
            for (dst, src) in self.build_cols.iter_mut().zip(&batch.columns) {
                dst.append_gather(src, &self.keyed_scratch);
            }
        }
        self.work.build_bytes = self.work.hash_build_tuples * (self.build_width + 16);
        self.build_node = Some(build.finish());
    }
}

impl BatchOperator for HashJoinBatches<'_> {
    fn next_batch(&mut self) -> Option<ColumnBatch> {
        self.ensure_built();
        loop {
            let probe = self.probe.as_mut().expect("probe side consumed twice");
            let batch = probe.next_batch()?;
            self.work.hash_probe_tuples += batch.num_live() as u64;
            self.out_build_rows.clear();
            self.out_probe_lanes.clear();
            if self.tags_match {
                let key_col = &batch.columns[self.probe_pos];
                for &lane in &batch.select {
                    if let Some(key) = key_col.join_key(lane as usize) {
                        if let Some(matches) = self.table.get(&key) {
                            for &build_row in matches {
                                self.out_build_rows.push(build_row);
                                self.out_probe_lanes.push(lane);
                            }
                        }
                    }
                }
            }
            if self.out_build_rows.is_empty() {
                continue;
            }
            let n = self.out_build_rows.len();
            let mut columns = Vec::with_capacity(self.build_cols.len() + batch.columns.len());
            for col in &self.build_cols {
                columns.push(col.gather(&self.out_build_rows));
            }
            for col in &batch.columns {
                columns.push(col.gather(&self.out_probe_lanes));
            }
            self.work.output_tuples += n as u64;
            self.work.output_bytes += n as u64 * self.width;
            return Some(ColumnBatch {
                columns,
                select: (0..n as u32).collect(),
            });
        }
    }

    fn finish(mut self: Box<Self>) -> ExecutedNode {
        self.ensure_built();
        let build_node = self.build_node.take().expect("build node missing");
        let probe_node = self
            .probe
            .take()
            .expect("probe side consumed twice")
            .finish();
        self.work.input_tuples = self.work.hash_build_tuples + self.work.hash_probe_tuples;
        ExecutedNode {
            kind: PhysOperatorKind::HashJoin,
            est_cardinality: self.plan.est_cardinality,
            actual_cardinality: self.work.output_tuples,
            output_width: self.plan.output_width,
            work: self.work,
            children: vec![build_node, probe_node],
        }
    }
}

/// Nested-loop join: the inner side is materialised columnar once; outer
/// batches stream through, comparing key slices against the inner key
/// column.
struct NestedLoopBatches<'a> {
    plan: &'a PlanNode,
    outer: Option<Box<dyn BatchOperator + 'a>>,
    inner: Option<Box<dyn BatchOperator + 'a>>,
    inner_node: Option<ExecutedNode>,
    outer_pos: usize,
    tags_match: bool,
    width: u64,
    inner_width: u64,
    inner_pos: usize,
    inner_cols: Vec<ColumnData>,
    inner_keys: Vec<Option<i64>>,
    inner_done: bool,
    outer_rows: u64,
    work: WorkMetrics,
    out_outer_lanes: Vec<u32>,
    out_inner_rows: Vec<u32>,
}

impl<'a> NestedLoopBatches<'a> {
    fn new(
        plan: &'a PlanNode,
        outer: Box<dyn BatchOperator + 'a>,
        inner: Box<dyn BatchOperator + 'a>,
        outer_schema: &BatchSchema,
        inner_schema: &BatchSchema,
        outer_key: ColumnRef,
        inner_key: ColumnRef,
    ) -> Self {
        let outer_pos = outer_schema.position(outer_key);
        let inner_pos = inner_schema.position(inner_key);
        let outer_tag = join_key_tag(outer_schema.types[outer_pos]);
        let inner_tag = join_key_tag(inner_schema.types[inner_pos]);
        let inner_cols = inner_schema
            .types
            .iter()
            .map(|t| ColumnData::new(*t))
            .collect();
        NestedLoopBatches {
            plan,
            outer: Some(outer),
            inner: Some(inner),
            inner_node: None,
            outer_pos,
            tags_match: outer_tag.is_some() && outer_tag == inner_tag,
            width: outer_schema.concat(inner_schema).width_bytes(),
            inner_width: inner_schema.width_bytes(),
            inner_pos,
            inner_cols,
            inner_keys: Vec::new(),
            inner_done: false,
            outer_rows: 0,
            work: WorkMetrics::default(),
            out_outer_lanes: Vec::new(),
            out_inner_rows: Vec::new(),
        }
    }

    fn ensure_inner(&mut self) {
        if self.inner_done {
            return;
        }
        self.inner_done = true;
        let mut inner = self.inner.take().expect("inner side consumed twice");
        while let Some(batch) = inner.next_batch() {
            let key_col = &batch.columns[self.inner_pos];
            for &lane in &batch.select {
                self.inner_keys.push(key_col.join_key(lane as usize));
            }
            for (dst, src) in self.inner_cols.iter_mut().zip(&batch.columns) {
                dst.append_gather(src, &batch.select);
            }
        }
        self.work.build_bytes = self.inner_keys.len() as u64 * self.inner_width;
        self.inner_node = Some(inner.finish());
    }
}

impl BatchOperator for NestedLoopBatches<'_> {
    fn next_batch(&mut self) -> Option<ColumnBatch> {
        self.ensure_inner();
        loop {
            let outer = self.outer.as_mut().expect("outer side consumed twice");
            let batch = outer.next_batch()?;
            let live = batch.num_live() as u64;
            self.outer_rows += live;
            self.work.comparisons += live * self.inner_keys.len() as u64;
            self.out_outer_lanes.clear();
            self.out_inner_rows.clear();
            let key_col = &batch.columns[self.outer_pos];
            for &lane in &batch.select {
                let outer_key = if self.tags_match {
                    key_col.join_key(lane as usize)
                } else {
                    None
                };
                let Some(outer_key) = outer_key else { continue };
                for (inner_row, inner_key) in self.inner_keys.iter().enumerate() {
                    if *inner_key == Some(outer_key) {
                        self.out_outer_lanes.push(lane);
                        self.out_inner_rows.push(inner_row as u32);
                    }
                }
            }
            if self.out_outer_lanes.is_empty() {
                continue;
            }
            let n = self.out_outer_lanes.len();
            let mut columns = Vec::with_capacity(batch.columns.len() + self.inner_cols.len());
            for col in &batch.columns {
                columns.push(col.gather(&self.out_outer_lanes));
            }
            for col in &self.inner_cols {
                columns.push(col.gather(&self.out_inner_rows));
            }
            self.work.output_tuples += n as u64;
            self.work.output_bytes += n as u64 * self.width;
            return Some(ColumnBatch {
                columns,
                select: (0..n as u32).collect(),
            });
        }
    }

    fn finish(mut self: Box<Self>) -> ExecutedNode {
        self.ensure_inner();
        let inner_node = self.inner_node.take().expect("inner node missing");
        let outer_node = self
            .outer
            .take()
            .expect("outer side consumed twice")
            .finish();
        // The inner relation is rescanned once per outer tuple; charging
        // only one pass made the runtime simulator undercount NLJ work.
        self.work.input_tuples = self.outer_rows + self.outer_rows * self.inner_keys.len() as u64;
        ExecutedNode {
            kind: PhysOperatorKind::NestedLoopJoin,
            est_cardinality: self.plan.est_cardinality,
            actual_cardinality: self.work.output_tuples,
            output_width: self.plan.output_width,
            work: self.work,
            children: vec![outer_node, inner_node],
        }
    }
}

/// Approximate number of pages a materialised relation of `rows` tuples of
/// `width` bytes would occupy (helper shared with the runtime simulator).
pub fn pages_for(rows: u64, width: f64) -> u64 {
    let bytes = (rows as f64 * width).max(0.0) as u64;
    bytes.div_ceil(PAGE_SIZE_BYTES).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::optimizer::Optimizer;
    use zsdb_cardest::PostgresLikeEstimator;
    use zsdb_catalog::presets;
    use zsdb_query::{CmpOp, JoinCondition, Query, WorkloadGenerator};

    fn imdb_db() -> Database {
        Database::generate(presets::imdb_like(0.02), 5)
    }

    fn run(db: &Database, q: &Query) -> QueryResult {
        let est = PostgresLikeEstimator::new(db.catalog().clone());
        let optimizer = Optimizer::new(db, EngineConfig::default(), &est);
        let plan = optimizer.plan(q);
        Executor::new(db).execute(&plan)
    }

    #[test]
    fn count_star_on_single_table_matches_row_count() {
        let db = imdb_db();
        let (title, meta) = db.catalog().table_by_name("title").unwrap();
        let result = run(&db, &Query::scan(title));
        assert_eq!(result.aggregates[0], Value::Int(meta.num_tuples as i64));
    }

    #[test]
    fn predicate_filtering_matches_brute_force() {
        let db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let predicate = Predicate::new(year, CmpOp::Gt, Value::Int(2000));
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![predicate],
            aggregates: vec![Aggregate::count_star()],
        };
        let result = run(&db, &q);
        let column = db.table_data(title).column(year.column);
        let expected = (0..column.len())
            .filter(|&r| predicate.matches(column.get(r)))
            .count() as i64;
        assert_eq!(result.aggregates[0], Value::Int(expected));
    }

    #[test]
    fn fk_join_count_matches_child_cardinality() {
        // Every movie_companies row joins to exactly one title, so the join
        // cardinality equals |movie_companies|.
        let db = imdb_db();
        let catalog = db.catalog();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, mc_meta) = catalog.table_by_name("movie_companies").unwrap();
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let q = Query {
            tables: vec![title, mc],
            joins: vec![JoinCondition::new(movie_id, title_id)],
            predicates: vec![],
            aggregates: vec![Aggregate::count_star()],
        };
        let result = run(&db, &q);
        assert_eq!(result.aggregates[0], Value::Int(mc_meta.num_tuples as i64));
    }

    #[test]
    fn index_scan_and_seq_scan_agree() {
        let mut db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let predicate = Predicate::new(year, CmpOp::Geq, Value::Int(2015));
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![predicate],
            aggregates: vec![Aggregate::count_star()],
        };
        let without_index = run(&db, &q);
        db.create_index(year);
        let with_index = run(&db, &q);
        assert_eq!(without_index.aggregates, with_index.aggregates);
        // The indexed execution must actually use the index.
        let kinds: Vec<PhysOperatorKind> = with_index.root.iter().iter().map(|n| n.kind).collect();
        assert!(kinds.contains(&PhysOperatorKind::IndexScan));
    }

    #[test]
    fn actual_cardinalities_and_work_are_recorded() {
        let db = imdb_db();
        let workload = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 3);
        for q in &workload {
            let result = run(&db, q);
            let root = &result.root;
            assert_eq!(root.kind, PhysOperatorKind::Aggregate);
            assert_eq!(root.actual_cardinality, 1);
            let total = root.total_work();
            assert!(total.input_tuples > 0);
            assert!(total.output_bytes > 0);
            // Scans must have read at least one page.
            for node in root.iter() {
                if node.kind == PhysOperatorKind::SeqScan {
                    assert!(node.work.pages_seq > 0);
                }
            }
        }
    }

    #[test]
    fn min_aggregate_computes_minimum() {
        let db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![],
            aggregates: vec![Aggregate::over(AggFunc::Min, year), Aggregate::count_star()],
        };
        let result = run(&db, &q);
        let column = db.table_data(title).column(year.column);
        let expected_min = (0..column.len())
            .filter_map(|r| column.as_f64(r))
            .fold(f64::INFINITY, f64::min);
        match result.aggregates[0] {
            Value::Float(v) => assert!((v - expected_min).abs() < 1e-9),
            ref other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn work_metrics_add_componentwise() {
        let a = WorkMetrics {
            input_tuples: 1,
            output_tuples: 2,
            pages_seq: 3,
            ..WorkMetrics::default()
        };
        let b = WorkMetrics {
            input_tuples: 10,
            comparisons: 5,
            ..WorkMetrics::default()
        };
        let c = a.add(&b);
        assert_eq!(c.input_tuples, 11);
        assert_eq!(c.output_tuples, 2);
        assert_eq!(c.pages_seq, 3);
        assert_eq!(c.comparisons, 5);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0, 100.0), 1);
        assert_eq!(pages_for(100, 100.0), 2);
    }

    #[test]
    fn row_width_derives_from_catalog_types() {
        // 8 (Int) + 4 (Categorical) + 1 (Bool) + 8 (Date) + tuple header.
        let types = [
            DataType::Int,
            DataType::Categorical,
            DataType::Bool,
            DataType::Date,
        ];
        assert_eq!(row_width_bytes(&types), 21 + TUPLE_OVERHEAD_BYTES);
        // The old executor hardcoded 8 bytes per column; these types must
        // not round-trip through that assumption.
        assert_ne!(row_width_bytes(&types), 8 * types.len() as u64);
    }

    #[test]
    fn seq_scan_output_bytes_use_catalog_widths() {
        let db = imdb_db();
        let (title, meta) = db.catalog().table_by_name("title").unwrap();
        let result = run(&db, &Query::scan(title));
        let scan = result
            .root
            .iter()
            .into_iter()
            .find(|n| n.kind == PhysOperatorKind::SeqScan)
            .expect("plan has a seq scan")
            .clone();
        let types: Vec<DataType> = meta.columns.iter().map(|c| c.data_type).collect();
        assert_eq!(
            scan.work.output_bytes,
            scan.work.output_tuples * row_width_bytes(&types)
        );
    }

    #[test]
    fn heap_fetch_pages_cap_at_table_tuples() {
        assert_eq!(index_heap_fetch_pages(10, 1_000), 10);
        assert_eq!(index_heap_fetch_pages(5_000, 1_000), 1_000);
        assert_eq!(index_heap_fetch_pages(0, 1_000), 0);
    }

    #[test]
    fn index_scan_random_pages_follow_the_tuple_cap() {
        let mut db = imdb_db();
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let (title, meta) = db.catalog().table_by_name("title").unwrap();
        let num_tuples = meta.num_tuples;
        db.create_index(year);
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Geq, Value::Int(2010))],
            aggregates: vec![Aggregate::count_star()],
        };
        let result = run(&db, &q);
        let index_id = db.index_on(year).unwrap();
        let height = db.index(index_id).height() as u64;
        let scan = result
            .root
            .iter()
            .into_iter()
            .find(|n| n.kind == PhysOperatorKind::IndexScan)
            .expect("plan uses the index")
            .clone();
        // input_tuples == matched index entries for an index scan.
        let matched = scan.work.input_tuples;
        assert_eq!(
            scan.work.pages_random,
            height + index_heap_fetch_pages(matched, num_tuples)
        );
    }

    #[test]
    fn typed_join_keys_do_not_collide_across_variants() {
        let int_one = typed_join_key(&Value::Int(1)).unwrap();
        let bool_true = typed_join_key(&Value::Bool(true)).unwrap();
        let cat_one = typed_join_key(&Value::Cat(1)).unwrap();
        assert_ne!(int_one, bool_true);
        assert_ne!(int_one, cat_one);
        assert_ne!(bool_true, cat_one);
        assert_eq!(typed_join_key(&Value::Null), None);
        assert_eq!(typed_join_key(&Value::Float(1.0)), None);
        // Date columns are Int-backed and share the integer key space.
        assert_eq!(join_key_tag(DataType::Date), join_key_tag(DataType::Int));
    }
}
