//! Columnar table data.

use crate::column::ColumnData;
use zsdb_catalog::{ColumnId, TableMeta, Value};

/// Concrete data of a table: one [`ColumnData`] per catalog column, all of
/// the same length.
#[derive(Debug, Clone, PartialEq)]
pub struct TableData {
    columns: Vec<ColumnData>,
    num_rows: usize,
}

impl TableData {
    /// Create an empty table matching a catalog definition.
    pub fn empty(meta: &TableMeta) -> Self {
        TableData {
            columns: meta
                .columns
                .iter()
                .map(|c| ColumnData::new(c.data_type))
                .collect(),
            num_rows: 0,
        }
    }

    /// Build a table from pre-populated columns (all must have equal
    /// length; panics otherwise — programmer error).
    pub fn from_columns(columns: Vec<ColumnData>) -> Self {
        let num_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        assert!(
            columns.iter().all(|c| c.len() == num_rows),
            "all columns must have the same length"
        );
        TableData { columns, num_rows }
    }

    /// Append one row given as a slice of values in column order.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(*value);
        }
        self.num_rows += 1;
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column data by id.
    pub fn column(&self, id: ColumnId) -> &ColumnData {
        &self.columns[id.index()]
    }

    /// All columns in definition order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Value at `(row, column)`.
    pub fn value(&self, row: usize, column: ColumnId) -> Value {
        self.columns[column.index()].get(row)
    }

    /// Materialise a whole row as a vector of values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Slice rows `[start, start + len)` of every column — the unit of
    /// batch-at-a-time sequential scans (one typed copy per column, no
    /// per-row materialisation).
    pub fn slice_columns(&self, start: usize, len: usize) -> Vec<ColumnData> {
        self.columns
            .iter()
            .map(|c| c.slice_range(start, len))
            .collect()
    }

    /// Gather the given rows of every column (index scans fetching the
    /// rows matched by an index range).
    pub fn gather_columns(&self, rows: &[u32]) -> Vec<ColumnData> {
        self.columns.iter().map(|c| c.gather(rows)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{ColumnMeta, ColumnStatistics, DataType, Distribution};

    fn meta() -> TableMeta {
        TableMeta::new(
            "t",
            vec![
                ColumnMeta::primary_key("id", 0),
                ColumnMeta::new(
                    "x",
                    DataType::Float,
                    ColumnStatistics {
                        distinct_count: 10,
                        null_fraction: 0.0,
                        min: Some(0.0),
                        max: Some(1.0),
                        distribution: Distribution::Uniform,
                    },
                ),
            ],
            0,
        )
    }

    #[test]
    fn push_and_read_rows() {
        let mut data = TableData::empty(&meta());
        data.push_row(&[Value::Int(0), Value::Float(0.5)]);
        data.push_row(&[Value::Int(1), Value::Null]);
        assert_eq!(data.num_rows(), 2);
        assert_eq!(data.num_columns(), 2);
        assert_eq!(data.value(0, ColumnId(1)), Value::Float(0.5));
        assert_eq!(data.row(1), vec![Value::Int(1), Value::Null]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut data = TableData::empty(&meta());
        data.push_row(&[Value::Int(0)]);
    }

    #[test]
    fn batch_accessors_agree_with_row_reads() {
        let mut data = TableData::empty(&meta());
        for i in 0..5 {
            data.push_row(&[Value::Int(i), Value::Float(i as f64 / 2.0)]);
        }
        let sliced = data.slice_columns(1, 3);
        assert_eq!(sliced.len(), 2);
        for (lane, row) in (1..4).enumerate() {
            assert_eq!(sliced[0].get(lane), data.value(row, ColumnId(0)));
            assert_eq!(sliced[1].get(lane), data.value(row, ColumnId(1)));
        }
        let gathered = data.gather_columns(&[4, 0]);
        assert_eq!(gathered[0].get(0), Value::Int(4));
        assert_eq!(gathered[0].get(1), Value::Int(0));
    }

    #[test]
    fn from_columns_checks_lengths() {
        let mut a = ColumnData::new(DataType::Int);
        a.push(Value::Int(1));
        let b = ColumnData::new(DataType::Float);
        let result = std::panic::catch_unwind(|| TableData::from_columns(vec![a, b]));
        assert!(result.is_err());
    }
}
