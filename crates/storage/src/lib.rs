//! # zsdb-storage
//!
//! In-memory column store for the `zero-shot-db` workspace.
//!
//! A [`Database`] couples a [`zsdb_catalog::SchemaCatalog`] with concrete
//! column data ([`TableData`]) and secondary indexes ([`BTreeIndex`]).  Data
//! is produced by the deterministic [`datagen::DataGenerator`], which
//! realises the distribution specifications recorded in the catalog
//! (uniform / normal / Zipf / foreign-key) so that training databases have
//! genuinely different data characteristics.
//!
//! The storage layer is deliberately simple — append-only columnar arrays
//! with a null bitmap — because the workspace only needs read-heavy
//! analytical execution with reproducible work counters, not transactional
//! storage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod database;
pub mod datagen;
pub mod index;
pub mod sample;
pub mod table;

pub use column::ColumnData;
pub use database::{Database, IndexId};
pub use datagen::DataGenerator;
pub use index::BTreeIndex;
pub use sample::TableSample;
pub use table::TableData;
