//! Row sampling for data-driven models.
//!
//! The paper argues that data characteristics should be captured by
//! *data-driven* models that can be built from a sample of the database
//! without executing any query.  [`TableSample`] provides the deterministic
//! uniform sample those models (histogram and sampling estimators in
//! `zsdb-cardest`) are built from.

use crate::table::TableData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniform random sample of row ids from a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSample {
    rows: Vec<u32>,
    table_rows: usize,
}

impl TableSample {
    /// Draw a sample of at most `sample_size` rows from `table` (without
    /// replacement, reservoir sampling, deterministic in `seed`).
    pub fn draw(table: &TableData, sample_size: usize, seed: u64) -> Self {
        let n = table.num_rows();
        let k = sample_size.min(n);
        let mut reservoir: Vec<u32> = (0..k as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for row in k..n {
            let j = rng.random_range(0..=row);
            if j < k {
                reservoir[j] = row as u32;
            }
        }
        TableSample {
            rows: reservoir,
            table_rows: n,
        }
    }

    /// Sampled row ids.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the sample is empty (source table was empty).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows in the sampled table.
    pub fn table_rows(&self) -> usize {
        self.table_rows
    }

    /// Scale factor from sample counts to table counts
    /// (`table_rows / sample_rows`).
    pub fn scale_factor(&self) -> f64 {
        if self.rows.is_empty() {
            1.0
        } else {
            self.table_rows as f64 / self.rows.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;
    use zsdb_catalog::{DataType, Value};

    fn table_with_rows(n: usize) -> TableData {
        let mut col = ColumnData::new(DataType::Int);
        for i in 0..n {
            col.push(Value::Int(i as i64));
        }
        TableData::from_columns(vec![col])
    }

    #[test]
    fn sample_is_without_replacement() {
        let table = table_with_rows(1000);
        let sample = TableSample::draw(&table, 100, 42);
        assert_eq!(sample.len(), 100);
        let mut rows = sample.rows().to_vec();
        rows.sort_unstable();
        rows.dedup();
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| (*r as usize) < 1000));
    }

    #[test]
    fn sample_smaller_table_takes_all_rows() {
        let table = table_with_rows(10);
        let sample = TableSample::draw(&table, 100, 1);
        assert_eq!(sample.len(), 10);
        assert!((sample.scale_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic() {
        let table = table_with_rows(500);
        let a = TableSample::draw(&table, 50, 7);
        let b = TableSample::draw(&table, 50, 7);
        assert_eq!(a, b);
        let c = TableSample::draw(&table, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn scale_factor() {
        let table = table_with_rows(1000);
        let sample = TableSample::draw(&table, 100, 42);
        assert!((sample.scale_factor() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_sample() {
        let table = table_with_rows(0);
        let sample = TableSample::draw(&table, 10, 0);
        assert!(sample.is_empty());
        assert_eq!(sample.scale_factor(), 1.0);
    }
}
