//! Typed columnar arrays with a null bitmap.

use zsdb_catalog::{DataType, Value};

/// A single column's data.
///
/// Values and the null bitmap are stored as parallel vectors; a `true` in
/// `nulls[i]` means row `i` is NULL and the corresponding slot in `values`
/// is a placeholder that must not be interpreted.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers (also dates as days-since-epoch).
    Int {
        /// Row values.
        values: Vec<i64>,
        /// Null bitmap.
        nulls: Vec<bool>,
    },
    /// 64-bit floats.
    Float {
        /// Row values.
        values: Vec<f64>,
        /// Null bitmap.
        nulls: Vec<bool>,
    },
    /// Dictionary-encoded categorical codes.
    Cat {
        /// Row values (dictionary codes).
        values: Vec<u32>,
        /// Null bitmap.
        nulls: Vec<bool>,
        /// Size of the dictionary (codes are `< domain`).
        domain: u32,
    },
    /// Booleans.
    Bool {
        /// Row values.
        values: Vec<bool>,
        /// Null bitmap.
        nulls: Vec<bool>,
    },
}

impl ColumnData {
    /// Create an empty column of the given logical type.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int | DataType::Date => ColumnData::Int {
                values: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Float => ColumnData::Float {
                values: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Categorical => ColumnData::Cat {
                values: Vec::new(),
                nulls: Vec::new(),
                domain: 0,
            },
            DataType::Bool => ColumnData::Bool {
                values: Vec::new(),
                nulls: Vec::new(),
            },
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Cat { values, .. } => values.len(),
            ColumnData::Bool { values, .. } => values.len(),
        }
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `row` (bounds-checked; panics on out-of-range rows).
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Int { values, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Int(values[row])
                }
            }
            ColumnData::Float { values, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Float(values[row])
                }
            }
            ColumnData::Cat { values, nulls, .. } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Cat(values[row])
                }
            }
            ColumnData::Bool { values, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Bool(values[row])
                }
            }
        }
    }

    /// `true` if row `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            ColumnData::Int { nulls, .. } => nulls[row],
            ColumnData::Float { nulls, .. } => nulls[row],
            ColumnData::Cat { nulls, .. } => nulls[row],
            ColumnData::Bool { nulls, .. } => nulls[row],
        }
    }

    /// Numeric view of a row (see [`Value::as_f64`]); `None` for NULL.
    pub fn as_f64(&self, row: usize) -> Option<f64> {
        match self {
            ColumnData::Int { values, nulls } => (!nulls[row]).then(|| values[row] as f64),
            ColumnData::Float { values, nulls } => (!nulls[row]).then(|| values[row]),
            ColumnData::Cat { values, nulls, .. } => (!nulls[row]).then(|| values[row] as f64),
            ColumnData::Bool { values, nulls } => {
                (!nulls[row]).then(|| if values[row] { 1.0 } else { 0.0 })
            }
        }
    }

    /// Join-key view of a row: an integer key usable by hash joins, `None`
    /// for NULL.  Float columns are not valid join keys in this workspace.
    pub fn join_key(&self, row: usize) -> Option<i64> {
        match self {
            ColumnData::Int { values, nulls } => (!nulls[row]).then(|| values[row]),
            ColumnData::Cat { values, nulls, .. } => (!nulls[row]).then(|| values[row] as i64),
            ColumnData::Bool { values, nulls } => (!nulls[row]).then(|| values[row] as i64),
            ColumnData::Float { .. } => None,
        }
    }

    /// Append a value; the value's type must match the column type (NULLs
    /// are always accepted).
    pub fn push(&mut self, value: Value) {
        match (self, value) {
            (ColumnData::Int { values, nulls }, Value::Int(v)) => {
                values.push(v);
                nulls.push(false);
            }
            (ColumnData::Int { values, nulls }, Value::Null) => {
                values.push(0);
                nulls.push(true);
            }
            (ColumnData::Float { values, nulls }, Value::Float(v)) => {
                values.push(v);
                nulls.push(false);
            }
            (ColumnData::Float { values, nulls }, Value::Null) => {
                values.push(0.0);
                nulls.push(true);
            }
            (
                ColumnData::Cat {
                    values,
                    nulls,
                    domain,
                },
                Value::Cat(v),
            ) => {
                values.push(v);
                nulls.push(false);
                *domain = (*domain).max(v + 1);
            }
            (ColumnData::Cat { values, nulls, .. }, Value::Null) => {
                values.push(0);
                nulls.push(true);
            }
            (ColumnData::Bool { values, nulls }, Value::Bool(v)) => {
                values.push(v);
                nulls.push(false);
            }
            (ColumnData::Bool { values, nulls }, Value::Null) => {
                values.push(false);
                nulls.push(true);
            }
            (col, value) => panic!(
                "type mismatch pushing {value:?} into a {:?} column",
                col.data_type()
            ),
        }
    }

    /// Logical data type of this column (Date is reported as Int since the
    /// physical representation is identical).
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int { .. } => DataType::Int,
            ColumnData::Float { .. } => DataType::Float,
            ColumnData::Cat { .. } => DataType::Categorical,
            ColumnData::Bool { .. } => DataType::Bool,
        }
    }

    /// Copy rows `[start, start + len)` into a fresh column of the same
    /// type — the batch-slice primitive of the vectorized executor.  Panics
    /// if the range is out of bounds.
    pub fn slice_range(&self, start: usize, len: usize) -> ColumnData {
        let end = start + len;
        match self {
            ColumnData::Int { values, nulls } => ColumnData::Int {
                values: values[start..end].to_vec(),
                nulls: nulls[start..end].to_vec(),
            },
            ColumnData::Float { values, nulls } => ColumnData::Float {
                values: values[start..end].to_vec(),
                nulls: nulls[start..end].to_vec(),
            },
            ColumnData::Cat {
                values,
                nulls,
                domain,
            } => ColumnData::Cat {
                values: values[start..end].to_vec(),
                nulls: nulls[start..end].to_vec(),
                domain: *domain,
            },
            ColumnData::Bool { values, nulls } => ColumnData::Bool {
                values: values[start..end].to_vec(),
                nulls: nulls[start..end].to_vec(),
            },
        }
    }

    /// Gather the given rows into a fresh column of the same type (index
    /// scans fetching matched rows, joins materialising match lists).
    pub fn gather(&self, rows: &[u32]) -> ColumnData {
        let mut out = ColumnData::new(self.data_type());
        out.append_gather(self, rows);
        out
    }

    /// Append the given rows of `src` to this column.  Both columns must
    /// have the same physical type (panics otherwise — programmer error);
    /// categorical domains are merged.
    pub fn append_gather(&mut self, src: &ColumnData, rows: &[u32]) {
        match (self, src) {
            (
                ColumnData::Int { values, nulls },
                ColumnData::Int {
                    values: sv,
                    nulls: sn,
                },
            ) => {
                values.extend(rows.iter().map(|&r| sv[r as usize]));
                nulls.extend(rows.iter().map(|&r| sn[r as usize]));
            }
            (
                ColumnData::Float { values, nulls },
                ColumnData::Float {
                    values: sv,
                    nulls: sn,
                },
            ) => {
                values.extend(rows.iter().map(|&r| sv[r as usize]));
                nulls.extend(rows.iter().map(|&r| sn[r as usize]));
            }
            (
                ColumnData::Cat {
                    values,
                    nulls,
                    domain,
                },
                ColumnData::Cat {
                    values: sv,
                    nulls: sn,
                    domain: sd,
                },
            ) => {
                values.extend(rows.iter().map(|&r| sv[r as usize]));
                nulls.extend(rows.iter().map(|&r| sn[r as usize]));
                *domain = (*domain).max(*sd);
            }
            (
                ColumnData::Bool { values, nulls },
                ColumnData::Bool {
                    values: sv,
                    nulls: sn,
                },
            ) => {
                values.extend(rows.iter().map(|&r| sv[r as usize]));
                nulls.extend(rows.iter().map(|&r| sn[r as usize]));
            }
            (dst, src) => panic!(
                "append_gather between mismatched column types {:?} and {:?}",
                dst.data_type(),
                src.data_type()
            ),
        }
    }

    /// Write the numeric view (see [`ColumnData::as_f64`]) and null mask of
    /// rows `[start, start + len)` into the given scratch vectors, which are
    /// cleared first.  This is the column-at-a-time input of vectorized
    /// predicate evaluation and aggregation: one typed pass, no per-row
    /// enum materialisation.
    pub fn f64_range_into(
        &self,
        start: usize,
        len: usize,
        values_out: &mut Vec<f64>,
        nulls_out: &mut Vec<bool>,
    ) {
        values_out.clear();
        nulls_out.clear();
        let end = start + len;
        match self {
            ColumnData::Int { values, nulls } => {
                values_out.extend(values[start..end].iter().map(|&v| v as f64));
                nulls_out.extend_from_slice(&nulls[start..end]);
            }
            ColumnData::Float { values, nulls } => {
                values_out.extend_from_slice(&values[start..end]);
                nulls_out.extend_from_slice(&nulls[start..end]);
            }
            ColumnData::Cat { values, nulls, .. } => {
                values_out.extend(values[start..end].iter().map(|&v| v as f64));
                nulls_out.extend_from_slice(&nulls[start..end]);
            }
            ColumnData::Bool { values, nulls } => {
                values_out.extend(
                    values[start..end]
                        .iter()
                        .map(|&v| if v { 1.0 } else { 0.0 }),
                );
                nulls_out.extend_from_slice(&nulls[start..end]);
            }
        }
    }

    /// Number of non-null rows.
    pub fn non_null_count(&self) -> usize {
        let nulls = match self {
            ColumnData::Int { nulls, .. } => nulls,
            ColumnData::Float { nulls, .. } => nulls,
            ColumnData::Cat { nulls, .. } => nulls,
            ColumnData::Bool { nulls, .. } => nulls,
        };
        nulls.iter().filter(|n| !**n).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut col = ColumnData::new(DataType::Int);
        col.push(Value::Int(5));
        col.push(Value::Null);
        col.push(Value::Int(-3));
        assert_eq!(col.len(), 3);
        assert_eq!(col.get(0), Value::Int(5));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::Int(-3));
        assert!(col.is_null(1));
        assert_eq!(col.non_null_count(), 2);
    }

    #[test]
    fn categorical_tracks_domain() {
        let mut col = ColumnData::new(DataType::Categorical);
        col.push(Value::Cat(2));
        col.push(Value::Cat(7));
        col.push(Value::Null);
        match col {
            ColumnData::Cat { domain, .. } => assert_eq!(domain, 8),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn join_keys() {
        let mut col = ColumnData::new(DataType::Int);
        col.push(Value::Int(42));
        col.push(Value::Null);
        assert_eq!(col.join_key(0), Some(42));
        assert_eq!(col.join_key(1), None);

        let mut fcol = ColumnData::new(DataType::Float);
        fcol.push(Value::Float(1.5));
        assert_eq!(fcol.join_key(0), None);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut col = ColumnData::new(DataType::Int);
        col.push(Value::Float(1.0));
    }

    #[test]
    fn date_columns_are_int_backed() {
        let col = ColumnData::new(DataType::Date);
        assert_eq!(col.data_type(), DataType::Int);
        assert!(col.is_empty());
    }

    #[test]
    fn as_f64_views() {
        let mut col = ColumnData::new(DataType::Bool);
        col.push(Value::Bool(true));
        col.push(Value::Bool(false));
        assert_eq!(col.as_f64(0), Some(1.0));
        assert_eq!(col.as_f64(1), Some(0.0));
    }

    #[test]
    fn slice_range_copies_the_window() {
        let mut col = ColumnData::new(DataType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3), Value::Int(4)] {
            col.push(v);
        }
        let slice = col.slice_range(1, 2);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice.get(0), Value::Null);
        assert_eq!(slice.get(1), Value::Int(3));
    }

    #[test]
    fn gather_reorders_and_repeats_rows() {
        let mut col = ColumnData::new(DataType::Categorical);
        col.push(Value::Cat(5));
        col.push(Value::Null);
        col.push(Value::Cat(9));
        let gathered = col.gather(&[2, 0, 2]);
        assert_eq!(gathered.get(0), Value::Cat(9));
        assert_eq!(gathered.get(1), Value::Cat(5));
        assert_eq!(gathered.get(2), Value::Cat(9));
        match gathered {
            ColumnData::Cat { domain, .. } => assert_eq!(domain, 10),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn append_gather_accumulates_across_batches() {
        let mut a = ColumnData::new(DataType::Float);
        a.push(Value::Float(1.5));
        let mut b = ColumnData::new(DataType::Float);
        b.push(Value::Float(2.5));
        b.push(Value::Null);
        let mut out = ColumnData::new(DataType::Float);
        out.append_gather(&a, &[0]);
        out.append_gather(&b, &[1, 0]);
        assert_eq!(out.len(), 3);
        assert_eq!(out.get(0), Value::Float(1.5));
        assert_eq!(out.get(1), Value::Null);
        assert_eq!(out.get(2), Value::Float(2.5));
    }

    #[test]
    #[should_panic(expected = "append_gather between mismatched")]
    fn append_gather_rejects_mismatched_types() {
        let mut a = ColumnData::new(DataType::Int);
        let b = ColumnData::new(DataType::Float);
        a.append_gather(&b, &[]);
    }

    #[test]
    fn f64_range_matches_per_row_view() {
        let mut col = ColumnData::new(DataType::Bool);
        for v in [Value::Bool(true), Value::Null, Value::Bool(false)] {
            col.push(v);
        }
        let (mut values, mut nulls) = (Vec::new(), Vec::new());
        col.f64_range_into(0, 3, &mut values, &mut nulls);
        for row in 0..3 {
            assert_eq!((!nulls[row]).then_some(values[row]), col.as_f64(row));
        }
    }
}
