//! Deterministic synthetic data generation.
//!
//! The generator realises the [`Distribution`] specifications stored in the
//! catalog: primary keys become dense sequences, foreign keys reference the
//! parent key domain (optionally with Zipf skew so some parents have many
//! children), and attribute columns follow uniform, normal or Zipf
//! distributions over their declared `[min, max]` domain with the declared
//! null fraction.
//!
//! Everything is seeded, so `(catalog, seed)` always produces the same
//! database — a requirement for reproducible experiments.

use crate::column::ColumnData;
use crate::table::TableData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zsdb_catalog::{ColumnMeta, DataType, Distribution, SchemaCatalog, Value};

/// Maximum number of distinct ranks for which a Zipf CDF is materialised.
/// Larger domains are truncated; beyond this many ranks the tail
/// probabilities are negligible anyway.
const MAX_ZIPF_DOMAIN: u64 = 200_000;

/// Deterministic data generator.
#[derive(Debug, Clone)]
pub struct DataGenerator {
    seed: u64,
}

impl DataGenerator {
    /// Create a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        DataGenerator { seed }
    }

    /// Generate data for every table of the catalog, in table-id order.
    pub fn generate(&self, catalog: &SchemaCatalog) -> Vec<TableData> {
        catalog
            .iter_tables()
            .map(|(tid, table)| {
                // Per-table seed so adding tables does not shift other
                // tables' data.
                let table_seed = self
                    .seed
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(tid.0 as u64 + 1);
                let mut rng = StdRng::seed_from_u64(table_seed);
                let columns = table
                    .columns
                    .iter()
                    .map(|col| generate_column(&mut rng, col, table.num_tuples as usize))
                    .collect();
                TableData::from_columns(columns)
            })
            .collect()
    }
}

/// Generate one column of `rows` values according to its metadata.
fn generate_column(rng: &mut StdRng, col: &ColumnMeta, rows: usize) -> ColumnData {
    let mut data = ColumnData::new(col.data_type);
    let stats = &col.stats;
    let null_fraction = stats.null_fraction.clamp(0.0, 1.0);

    // Precompute a Zipf CDF when needed.
    let zipf_cdf = match stats.distribution {
        Distribution::Zipf { skew } | Distribution::ForeignKeyZipf { skew } => {
            let domain = stats.distinct_count.clamp(1, MAX_ZIPF_DOMAIN) as usize;
            Some(zipf_cdf(domain, skew))
        }
        _ => None,
    };
    // Per-column shuffle multiplier for skewed foreign keys so that the
    // "hot" parent keys of different child columns/tables do not coincide.
    // Without this, multi-way star joins would blow up multiplicatively
    // (the same parent would be hot in every satellite table).
    let parent_domain = stats.distinct_count.max(1);
    let fk_shuffle: u64 = rng.random_range(1..=parent_domain.max(2)) | 1;
    let fk_offset: u64 = rng.random_range(0..parent_domain.max(2));

    for row in 0..rows {
        if col.is_primary_key {
            data.push(Value::Int(row as i64));
            continue;
        }
        if null_fraction > 0.0 && rng.random_bool(null_fraction) {
            data.push(Value::Null);
            continue;
        }
        let value = match stats.distribution {
            Distribution::Sequential => raw_to_value(col, row as f64),
            Distribution::Uniform => {
                let distinct = stats.distinct_count.max(1);
                let rank = rng.random_range(0..distinct);
                rank_to_value(col, rank, distinct)
            }
            Distribution::Zipf { .. } => {
                let cdf = zipf_cdf.as_ref().expect("cdf prepared above");
                let rank = sample_from_cdf(rng, cdf) as u64;
                rank_to_value(col, rank, stats.distinct_count.max(1))
            }
            Distribution::Normal { spread } => {
                let (lo, hi) = domain_bounds(col);
                let mid = (lo + hi) / 2.0;
                let sd = ((hi - lo) * spread).max(1e-9);
                let raw = (mid + sd * standard_normal(rng)).clamp(lo, hi);
                raw_to_value(col, raw)
            }
            Distribution::ForeignKeyUniform => {
                let parent_rows = stats.distinct_count.max(1);
                Value::Int(rng.random_range(0..parent_rows) as i64)
            }
            Distribution::ForeignKeyZipf { .. } => {
                let cdf = zipf_cdf.as_ref().expect("cdf prepared above");
                // Shuffle rank→key with a per-column odd multiplier so the
                // most frequent parent differs between child columns.
                let parent_rows = stats.distinct_count.max(1);
                let rank = sample_from_cdf(rng, cdf) as u64;
                let key = rank
                    .wrapping_mul(2_654_435_761)
                    .wrapping_add(fk_shuffle.wrapping_mul(rank))
                    .wrapping_add(fk_offset)
                    % parent_rows;
                Value::Int(key as i64)
            }
        };
        data.push(value);
    }
    data
}

fn domain_bounds(col: &ColumnMeta) -> (f64, f64) {
    let lo = col.stats.min.unwrap_or(0.0);
    let hi = col.stats.max.unwrap_or(lo + 1.0);
    if hi > lo {
        (lo, hi)
    } else {
        (lo, lo + 1.0)
    }
}

/// Map a rank in `0..distinct` to a concrete value in the column's domain.
fn rank_to_value(col: &ColumnMeta, rank: u64, distinct: u64) -> Value {
    match col.data_type {
        DataType::Categorical => Value::Cat(rank as u32),
        DataType::Bool => Value::Bool(rank % 2 == 1),
        _ => {
            let (lo, hi) = domain_bounds(col);
            let frac = if distinct <= 1 {
                0.0
            } else {
                rank as f64 / (distinct - 1) as f64
            };
            raw_to_value(col, lo + frac * (hi - lo))
        }
    }
}

/// Convert a raw f64 into the column's value type.
fn raw_to_value(col: &ColumnMeta, raw: f64) -> Value {
    match col.data_type {
        DataType::Int | DataType::Date => Value::Int(raw.round() as i64),
        DataType::Float => Value::Float(raw),
        DataType::Categorical => Value::Cat(raw.round().max(0.0) as u32),
        DataType::Bool => Value::Bool(raw >= 0.5),
    }
}

/// Cumulative distribution of a Zipf law over `domain` ranks.
fn zipf_cdf(domain: usize, skew: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (1..=domain).map(|r| 1.0 / (r as f64).powf(skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    if let Some(last) = weights.last_mut() {
        *last = 1.0;
    }
    weights
}

/// Draw a rank from a CDF via binary search.
fn sample_from_cdf(rng: &mut StdRng, cdf: &[f64]) -> usize {
    let u: f64 = rng.random();
    cdf.partition_point(|p| *p < u).min(cdf.len() - 1)
}

/// Standard normal sample via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{GeneratorConfig, SchemaGenerator};

    fn small_catalog() -> SchemaCatalog {
        SchemaGenerator::new(GeneratorConfig::tiny()).generate("db", 3)
    }

    #[test]
    fn generation_is_deterministic() {
        let catalog = small_catalog();
        let a = DataGenerator::new(9).generate(&catalog);
        let b = DataGenerator::new(9).generate(&catalog);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let catalog = small_catalog();
        let a = DataGenerator::new(1).generate(&catalog);
        let b = DataGenerator::new(2).generate(&catalog);
        assert_ne!(a, b);
    }

    #[test]
    fn row_counts_match_catalog() {
        let catalog = small_catalog();
        let data = DataGenerator::new(5).generate(&catalog);
        for (tid, table) in catalog.iter_tables() {
            assert_eq!(data[tid.index()].num_rows() as u64, table.num_tuples);
            assert_eq!(data[tid.index()].num_columns(), table.num_columns());
        }
    }

    #[test]
    fn primary_keys_are_dense_sequences() {
        let catalog = small_catalog();
        let data = DataGenerator::new(5).generate(&catalog);
        for (tid, table) in catalog.iter_tables() {
            let (pk, _) = table.primary_key().unwrap();
            let col = data[tid.index()].column(pk);
            for row in 0..col.len().min(100) {
                assert_eq!(col.get(row), Value::Int(row as i64));
            }
        }
    }

    #[test]
    fn foreign_keys_stay_in_parent_domain() {
        let catalog = small_catalog();
        let data = DataGenerator::new(5).generate(&catalog);
        for fk in catalog.foreign_keys() {
            let parent_rows = catalog.table(fk.parent.table).num_tuples as i64;
            let col = data[fk.child.table.index()].column(fk.child.column);
            for row in 0..col.len() {
                if let Value::Int(v) = col.get(row) {
                    assert!(v >= 0 && v < parent_rows, "fk value {v} out of range");
                }
            }
        }
    }

    #[test]
    fn null_fractions_are_respected_roughly() {
        let catalog = small_catalog();
        let data = DataGenerator::new(5).generate(&catalog);
        for (tid, table) in catalog.iter_tables() {
            for (cid, col_meta) in table.columns.iter().enumerate() {
                let col = data[tid.index()].column(zsdb_catalog::ColumnId(cid as u32));
                let declared = col_meta.stats.null_fraction;
                let observed = 1.0 - col.non_null_count() as f64 / col.len().max(1) as f64;
                assert!(
                    (observed - declared).abs() < 0.15,
                    "null fraction off: declared {declared}, observed {observed}"
                );
            }
        }
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalised() {
        let cdf = zipf_cdf(100, 1.2);
        assert_eq!(cdf.len(), 100);
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
