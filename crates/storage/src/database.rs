//! A fully materialised database: catalog + data + indexes.

use crate::datagen::DataGenerator;
use crate::index::BTreeIndex;
use crate::table::TableData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zsdb_catalog::{ColumnRef, SchemaCatalog, TableId};

/// Identifier of an index within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub u32);

/// A materialised database the engine can plan against and execute on.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: SchemaCatalog,
    tables: Vec<TableData>,
    indexes: Vec<BTreeIndex>,
}

impl Database {
    /// Generate a database from a catalog with the given data seed.
    pub fn generate(catalog: SchemaCatalog, seed: u64) -> Self {
        let tables = DataGenerator::new(seed).generate(&catalog);
        Database {
            catalog,
            tables,
            indexes: Vec::new(),
        }
    }

    /// Build a database from already-materialised tables (mainly for tests).
    pub fn from_parts(catalog: SchemaCatalog, tables: Vec<TableData>) -> Self {
        assert_eq!(
            catalog.num_tables(),
            tables.len(),
            "one TableData per catalog table required"
        );
        Database {
            catalog,
            tables,
            indexes: Vec::new(),
        }
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    /// Data of the given table.
    pub fn table_data(&self, table: TableId) -> &TableData {
        &self.tables[table.index()]
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[BTreeIndex] {
        &self.indexes
    }

    /// Index by id.
    // Deliberately named like a lookup, not `std::ops::Index` (which cannot
    // take an `IndexId` ergonomically here).
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, id: IndexId) -> &BTreeIndex {
        &self.indexes[id.0 as usize]
    }

    /// Create a secondary index on `column`; returns its id.  Creating a
    /// duplicate index returns the existing id (idempotent).
    pub fn create_index(&mut self, column: ColumnRef) -> IndexId {
        if let Some(existing) = self.index_on(column) {
            return existing;
        }
        let table_name = &self.catalog.table(column.table).name;
        let column_name = &self.catalog.column(column).name;
        let name = format!("idx_{table_name}_{column_name}");
        let data = self.tables[column.table.index()].column(column.column);
        let index = BTreeIndex::build(name, column, data);
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(index);
        id
    }

    /// Drop all secondary indexes (used between what-if scenarios).
    pub fn drop_all_indexes(&mut self) {
        self.indexes.clear();
    }

    /// Drop the index on `column`, if one exists.  Returns `true` if an
    /// index was removed.
    pub fn drop_index(&mut self, column: ColumnRef) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|idx| idx.column != column);
        self.indexes.len() != before
    }

    /// The id of an existing index on `column`, if any.
    pub fn index_on(&self, column: ColumnRef) -> Option<IndexId> {
        self.indexes
            .iter()
            .position(|idx| idx.column == column)
            .map(|i| IndexId(i as u32))
    }

    /// Create indexes on every primary-key column (mirrors the implicit PK
    /// indexes of a real system).
    pub fn create_primary_key_indexes(&mut self) -> Vec<IndexId> {
        let pk_columns: Vec<ColumnRef> = self
            .catalog
            .iter_tables()
            .filter_map(|(tid, t)| t.primary_key().map(|(cid, _)| ColumnRef::new(tid, cid)))
            .collect();
        pk_columns
            .into_iter()
            .map(|c| self.create_index(c))
            .collect()
    }

    /// Create a random-but-fixed set of secondary indexes on non-key
    /// attribute columns, as the paper does for index-what-if training data
    /// ("we additionally created a random but fixed set of indexes per
    /// database").  Returns the chosen columns.
    pub fn create_random_indexes(&mut self, count: usize, seed: u64) -> Vec<ColumnRef> {
        let mut candidates: Vec<ColumnRef> = Vec::new();
        for (tid, table) in self.catalog.iter_tables() {
            for (i, col) in table.columns.iter().enumerate() {
                let r = ColumnRef::new(tid, zsdb_catalog::ColumnId(i as u32));
                let is_fk = self.catalog.foreign_keys().iter().any(|fk| fk.child == r);
                if !col.is_primary_key && !is_fk && col.data_type.is_orderable() {
                    candidates.push(r);
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chosen = Vec::new();
        for _ in 0..count.min(candidates.len()) {
            let pick = rng.random_range(0..candidates.len());
            let column = candidates.swap_remove(pick);
            self.create_index(column);
            chosen.push(column);
        }
        chosen
    }

    /// Approximate total heap size of the database in bytes (used for
    /// reporting and memory-pressure modelling).
    pub fn heap_size_bytes(&self) -> u64 {
        self.catalog
            .iter_tables()
            .map(|(_, t)| t.num_pages() * zsdb_catalog::PAGE_SIZE_BYTES)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{presets, GeneratorConfig, SchemaGenerator};

    fn tiny_db() -> Database {
        let catalog = SchemaGenerator::new(GeneratorConfig::tiny()).generate("db", 11);
        Database::generate(catalog, 7)
    }

    #[test]
    fn generate_matches_catalog() {
        let db = tiny_db();
        for (tid, table) in db.catalog().iter_tables() {
            assert_eq!(db.table_data(tid).num_rows() as u64, table.num_tuples);
        }
        assert!(db.heap_size_bytes() > 0);
    }

    #[test]
    fn index_creation_is_idempotent() {
        let mut db = tiny_db();
        let (tid, table) = db.catalog().iter_tables().next().unwrap();
        let (pk, _) = table.primary_key().unwrap();
        let col = ColumnRef::new(tid, pk);
        let a = db.create_index(col);
        let b = db.create_index(col);
        assert_eq!(a, b);
        assert_eq!(db.indexes().len(), 1);
        assert_eq!(db.index_on(col), Some(a));
    }

    #[test]
    fn primary_key_indexes_cover_all_tables() {
        let mut db = tiny_db();
        let ids = db.create_primary_key_indexes();
        assert_eq!(ids.len(), db.catalog().num_tables());
    }

    #[test]
    fn random_indexes_avoid_keys() {
        let catalog = presets::imdb_like(0.02);
        let mut db = Database::generate(catalog, 3);
        let chosen = db.create_random_indexes(4, 99);
        assert!(!chosen.is_empty());
        for c in &chosen {
            let col = db.catalog().column(*c);
            assert!(!col.is_primary_key);
            assert!(db.index_on(*c).is_some());
        }
        // Deterministic with the same seed.
        let catalog2 = presets::imdb_like(0.02);
        let mut db2 = Database::generate(catalog2, 3);
        let chosen2 = db2.create_random_indexes(4, 99);
        assert_eq!(chosen, chosen2);
    }

    #[test]
    fn drop_all_indexes() {
        let mut db = tiny_db();
        db.create_primary_key_indexes();
        assert!(!db.indexes().is_empty());
        db.drop_all_indexes();
        assert!(db.indexes().is_empty());
    }
}
