//! Secondary indexes.
//!
//! The engine only needs ordered point/range lookups and a few physical
//! characteristics (height, leaf page count) for costing and what-if
//! featurization, so the index is a sorted array of `(key, row)` pairs with
//! binary-search lookups — the access pattern and work counters are the same
//! as for a read-only B+-tree.

use crate::column::ColumnData;
use zsdb_catalog::{ColumnRef, PAGE_SIZE_BYTES};

/// Number of `(key, row)` entries that fit into one index leaf page
/// (8-byte key + 4-byte row pointer + overhead).
const ENTRIES_PER_LEAF: u64 = PAGE_SIZE_BYTES / 16;

/// Fan-out assumed for inner nodes when estimating index height.
const INNER_FANOUT: f64 = 256.0;

/// A read-only ordered secondary index over one column.
#[derive(Debug, Clone, PartialEq)]
pub struct BTreeIndex {
    /// Indexed column.
    pub column: ColumnRef,
    /// Diagnostic name, e.g. `"idx_title_production_year"`.
    pub name: String,
    /// `(key, row)` pairs sorted by key; NULL rows are not indexed.
    entries: Vec<(f64, u32)>,
}

impl BTreeIndex {
    /// Build an index over `column_data` for the given column reference.
    /// NULL values are skipped (as in PostgreSQL, NULLs are not returned by
    /// range scans).
    pub fn build(name: impl Into<String>, column: ColumnRef, column_data: &ColumnData) -> Self {
        let mut entries: Vec<(f64, u32)> = (0..column_data.len())
            .filter_map(|row| column_data.as_f64(row).map(|k| (k, row as u32)))
            .collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        BTreeIndex {
            column,
            name: name.into(),
            entries,
        }
    }

    /// Number of indexed (non-null) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Row ids whose key lies in `[lo, hi]` (both optional → half-open /
    /// full scans).  Returned in key order.
    pub fn range(&self, lo: Option<f64>, hi: Option<f64>) -> Vec<u32> {
        let start = match lo {
            Some(lo) => self.entries.partition_point(|(k, _)| *k < lo),
            None => 0,
        };
        let end = match hi {
            Some(hi) => self.entries.partition_point(|(k, _)| *k <= hi),
            None => self.entries.len(),
        };
        self.entries[start..end.max(start)]
            .iter()
            .map(|(_, row)| *row)
            .collect()
    }

    /// Row ids with key exactly equal to `key`.
    pub fn lookup(&self, key: f64) -> Vec<u32> {
        self.range(Some(key), Some(key))
    }

    /// Number of leaf pages the index occupies.
    pub fn leaf_pages(&self) -> u64 {
        (self.entries.len() as u64)
            .div_ceil(ENTRIES_PER_LEAF)
            .max(1)
    }

    /// Estimated height of an equivalent B+-tree (root = height 1); used as
    /// an index characteristic feature for what-if costing.
    pub fn height(&self) -> u32 {
        let mut nodes = self.leaf_pages() as f64;
        let mut height = 1u32;
        while nodes > 1.0 {
            nodes = (nodes / INNER_FANOUT).ceil();
            height += 1;
        }
        height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{ColumnId, DataType, TableId, Value};

    fn column_with(values: &[Option<i64>]) -> ColumnData {
        let mut col = ColumnData::new(DataType::Int);
        for v in values {
            match v {
                Some(v) => col.push(Value::Int(*v)),
                None => col.push(Value::Null),
            }
        }
        col
    }

    fn colref() -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(1))
    }

    #[test]
    fn range_lookup_returns_matching_rows() {
        let col = column_with(&[Some(5), Some(1), Some(3), Some(9), Some(3)]);
        let idx = BTreeIndex::build("idx", colref(), &col);
        assert_eq!(idx.len(), 5);
        let rows = idx.range(Some(2.0), Some(5.0));
        // keys 3 (rows 2 and 4), 5 (row 0)
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&0) && rows.contains(&2) && rows.contains(&4));
    }

    #[test]
    fn nulls_are_not_indexed() {
        let col = column_with(&[Some(1), None, Some(2)]);
        let idx = BTreeIndex::build("idx", colref(), &col);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.range(None, None).len(), 2);
    }

    #[test]
    fn point_lookup() {
        let col = column_with(&[Some(7), Some(7), Some(8)]);
        let idx = BTreeIndex::build("idx", colref(), &col);
        assert_eq!(idx.lookup(7.0), vec![0, 1]);
        assert!(idx.lookup(6.0).is_empty());
    }

    #[test]
    fn open_ended_ranges() {
        let col = column_with(&[Some(1), Some(2), Some(3)]);
        let idx = BTreeIndex::build("idx", colref(), &col);
        assert_eq!(idx.range(Some(2.0), None).len(), 2);
        assert_eq!(idx.range(None, Some(1.0)).len(), 1);
        assert_eq!(idx.range(None, None).len(), 3);
    }

    #[test]
    fn height_grows_with_size() {
        let small = BTreeIndex::build("s", colref(), &column_with(&[Some(1); 10]));
        assert_eq!(small.height(), 1);
        let mut values = Vec::new();
        for i in 0..200_000i64 {
            values.push(Some(i));
        }
        let large = BTreeIndex::build("l", colref(), &column_with(&values));
        assert!(large.height() >= 2);
        assert!(large.leaf_pages() > small.leaf_pages());
    }

    #[test]
    fn empty_range_when_bounds_cross() {
        let col = column_with(&[Some(1), Some(2)]);
        let idx = BTreeIndex::build("idx", colref(), &col);
        assert!(idx.range(Some(5.0), Some(3.0)).is_empty());
    }
}
