//! # zsdb-query
//!
//! Logical query representation and workload generation.
//!
//! Queries are select-project-join-aggregate (SPJA) blocks over a
//! [`zsdb_catalog::SchemaCatalog`]: a set of tables connected by
//! foreign-key equi-joins, conjunctive filter predicates and a list of
//! aggregates — exactly the query class used in the paper's evaluation
//! ("up to five-way joins with up to five numerical and categorical
//! predicates and up to three aggregates").
//!
//! The crate contains:
//!
//! * [`Query`], [`Predicate`], [`Aggregate`] — the logical representation,
//! * [`WorkloadGenerator`] — the randomized training-workload generator,
//! * [`benchmarks`] — deterministic *scale*, *synthetic* and *JOB-light*
//!   style evaluation workloads over the IMDB-like schema,
//! * [`sql`] — SQL rendering for diagnostics and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod expr;
pub mod generator;
pub mod query;
pub mod sql;

pub use benchmarks::{BenchmarkWorkload, WorkloadKind};
pub use expr::{AggFunc, Aggregate, CmpOp, Predicate};
pub use generator::{WorkloadGenerator, WorkloadSpec};
pub use query::{JoinCondition, Query};
