//! Randomized workload generation.
//!
//! The paper's training workloads consist of randomly generated queries
//! covering "up to five-way joins with up to five numerical and categorical
//! predicates and up to three aggregates"; 5,000 such queries are executed
//! per training database.  [`WorkloadGenerator`] reproduces that query
//! class for an arbitrary schema by random-walking the foreign-key graph
//! and drawing predicates from the catalog's column domains.

use crate::expr::{legal_operators, AggFunc, Aggregate, CmpOp, Predicate};
use crate::query::{JoinCondition, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use zsdb_catalog::{ColumnId, ColumnRef, DataType, SchemaCatalog, TableId, Value};

/// Parameters of the random workload generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Maximum number of tables per query (a "5-way join" = 5 tables).
    pub max_tables: usize,
    /// Maximum number of filter predicates per query.
    pub max_predicates: usize,
    /// Maximum number of aggregates per query.
    pub max_aggregates: usize,
    /// Probability that a numeric predicate uses a range operator instead
    /// of equality.
    pub range_predicate_prob: f64,
    /// Probability that a query has no filter predicate at all.
    pub no_predicate_prob: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            max_tables: 5,
            max_predicates: 5,
            max_aggregates: 3,
            range_predicate_prob: 0.5,
            no_predicate_prob: 0.05,
        }
    }
}

impl WorkloadSpec {
    /// Specification matching the paper's training workloads (identical to
    /// the default; provided for readability at call sites).
    pub fn paper_training() -> Self {
        WorkloadSpec::default()
    }
}

/// Deterministic random workload generator over one schema.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
}

impl WorkloadGenerator {
    /// Create a generator with the given specification.
    pub fn new(spec: WorkloadSpec) -> Self {
        WorkloadGenerator { spec }
    }

    /// Generator with the paper's training specification.
    pub fn with_defaults() -> Self {
        WorkloadGenerator::new(WorkloadSpec::default())
    }

    /// Access the specification.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generate `count` queries over `catalog`, deterministic in `seed`.
    pub fn generate(&self, catalog: &SchemaCatalog, count: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| self.generate_one(catalog, &mut rng))
            .collect()
    }

    /// Generate a single query using the supplied RNG.
    pub fn generate_one(&self, catalog: &SchemaCatalog, rng: &mut StdRng) -> Query {
        let (tables, joins) = self.pick_join_tree(catalog, rng);
        let predicates = self.pick_predicates(catalog, &tables, rng);
        let aggregates = self.pick_aggregates(catalog, &tables, rng);
        Query {
            tables,
            joins,
            predicates,
            aggregates,
        }
    }

    /// Random-walk the FK graph starting from a random table, collecting a
    /// connected set of tables and the FK edges joining them.
    fn pick_join_tree(
        &self,
        catalog: &SchemaCatalog,
        rng: &mut StdRng,
    ) -> (Vec<TableId>, Vec<JoinCondition>) {
        let num_tables = catalog.num_tables();
        let start = TableId(rng.random_range(0..num_tables) as u32);
        let target = rng.random_range(1..=self.spec.max_tables.min(num_tables));

        let mut tables = vec![start];
        let mut joins = Vec::new();

        while tables.len() < target {
            // Candidate FK edges from any already-chosen table to a new one.
            let mut candidates = Vec::new();
            for &t in &tables {
                for fk in catalog.foreign_keys_of(t) {
                    let other = if fk.child.table == t {
                        fk.parent.table
                    } else {
                        fk.child.table
                    };
                    if !tables.contains(&other) {
                        candidates.push((*fk, other));
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            let (fk, other) = candidates[rng.random_range(0..candidates.len())];
            tables.push(other);
            joins.push(JoinCondition::new(fk.child, fk.parent));
        }
        (tables, joins)
    }

    fn pick_predicates(
        &self,
        catalog: &SchemaCatalog,
        tables: &[TableId],
        rng: &mut StdRng,
    ) -> Vec<Predicate> {
        if rng.random_bool(self.spec.no_predicate_prob) {
            return Vec::new();
        }
        // Candidate columns: non-key attribute columns of the chosen tables.
        let mut candidates: Vec<ColumnRef> = Vec::new();
        for &t in tables {
            let table = catalog.table(t);
            for (i, col) in table.columns.iter().enumerate() {
                let r = ColumnRef::new(t, ColumnId(i as u32));
                let is_fk = catalog.foreign_keys().iter().any(|fk| fk.child == r);
                if !col.is_primary_key && !is_fk {
                    candidates.push(r);
                }
            }
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        let count = rng.random_range(1..=self.spec.max_predicates.min(candidates.len()));
        let mut predicates = Vec::with_capacity(count);
        for _ in 0..count {
            let column = candidates.swap_remove(rng.random_range(0..candidates.len()));
            predicates.push(self.random_predicate(catalog, column, rng));
            if candidates.is_empty() {
                break;
            }
        }
        predicates
    }

    /// Draw a literal uniformly from the column's declared domain and pick
    /// a legal operator.
    fn random_predicate(
        &self,
        catalog: &SchemaCatalog,
        column: ColumnRef,
        rng: &mut StdRng,
    ) -> Predicate {
        let meta = catalog.column(column);
        let ops = legal_operators(meta.data_type);
        let op = if meta.data_type.is_numeric() {
            if rng.random_bool(self.spec.range_predicate_prob) {
                // Pick one of the four range operators.
                let range_ops = [CmpOp::Lt, CmpOp::Leq, CmpOp::Gt, CmpOp::Geq];
                range_ops[rng.random_range(0..range_ops.len())]
            } else {
                CmpOp::Eq
            }
        } else {
            ops[rng.random_range(0..ops.len())]
        };
        let lo = meta.stats.min.unwrap_or(0.0);
        let hi = meta.stats.max.unwrap_or(lo + 1.0).max(lo + 1e-9);
        let raw = rng.random_range(lo..=hi);
        let value = match meta.data_type {
            DataType::Int | DataType::Date => Value::Int(raw.round() as i64),
            DataType::Float => Value::Float(raw),
            DataType::Categorical => {
                let domain = meta.stats.distinct_count.max(1);
                Value::Cat(rng.random_range(0..domain) as u32)
            }
            DataType::Bool => Value::Bool(rng.random_bool(0.5)),
        };
        Predicate::new(column, op, value)
    }

    fn pick_aggregates(
        &self,
        catalog: &SchemaCatalog,
        tables: &[TableId],
        rng: &mut StdRng,
    ) -> Vec<Aggregate> {
        let mut numeric_cols: Vec<ColumnRef> = Vec::new();
        for &t in tables {
            let table = catalog.table(t);
            for (i, col) in table.columns.iter().enumerate() {
                if col.data_type.is_numeric() && !col.is_primary_key {
                    numeric_cols.push(ColumnRef::new(t, ColumnId(i as u32)));
                }
            }
        }
        let count = rng.random_range(1..=self.spec.max_aggregates);
        let mut aggregates = Vec::with_capacity(count);
        for i in 0..count {
            if i == 0 && (numeric_cols.is_empty() || rng.random_bool(0.4)) {
                aggregates.push(Aggregate::count_star());
                continue;
            }
            if numeric_cols.is_empty() {
                break;
            }
            let column = numeric_cols[rng.random_range(0..numeric_cols.len())];
            let funcs = [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
            let func = funcs[rng.random_range(0..funcs.len())];
            aggregates.push(Aggregate::over(func, column));
        }
        if aggregates.is_empty() {
            aggregates.push(Aggregate::count_star());
        }
        aggregates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{presets, GeneratorConfig, SchemaGenerator};

    #[test]
    fn generated_queries_validate() {
        let catalog = presets::imdb_like(0.02);
        let workload = WorkloadGenerator::with_defaults().generate(&catalog, 200, 1);
        assert_eq!(workload.len(), 200);
        for q in &workload {
            q.validate(&catalog).expect("generated query must be valid");
            assert!(!q.aggregates.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let catalog = presets::imdb_like(0.02);
        let generator = WorkloadGenerator::with_defaults();
        assert_eq!(
            generator.generate(&catalog, 50, 3),
            generator.generate(&catalog, 50, 3)
        );
        assert_ne!(
            generator.generate(&catalog, 50, 3),
            generator.generate(&catalog, 50, 4)
        );
    }

    #[test]
    fn respects_limits() {
        let spec = WorkloadSpec {
            max_tables: 3,
            max_predicates: 2,
            max_aggregates: 1,
            ..WorkloadSpec::default()
        };
        let catalog = presets::imdb_like(0.02);
        let workload = WorkloadGenerator::new(spec).generate(&catalog, 100, 7);
        for q in &workload {
            assert!(q.num_tables() <= 3);
            assert!(q.predicates.len() <= 2);
            assert!(q.aggregates.len() <= 1);
            assert_eq!(q.joins.len(), q.num_tables() - 1);
        }
    }

    #[test]
    fn covers_multiway_joins() {
        let catalog = presets::imdb_like(0.02);
        let workload = WorkloadGenerator::with_defaults().generate(&catalog, 300, 11);
        let max_tables = workload.iter().map(|q| q.num_tables()).max().unwrap();
        assert!(
            max_tables >= 4,
            "expected some multi-way joins, got {max_tables}"
        );
        let has_range = workload
            .iter()
            .any(|q| q.predicates.iter().any(|p| p.op.is_range()));
        assert!(has_range);
    }

    #[test]
    fn works_on_generated_schemas() {
        let schema_gen = SchemaGenerator::new(GeneratorConfig::tiny());
        for seed in 0..5 {
            let catalog = schema_gen.generate("db", seed);
            let workload = WorkloadGenerator::with_defaults().generate(&catalog, 50, seed);
            for q in &workload {
                q.validate(&catalog).expect("valid query");
            }
        }
    }

    #[test]
    fn predicates_avoid_key_columns() {
        let catalog = presets::imdb_like(0.02);
        let workload = WorkloadGenerator::with_defaults().generate(&catalog, 100, 5);
        for q in &workload {
            for p in &q.predicates {
                let col = catalog.column(p.column);
                assert!(!col.is_primary_key);
            }
        }
    }
}
