//! Filter predicates and aggregates.

use serde::{Deserialize, Serialize};
use std::fmt;
use zsdb_catalog::{ColumnRef, DataType, Value};

/// Comparison operator of a filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
}

impl CmpOp {
    /// All operators in the canonical order used for one-hot encodings.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Lt,
        CmpOp::Leq,
        CmpOp::Gt,
        CmpOp::Geq,
    ];

    /// Stable index of the operator (for one-hot encodings).
    pub fn index(self) -> usize {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Neq => 1,
            CmpOp::Lt => 2,
            CmpOp::Leq => 3,
            CmpOp::Gt => 4,
            CmpOp::Geq => 5,
        }
    }

    /// Whether this is a range (inequality) operator.
    pub fn is_range(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Leq | CmpOp::Gt | CmpOp::Geq)
    }

    /// Apply the operator to two (non-null) numeric views.  Incomparable
    /// pairs (NaN) are `false`, matching [`Value::sql_cmp`] semantics.
    #[inline]
    pub fn compare_f64(self, a: f64, b: f64) -> bool {
        let Some(ordering) = a.partial_cmp(&b) else {
            return false;
        };
        match self {
            CmpOp::Eq => ordering == std::cmp::Ordering::Equal,
            CmpOp::Neq => ordering != std::cmp::Ordering::Equal,
            CmpOp::Lt => ordering == std::cmp::Ordering::Less,
            CmpOp::Leq => ordering != std::cmp::Ordering::Greater,
            CmpOp::Gt => ordering == std::cmp::Ordering::Greater,
            CmpOp::Geq => ordering != std::cmp::Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Leq => "<=",
            CmpOp::Gt => ">",
            CmpOp::Geq => ">=",
        };
        f.write_str(s)
    }
}

/// A simple filter predicate `column op literal`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Filtered column.
    pub column: ColumnRef,
    /// Comparison operator.
    pub op: CmpOp,
    /// Comparison literal.
    pub value: Value,
}

impl Predicate {
    /// Convenience constructor.
    pub fn new(column: ColumnRef, op: CmpOp, value: Value) -> Self {
        Predicate { column, op, value }
    }

    /// Evaluate the predicate against a concrete column value using SQL
    /// three-valued logic collapsed to a boolean: comparisons involving
    /// NULL are `false`.
    pub fn matches(&self, value: Value) -> bool {
        self.matches_f64(value.as_f64())
    }

    /// Evaluate the predicate against the numeric view of a value
    /// (`None` = NULL).  This is the single comparison kernel shared by the
    /// scalar [`Predicate::matches`] path and the vectorized
    /// [`Predicate::filter_batch`] path, so both agree by construction.
    #[inline]
    pub fn matches_f64(&self, value: Option<f64>) -> bool {
        match (value, self.value.as_f64()) {
            (Some(a), Some(b)) => self.op.compare_f64(a, b),
            _ => false,
        }
    }

    /// Vectorized evaluation over one column of a batch: `values` and
    /// `nulls` are the batch column's numeric view and null mask, `select`
    /// holds the indices of the batch lanes still alive.  Lanes whose value
    /// fails the predicate are removed from `select` in place (relative
    /// order preserved); no rows are materialised.
    pub fn filter_batch(&self, values: &[f64], nulls: &[bool], select: &mut Vec<u32>) {
        match self.value.as_f64() {
            None => select.clear(),
            Some(lit) => select.retain(|&lane| {
                let lane = lane as usize;
                !nulls[lane] && self.op.compare_f64(values[lane], lit)
            }),
        }
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFunc {
    /// All aggregate functions in canonical one-hot order.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ];

    /// Stable index for one-hot encodings.
    pub fn index(self) -> usize {
        match self {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Avg => 2,
            AggFunc::Min => 3,
            AggFunc::Max => 4,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// An aggregate expression in the SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Aggregate function.
    pub func: AggFunc,
    /// Aggregated column; `None` means `COUNT(*)`.
    pub column: Option<ColumnRef>,
}

impl Aggregate {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Aggregate {
            func: AggFunc::Count,
            column: None,
        }
    }

    /// Aggregate over a column.
    pub fn over(func: AggFunc, column: ColumnRef) -> Self {
        Aggregate {
            func,
            column: Some(column),
        }
    }
}

/// Which comparison operators are legal for a column of the given type.
pub fn legal_operators(data_type: DataType) -> &'static [CmpOp] {
    if data_type.is_orderable() && data_type != DataType::Categorical {
        &CmpOp::ALL
    } else {
        // Categorical / boolean columns only support (in)equality.
        &[CmpOp::Eq, CmpOp::Neq]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{ColumnId, TableId};

    fn col() -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(0))
    }

    #[test]
    fn cmp_op_indices_are_stable() {
        for (i, op) in CmpOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        assert!(CmpOp::Lt.is_range());
        assert!(!CmpOp::Eq.is_range());
    }

    #[test]
    fn predicate_matching() {
        let p = Predicate::new(col(), CmpOp::Gt, Value::Int(10));
        assert!(p.matches(Value::Int(11)));
        assert!(!p.matches(Value::Int(10)));
        assert!(!p.matches(Value::Null));

        let eq = Predicate::new(col(), CmpOp::Eq, Value::Cat(3));
        assert!(eq.matches(Value::Cat(3)));
        assert!(!eq.matches(Value::Cat(4)));
    }

    #[test]
    fn leq_geq_neq() {
        let leq = Predicate::new(col(), CmpOp::Leq, Value::Float(1.5));
        assert!(leq.matches(Value::Float(1.5)));
        assert!(leq.matches(Value::Int(1)));
        assert!(!leq.matches(Value::Int(2)));

        let neq = Predicate::new(col(), CmpOp::Neq, Value::Int(0));
        assert!(neq.matches(Value::Int(1)));
        assert!(!neq.matches(Value::Int(0)));

        let geq = Predicate::new(col(), CmpOp::Geq, Value::Int(5));
        assert!(geq.matches(Value::Int(5)));
        assert!(!geq.matches(Value::Int(4)));
    }

    #[test]
    fn aggregate_constructors() {
        let star = Aggregate::count_star();
        assert_eq!(star.func, AggFunc::Count);
        assert!(star.column.is_none());
        let min = Aggregate::over(AggFunc::Min, col());
        assert_eq!(min.func, AggFunc::Min);
        assert!(min.column.is_some());
    }

    #[test]
    fn legal_operator_sets() {
        assert_eq!(legal_operators(DataType::Int).len(), 6);
        assert_eq!(legal_operators(DataType::Categorical).len(), 2);
        assert_eq!(legal_operators(DataType::Bool).len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CmpOp::Geq.to_string(), ">=");
        assert_eq!(AggFunc::Avg.to_string(), "AVG");
    }

    #[test]
    fn filter_batch_agrees_with_scalar_matches() {
        let values = [1.0, 5.0, 10.0, 10.0, -3.0, f64::NAN];
        let nulls = [false, false, false, true, false, false];
        let as_value = |lane: usize| {
            if nulls[lane] {
                Value::Null
            } else {
                Value::Float(values[lane])
            }
        };
        for op in CmpOp::ALL {
            for lit in [Value::Int(5), Value::Float(-3.0), Value::Null] {
                let p = Predicate::new(col(), op, lit);
                let mut select: Vec<u32> = (0..values.len() as u32).collect();
                p.filter_batch(&values, &nulls, &mut select);
                let expected: Vec<u32> = (0..values.len())
                    .filter(|&lane| p.matches(as_value(lane)))
                    .map(|lane| lane as u32)
                    .collect();
                assert_eq!(select, expected, "op {op} lit {lit} diverged");
            }
        }
    }

    #[test]
    fn filter_batch_respects_incoming_selection() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let nulls = [false; 4];
        let p = Predicate::new(col(), CmpOp::Gt, Value::Int(1));
        // Lane 2 was already filtered out by an earlier predicate.
        let mut select = vec![0, 1, 3];
        p.filter_batch(&values, &nulls, &mut select);
        assert_eq!(select, vec![1, 3]);
    }
}
