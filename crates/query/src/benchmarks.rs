//! Evaluation benchmark workloads.
//!
//! The paper evaluates on three workloads over the IMDB database, all taken
//! from the learned-cardinality literature (Kipf et al., CIDR 2019):
//!
//! * **scale** — queries of increasing join count used to study how errors
//!   scale with query size,
//! * **synthetic** — randomly generated queries with a substantial share of
//!   numeric range predicates,
//! * **JOB-light** — a simplified Join-Order-Benchmark variant with
//!   PK/FK joins around `title` and mostly equality predicates ("rarely
//!   contain range predicates").
//!
//! The original query files target the real IMDB snapshot; here the same
//! characteristics are reproduced as deterministic generators over the
//! IMDB-like preset schema so that the experiment harness can regenerate
//! Figure 3 and Table 1.

use crate::expr::{AggFunc, Aggregate, CmpOp, Predicate};
use crate::generator::{WorkloadGenerator, WorkloadSpec};
use crate::query::{JoinCondition, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use zsdb_catalog::{ColumnRef, DataType, SchemaCatalog, TableId, Value};

/// Which evaluation workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The *scale* benchmark: join counts swept from 1 to 5 tables.
    Scale,
    /// The *synthetic* benchmark: random queries, many range predicates.
    Synthetic,
    /// The *JOB-light* benchmark: PK/FK joins around `title`, mostly
    /// equality predicates.
    JobLight,
    /// The index what-if workload of Section 4.1 (random attributes of the
    /// query get a hypothetical index).
    Index,
}

impl WorkloadKind {
    /// Human-readable name as used in the paper's figures and tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Scale => "scale",
            WorkloadKind::Synthetic => "synthetic",
            WorkloadKind::JobLight => "job-light",
            WorkloadKind::Index => "index",
        }
    }

    /// The three plain cost-estimation workloads of Figure 3.
    pub const FIGURE3: [WorkloadKind; 3] = [
        WorkloadKind::Scale,
        WorkloadKind::Synthetic,
        WorkloadKind::JobLight,
    ];
}

/// A named evaluation workload: queries plus the kind that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkWorkload {
    /// Which benchmark this is.
    pub kind: WorkloadKind,
    /// The queries.
    pub queries: Vec<Query>,
}

impl BenchmarkWorkload {
    /// Generate the given benchmark over an IMDB-like catalog.
    ///
    /// `catalog` must contain the IMDB-like tables (`title`,
    /// `movie_companies`, …); use [`zsdb_catalog::presets::imdb_like`].
    pub fn generate(kind: WorkloadKind, catalog: &SchemaCatalog, count: usize, seed: u64) -> Self {
        let queries = match kind {
            WorkloadKind::Scale => scale_workload(catalog, count, seed),
            WorkloadKind::Synthetic => synthetic_workload(catalog, count, seed),
            WorkloadKind::JobLight => job_light_workload(catalog, count, seed),
            WorkloadKind::Index => synthetic_workload(catalog, count, seed ^ 0xDEAD_BEEF),
        };
        BenchmarkWorkload { kind, queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// *scale*: queries stratified by join count — for `count` queries the join
/// count cycles 1, 2, 3, 4, 5 so every size is equally represented.
fn scale_workload(catalog: &SchemaCatalog, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    for i in 0..count {
        let tables = (i % 5) + 1;
        let spec = WorkloadSpec {
            max_tables: tables,
            max_predicates: 3,
            max_aggregates: 2,
            range_predicate_prob: 0.4,
            no_predicate_prob: 0.1,
        };
        let generator = WorkloadGenerator::new(spec);
        let mut q = generator.generate_one(catalog, &mut rng);
        // Force the stratified join count when the schema allows it by
        // regenerating a few times.
        for _ in 0..5 {
            if q.num_tables() == tables {
                break;
            }
            q = generator.generate_one(catalog, &mut rng);
        }
        queries.push(q);
    }
    queries
}

/// *synthetic*: the default random workload with a high share of range
/// predicates.
fn synthetic_workload(catalog: &SchemaCatalog, count: usize, seed: u64) -> Vec<Query> {
    let spec = WorkloadSpec {
        max_tables: 5,
        max_predicates: 5,
        max_aggregates: 3,
        range_predicate_prob: 0.65,
        no_predicate_prob: 0.05,
    };
    WorkloadGenerator::new(spec).generate(catalog, count, seed)
}

/// *JOB-light*: star joins around `title` with 2–5 tables, one or two
/// predicates which are almost always equality predicates on categorical
/// columns, `COUNT(*)`/`MIN` aggregates.
fn job_light_workload(catalog: &SchemaCatalog, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (title, _) = catalog
        .table_by_name("title")
        .expect("JOB-light requires the IMDB-like schema");
    let satellites: Vec<TableId> = catalog
        .foreign_keys()
        .iter()
        .filter(|fk| fk.parent.table == title)
        .map(|fk| fk.child.table)
        .collect();

    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        // Pick 1..=4 satellite tables joined to title.
        let mut available = satellites.clone();
        let sat_count = rng.random_range(1..=available.len().min(4));
        let mut tables = vec![title];
        let mut joins = Vec::new();
        for _ in 0..sat_count {
            let sat = available.swap_remove(rng.random_range(0..available.len()));
            let fk = catalog
                .join_edge(title, sat)
                .expect("satellites join to title");
            tables.push(sat);
            joins.push(JoinCondition::new(fk.child, fk.parent));
        }

        // 1–2 predicates, mostly equality on categorical columns; a small
        // fraction of range predicates on production_year.
        let mut predicates = Vec::new();
        let n_preds = rng.random_range(1..=2usize);
        for _ in 0..n_preds {
            if rng.random_bool(0.15) {
                let year = catalog
                    .resolve_column("title", "production_year")
                    .expect("imdb preset column");
                let op = if rng.random_bool(0.5) {
                    CmpOp::Gt
                } else {
                    CmpOp::Lt
                };
                let value = Value::Int(rng.random_range(1950..2015));
                predicates.push(Predicate::new(year, op, value));
            } else if let Some(p) = random_categorical_eq(catalog, &tables, &mut rng) {
                predicates.push(p);
            }
        }

        // JOB-light queries project a single aggregate; MIN or COUNT(*).
        let aggregates = if rng.random_bool(0.5) {
            vec![Aggregate::count_star()]
        } else {
            let year = catalog
                .resolve_column("title", "production_year")
                .expect("imdb preset column");
            vec![Aggregate::over(AggFunc::Min, year)]
        };

        queries.push(Query {
            tables,
            joins,
            predicates,
            aggregates,
        });
    }
    queries
}

/// Pick an equality predicate on a random categorical column of the chosen
/// tables.
fn random_categorical_eq(
    catalog: &SchemaCatalog,
    tables: &[TableId],
    rng: &mut StdRng,
) -> Option<Predicate> {
    let mut candidates: Vec<ColumnRef> = Vec::new();
    for &t in tables {
        let table = catalog.table(t);
        for (i, col) in table.columns.iter().enumerate() {
            if col.data_type == DataType::Categorical {
                candidates.push(ColumnRef::new(t, zsdb_catalog::ColumnId(i as u32)));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let column = candidates[rng.random_range(0..candidates.len())];
    let domain = catalog.column(column).stats.distinct_count.max(1);
    let value = Value::Cat(rng.random_range(0..domain) as u32);
    Some(Predicate::new(column, CmpOp::Eq, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;

    fn imdb() -> SchemaCatalog {
        presets::imdb_like(0.02)
    }

    #[test]
    fn all_benchmarks_produce_valid_queries() {
        let catalog = imdb();
        for kind in [
            WorkloadKind::Scale,
            WorkloadKind::Synthetic,
            WorkloadKind::JobLight,
            WorkloadKind::Index,
        ] {
            let wl = BenchmarkWorkload::generate(kind, &catalog, 100, 3);
            assert_eq!(wl.len(), 100);
            for q in &wl.queries {
                q.validate(&catalog).expect("benchmark query must validate");
            }
        }
    }

    #[test]
    fn job_light_centers_on_title() {
        let catalog = imdb();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let wl = BenchmarkWorkload::generate(WorkloadKind::JobLight, &catalog, 100, 5);
        let mut range_predicates = 0usize;
        let mut total_predicates = 0usize;
        for q in &wl.queries {
            assert!(q.involves(title));
            assert!(q.num_tables() >= 2);
            total_predicates += q.predicates.len();
            range_predicates += q.predicates.iter().filter(|p| p.op.is_range()).count();
        }
        // "rarely contain range predicates"
        assert!(
            (range_predicates as f64) < 0.35 * total_predicates as f64,
            "{range_predicates}/{total_predicates} range predicates is too many for JOB-light"
        );
    }

    #[test]
    fn scale_covers_all_join_counts() {
        let catalog = imdb();
        let wl = BenchmarkWorkload::generate(WorkloadKind::Scale, &catalog, 100, 7);
        let max = wl.queries.iter().map(|q| q.num_tables()).max().unwrap();
        let min = wl.queries.iter().map(|q| q.num_tables()).min().unwrap();
        assert_eq!(min, 1);
        assert!(max >= 4);
    }

    #[test]
    fn synthetic_has_many_range_predicates() {
        let catalog = imdb();
        let wl = BenchmarkWorkload::generate(WorkloadKind::Synthetic, &catalog, 200, 9);
        let range = wl
            .queries
            .iter()
            .flat_map(|q| &q.predicates)
            .filter(|p| p.op.is_range())
            .count();
        // The share is computed over *numeric* predicates only — categorical
        // predicates can never be range predicates.
        let numeric: usize = wl
            .queries
            .iter()
            .flat_map(|q| &q.predicates)
            .filter(|p| !matches!(p.value, Value::Cat(_)))
            .count();
        assert!(
            range as f64 > 0.3 * numeric as f64,
            "{range} range of {numeric} numeric predicates"
        );
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let catalog = imdb();
        let a = BenchmarkWorkload::generate(WorkloadKind::Scale, &catalog, 50, 1);
        let b = BenchmarkWorkload::generate(WorkloadKind::Scale, &catalog, 50, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn workload_kind_names() {
        assert_eq!(WorkloadKind::JobLight.name(), "job-light");
        assert_eq!(WorkloadKind::FIGURE3.len(), 3);
    }
}
