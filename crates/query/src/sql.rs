//! Rendering logical queries as SQL text.
//!
//! Only used for diagnostics, examples and documentation — the engine plans
//! directly from the structured [`Query`] representation.

use crate::expr::{AggFunc, Aggregate, Predicate};
use crate::query::Query;
use std::fmt::Write as _;
use zsdb_catalog::{ColumnRef, SchemaCatalog, Value};

/// Render a fully-qualified column name (`table.column`).
fn column_name(catalog: &SchemaCatalog, column: ColumnRef) -> String {
    format!(
        "{}.{}",
        catalog.table(column.table).name,
        catalog.column(column).name
    )
}

fn literal(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Int(v) => v.to_string(),
        Value::Float(v) => format!("{v:.4}"),
        Value::Cat(v) => format!("'c{v}'"),
        Value::Bool(v) => v.to_string().to_uppercase(),
    }
}

fn aggregate_sql(catalog: &SchemaCatalog, agg: &Aggregate) -> String {
    match agg.column {
        None => "COUNT(*)".to_string(),
        Some(c) => format!("{}({})", agg.func, column_name(catalog, c)),
    }
}

fn predicate_sql(catalog: &SchemaCatalog, predicate: &Predicate) -> String {
    format!(
        "{} {} {}",
        column_name(catalog, predicate.column),
        predicate.op,
        literal(&predicate.value)
    )
}

/// Render a query as a SQL SELECT statement.
pub fn to_sql(catalog: &SchemaCatalog, query: &Query) -> String {
    let mut sql = String::from("SELECT ");

    if query.aggregates.is_empty() {
        sql.push('*');
    } else {
        let aggs: Vec<String> = query
            .aggregates
            .iter()
            .map(|a| aggregate_sql(catalog, a))
            .collect();
        sql.push_str(&aggs.join(", "));
    }

    let tables: Vec<&str> = query
        .tables
        .iter()
        .map(|t| catalog.table(*t).name.as_str())
        .collect();
    let _ = write!(sql, " FROM {}", tables.join(", "));

    let mut conditions: Vec<String> = query
        .joins
        .iter()
        .map(|j| {
            format!(
                "{} = {}",
                column_name(catalog, j.left),
                column_name(catalog, j.right)
            )
        })
        .collect();
    conditions.extend(query.predicates.iter().map(|p| predicate_sql(catalog, p)));

    if !conditions.is_empty() {
        let _ = write!(sql, " WHERE {}", conditions.join(" AND "));
    }
    sql.push(';');
    sql
}

/// Short human-readable summary (`3 tables, 2 predicates, 1 aggregate`),
/// used in logs and example output.
pub fn summarize(query: &Query) -> String {
    format!(
        "{} table(s), {} join(s), {} predicate(s), {} aggregate(s)",
        query.tables.len(),
        query.joins.len(),
        query.predicates.len(),
        query.aggregates.len()
    )
}

/// Render an aggregate function name with column for display purposes.
pub fn aggregate_label(
    catalog: &SchemaCatalog,
    func: AggFunc,
    column: Option<ColumnRef>,
) -> String {
    aggregate_sql(catalog, &Aggregate { func, column })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::query::JoinCondition;
    use zsdb_catalog::presets;

    #[test]
    fn renders_example_query_from_the_paper() {
        // SELECT MIN(t.production_year) FROM movie_companies mc, title t
        // WHERE t.id = mc.movie_id AND t.production_year > 1990
        //   AND mc.company_type_id = 2
        let catalog = presets::imdb_like(0.02);
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let year = catalog.resolve_column("title", "production_year").unwrap();
        let ctype = catalog
            .resolve_column("movie_companies", "company_type_id")
            .unwrap();
        let query = Query {
            tables: vec![mc, title],
            joins: vec![JoinCondition::new(movie_id, title_id)],
            predicates: vec![
                Predicate::new(year, CmpOp::Gt, Value::Int(1990)),
                Predicate::new(ctype, CmpOp::Eq, Value::Cat(2)),
            ],
            aggregates: vec![Aggregate::over(AggFunc::Min, year)],
        };
        let sql = to_sql(&catalog, &query);
        assert!(sql.starts_with("SELECT MIN(title.production_year) FROM movie_companies, title"));
        assert!(sql.contains("movie_companies.movie_id = title.id"));
        assert!(sql.contains("title.production_year > 1990"));
        assert!(sql.contains("movie_companies.company_type_id = 'c2'"));
        assert!(sql.ends_with(';'));
    }

    #[test]
    fn count_star_and_no_predicates() {
        let catalog = presets::imdb_like(0.02);
        let (title, _) = catalog.table_by_name("title").unwrap();
        let query = Query::scan(title);
        let sql = to_sql(&catalog, &query);
        assert_eq!(sql, "SELECT COUNT(*) FROM title;");
    }

    #[test]
    fn summary_counts() {
        let catalog = presets::imdb_like(0.02);
        let (title, _) = catalog.table_by_name("title").unwrap();
        let query = Query::scan(title);
        assert_eq!(
            summarize(&query),
            "1 table(s), 0 join(s), 0 predicate(s), 1 aggregate(s)"
        );
    }

    #[test]
    fn aggregate_label_renders() {
        let catalog = presets::imdb_like(0.02);
        let year = catalog.resolve_column("title", "production_year").unwrap();
        assert_eq!(
            aggregate_label(&catalog, AggFunc::Max, Some(year)),
            "MAX(title.production_year)"
        );
        assert_eq!(aggregate_label(&catalog, AggFunc::Count, None), "COUNT(*)");
    }
}
