//! Logical SPJA query representation.

use crate::expr::{Aggregate, Predicate};
use serde::{Deserialize, Serialize};
use zsdb_catalog::{CatalogError, ColumnRef, SchemaCatalog, TableId};

/// An equi-join condition `left = right` between two columns of different
/// tables (in this workspace always a foreign-key/primary-key pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinCondition {
    /// Left join column.
    pub left: ColumnRef,
    /// Right join column.
    pub right: ColumnRef,
}

impl JoinCondition {
    /// Convenience constructor.
    pub fn new(left: ColumnRef, right: ColumnRef) -> Self {
        JoinCondition { left, right }
    }

    /// Does this condition connect tables `a` and `b`?
    pub fn connects(&self, a: TableId, b: TableId) -> bool {
        (self.left.table == a && self.right.table == b)
            || (self.left.table == b && self.right.table == a)
    }

    /// The join column belonging to `table`, if any.
    pub fn column_of(&self, table: TableId) -> Option<ColumnRef> {
        if self.left.table == table {
            Some(self.left)
        } else if self.right.table == table {
            Some(self.right)
        } else {
            None
        }
    }
}

/// A select-project-join-aggregate query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Tables in the FROM clause.
    pub tables: Vec<TableId>,
    /// Equi-join conditions (always `tables.len() - 1` of them for the
    /// acyclic FK joins generated in this workspace).
    pub joins: Vec<JoinCondition>,
    /// Conjunctive filter predicates.
    pub predicates: Vec<Predicate>,
    /// Aggregates in the SELECT list (at least one; generators default to
    /// `COUNT(*)`).
    pub aggregates: Vec<Aggregate>,
}

impl Query {
    /// Single-table query scaffold.
    pub fn scan(table: TableId) -> Self {
        Query {
            tables: vec![table],
            joins: Vec::new(),
            predicates: Vec::new(),
            aggregates: vec![Aggregate::count_star()],
        }
    }

    /// Number of joined tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Predicates that filter the given table.
    pub fn predicates_on(&self, table: TableId) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.column.table == table)
            .collect()
    }

    /// Whether the query references the given table.
    pub fn involves(&self, table: TableId) -> bool {
        self.tables.contains(&table)
    }

    /// All columns referenced anywhere in the query (joins, predicates,
    /// aggregates), deduplicated.
    pub fn referenced_columns(&self) -> Vec<ColumnRef> {
        let mut cols: Vec<ColumnRef> = Vec::new();
        for j in &self.joins {
            cols.push(j.left);
            cols.push(j.right);
        }
        for p in &self.predicates {
            cols.push(p.column);
        }
        for a in &self.aggregates {
            if let Some(c) = a.column {
                cols.push(c);
            }
        }
        cols.sort();
        cols.dedup();
        cols
    }

    /// Validate the query against a catalog: all referenced tables and
    /// columns must exist, joins must connect tables in the FROM clause and
    /// the join graph must be connected.
    pub fn validate(&self, catalog: &SchemaCatalog) -> Result<(), CatalogError> {
        if self.tables.is_empty() {
            return Err(CatalogError::UnknownTable("<empty FROM clause>".into()));
        }
        for &t in &self.tables {
            if t.index() >= catalog.num_tables() {
                return Err(CatalogError::UnknownTable(format!("{t}")));
            }
        }
        for col in self.referenced_columns() {
            if col.table.index() >= catalog.num_tables() {
                return Err(CatalogError::UnknownTable(format!("{}", col.table)));
            }
            let table = catalog.table(col.table);
            if col.column.index() >= table.num_columns() {
                return Err(CatalogError::UnknownColumn {
                    table: table.name.clone(),
                    column: format!("{}", col.column),
                });
            }
            if !self.involves(col.table) {
                return Err(CatalogError::UnknownTable(format!(
                    "column {col} references a table outside the FROM clause"
                )));
            }
        }
        // Connectivity check via union-find over FROM tables.
        let mut parent: Vec<usize> = (0..self.tables.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for join in &self.joins {
            let li = self.tables.iter().position(|t| *t == join.left.table);
            let ri = self.tables.iter().position(|t| *t == join.right.table);
            match (li, ri) {
                (Some(l), Some(r)) => {
                    let (rl, rr) = (find(&mut parent, l), find(&mut parent, r));
                    parent[rl] = rr;
                }
                _ => {
                    return Err(CatalogError::InvalidForeignKey(
                        "join references a table outside the FROM clause".into(),
                    ))
                }
            }
        }
        let root = find(&mut parent, 0);
        for i in 1..self.tables.len() {
            if find(&mut parent, i) != root {
                return Err(CatalogError::InvalidForeignKey(
                    "join graph is not connected".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp};
    use zsdb_catalog::{presets, ColumnId, Value};

    fn imdb() -> SchemaCatalog {
        presets::imdb_like(0.02)
    }

    fn two_way_join(catalog: &SchemaCatalog) -> Query {
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let mc_movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let year = catalog.resolve_column("title", "production_year").unwrap();
        Query {
            tables: vec![title, mc],
            joins: vec![JoinCondition::new(mc_movie_id, title_id)],
            predicates: vec![Predicate::new(year, CmpOp::Gt, Value::Int(1990))],
            aggregates: vec![Aggregate::count_star(), Aggregate::over(AggFunc::Min, year)],
        }
    }

    #[test]
    fn valid_query_passes_validation() {
        let catalog = imdb();
        let q = two_way_join(&catalog);
        assert!(q.validate(&catalog).is_ok());
        assert_eq!(q.num_tables(), 2);
    }

    #[test]
    fn disconnected_join_graph_rejected() {
        let catalog = imdb();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
        let q = Query {
            tables: vec![title, mc],
            joins: vec![],
            predicates: vec![],
            aggregates: vec![Aggregate::count_star()],
        };
        assert!(q.validate(&catalog).is_err());
    }

    #[test]
    fn predicate_on_foreign_table_rejected() {
        let catalog = imdb();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let kw_col = catalog
            .resolve_column("movie_keyword", "keyword_id")
            .unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(kw_col, CmpOp::Eq, Value::Cat(1))],
            aggregates: vec![Aggregate::count_star()],
        };
        assert!(q.validate(&catalog).is_err());
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let catalog = imdb();
        let q = two_way_join(&catalog);
        let cols = q.referenced_columns();
        // title.id, movie_companies.movie_id, title.production_year
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn join_condition_helpers() {
        let catalog = imdb();
        let q = two_way_join(&catalog);
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, _) = catalog.table_by_name("movie_companies").unwrap();
        let j = q.joins[0];
        assert!(j.connects(title, mc));
        assert!(j.column_of(title).is_some());
        assert!(j.column_of(TableId(99)).is_none());
    }

    #[test]
    fn invalid_column_rejected() {
        let catalog = imdb();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let q = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(
                ColumnRef::new(title, ColumnId(99)),
                CmpOp::Eq,
                Value::Int(0),
            )],
            aggregates: vec![Aggregate::count_star()],
        };
        assert!(matches!(
            q.validate(&catalog),
            Err(CatalogError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn scan_scaffold() {
        let catalog = imdb();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let q = Query::scan(title);
        assert!(q.validate(&catalog).is_ok());
        assert_eq!(q.aggregates.len(), 1);
    }
}
