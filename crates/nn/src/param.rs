//! Trainable parameter buffers.

use serde::{Deserialize, Serialize};

/// A flat buffer of trainable parameters together with its gradient and
/// Adam moment estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamBuf {
    /// Parameter values.
    pub data: Vec<f64>,
    /// Accumulated gradient (same length as `data`).
    pub grad: Vec<f64>,
    /// First-moment estimate (Adam).
    pub m: Vec<f64>,
    /// Second-moment estimate (Adam).
    pub v: Vec<f64>,
}

impl ParamBuf {
    /// Create a parameter buffer from initial values.
    pub fn new(data: Vec<f64>) -> Self {
        let n = data.len();
        ParamBuf {
            data,
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Zero-initialised buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        ParamBuf::new(vec![0.0; n])
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Apply one Adam update with bias correction for step `t` (1-based).
    pub fn adam_step(&mut self, lr: f64, beta1: f64, beta2: f64, eps: f64, t: u64) {
        let t = t.max(1) as i32;
        let bc1 = 1.0 - beta1.powi(t);
        let bc2 = 1.0 - beta2.powi(t);
        for i in 0..self.data.len() {
            let g = self.grad[i];
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            self.data[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// Apply one plain SGD update.
    pub fn sgd_step(&mut self, lr: f64) {
        for i in 0..self.data.len() {
            self.data[i] -= lr * self.grad[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_moves_against_gradient() {
        let mut p = ParamBuf::new(vec![1.0, -1.0]);
        p.grad = vec![1.0, -1.0];
        p.adam_step(0.1, 0.9, 0.999, 1e-8, 1);
        assert!(p.data[0] < 1.0);
        assert!(p.data[1] > -1.0);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = ParamBuf::zeros(3);
        p.grad = vec![1.0, 2.0, 3.0];
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0; 3]);
    }

    #[test]
    fn sgd_step_is_linear() {
        let mut p = ParamBuf::new(vec![2.0]);
        p.grad = vec![0.5];
        p.sgd_step(0.2);
        assert!((p.data[0] - 1.9).abs() < 1e-12);
    }

    #[test]
    fn repeated_adam_steps_converge_on_quadratic() {
        // Minimise f(x) = (x - 3)^2 with gradient 2(x - 3).
        let mut p = ParamBuf::new(vec![0.0]);
        for t in 1..=2000 {
            p.zero_grad();
            p.grad[0] = 2.0 * (p.data[0] - 3.0);
            p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
        }
        assert!((p.data[0] - 3.0).abs() < 1e-2, "got {}", p.data[0]);
    }
}
