//! Explicit 4-lane micro-kernels for the MLP hot loops, with a scalar
//! fallback behind the same dispatch.
//!
//! # The canonical reduction order
//!
//! Every dot product and sum in the workspace's numeric stack reduces in
//! one **canonical 4-lane order**: element `i` is accumulated into lane
//! `i mod 4` (each lane sweeps its elements in ascending index order),
//! the lanes are combined pairwise as `(l0 + l1) + (l2 + l3)`, and any
//! tail (`len % 4` trailing elements) is summed sequentially and added
//! last:
//!
//! ```text
//! dot(w, x) = ((l0 + l1) + (l2 + l3)) + tail
//!   lane l:   l += w[4k + l] * x[4k + l]   for k = 0, 1, …
//!   tail:     sequential over the last len % 4 elements
//! ```
//!
//! An affine output unit is `bias + dot(w, x)` — the bias joins *after*
//! the reduction, never as the lane seed.
//!
//! Fixing the order buys two properties at once:
//!
//! * **Speed.**  Four independent accumulator chains map directly onto
//!   SIMD lanes (one AVX2 `f64x4` register) and break the sequential
//!   floating-point dependency chain, so the [`Simd`](KernelKind::Simd)
//!   kernel's array-blocked loops auto-vectorise into packed operations.
//! * **Bit-determinism.**  The reduction order is a function of the input
//!   length only — never of batch shape, tiling, or thread count — so the
//!   batched kernels, the per-example path, and both kernel
//!   implementations all produce **bit-identical** results (IEEE 754
//!   operations are individually deterministic; only reassociation could
//!   diverge, and the order is pinned).  `rustc` never contracts
//!   `a * b + c` into an FMA without explicit opt-in, so optimisation
//!   level does not break this.
//!
//! # Kernel selection
//!
//! [`active_kernel`] reads the `ZSDB_KERNEL` environment variable once
//! per process (`scalar` selects the fallback; anything else — including
//! unset — selects SIMD).  The scalar fallback performs the *same*
//! operations in the *same* order through plain scalar code, so switching
//! kernels never changes a single output bit — the property the
//! `simd ≡ scalar` tests pin.  The fallback exists for pathological
//! targets where the blocked loops pessimise, and as the reference
//! implementation the perf-smoke CI job compares against.

use std::sync::OnceLock;

/// Number of independent accumulator lanes in the canonical reduction
/// (one AVX2 `f64x4` vector, half an AVX-512 vector).
pub const LANES: usize = 4;

/// Which micro-kernel implementation the MLP hot loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Array-blocked loops shaped for SIMD auto-vectorisation (default).
    Simd,
    /// Plain scalar loops in the identical canonical order.
    Scalar,
}

impl KernelKind {
    /// Stable lowercase name (`"simd"` / `"scalar"`), as accepted by the
    /// `ZSDB_KERNEL` environment variable and reported in benchmark
    /// artifacts.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Simd => "simd",
            KernelKind::Scalar => "scalar",
        }
    }
}

static ACTIVE: OnceLock<KernelKind> = OnceLock::new();

/// The process-wide kernel, chosen once from the `ZSDB_KERNEL`
/// environment variable (`scalar` → [`KernelKind::Scalar`]; unset or
/// anything else → [`KernelKind::Simd`]).
pub fn active_kernel() -> KernelKind {
    *ACTIVE.get_or_init(|| match std::env::var("ZSDB_KERNEL").as_deref() {
        Ok("scalar") => KernelKind::Scalar,
        _ => KernelKind::Simd,
    })
}

/// Canonical-order sum of a slice.
#[inline]
pub fn sum(kind: KernelKind, v: &[f64]) -> f64 {
    match kind {
        KernelKind::Simd => sum_simd(v),
        KernelKind::Scalar => sum_scalar(v),
    }
}

/// Canonical-order dot product of two equal-length slices.
#[inline]
pub fn dot(kind: KernelKind, a: &[f64], b: &[f64]) -> f64 {
    match kind {
        KernelKind::Simd => dot_simd(a, b),
        KernelKind::Scalar => dot_scalar(a, b),
    }
}

/// One affine output unit: `bias + dot(w, x)` in canonical order.
#[inline]
pub fn affine(kind: KernelKind, bias: f64, w: &[f64], x: &[f64]) -> f64 {
    bias + dot(kind, w, x)
}

/// SIMD-shaped canonical sum: a `[f64; LANES]` accumulator block the
/// compiler keeps in one vector register.
#[inline]
fn sum_simd(v: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = v.len() / LANES;
    for k in 0..chunks {
        let c = &v[LANES * k..LANES * (k + 1)];
        for (a, x) in acc.iter_mut().zip(c) {
            *a += x;
        }
    }
    let mut tail = 0.0;
    for x in &v[LANES * chunks..] {
        tail += x;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Scalar canonical sum: four named scalar accumulators, same order as
/// [`sum_simd`] operation for operation.
#[inline]
fn sum_scalar(v: &[f64]) -> f64 {
    let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let chunks = v.len() / LANES;
    for k in 0..chunks {
        let base = LANES * k;
        l0 += v[base];
        l1 += v[base + 1];
        l2 += v[base + 2];
        l3 += v[base + 3];
    }
    let mut tail = 0.0;
    for x in &v[LANES * chunks..] {
        tail += x;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

/// SIMD-shaped canonical dot product.
#[inline]
fn dot_simd(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let chunks = a.len() / LANES;
    for k in 0..chunks {
        let ca = &a[LANES * k..LANES * (k + 1)];
        let cb = &b[LANES * k..LANES * (k + 1)];
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[LANES * chunks..].iter().zip(&b[LANES * chunks..]) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Scalar canonical dot product, operation-for-operation identical to
/// [`dot_simd`].
#[inline]
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let chunks = a.len() / LANES;
    for k in 0..chunks {
        let base = LANES * k;
        l0 += a[base] * b[base];
        l1 += a[base + 1] * b[base + 1];
        l2 += a[base + 2] * b[base + 2];
        l3 += a[base + 3] * b[base + 3];
    }
    let mut tail = 0.0;
    for (x, y) in a[LANES * chunks..].iter().zip(&b[LANES * chunks..]) {
        tail += x * y;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(len: usize, seed: u64) -> Vec<f64> {
        (0..len)
            .map(|i| ((i as f64 + seed as f64 * 0.71).sin() * 1.9) + (i % 7) as f64 * 0.013)
            .collect()
    }

    #[test]
    fn simd_and_scalar_sums_are_bit_identical() {
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 13, 64, 97] {
            let v = noisy(len, 3);
            assert_eq!(
                sum_simd(&v).to_bits(),
                sum_scalar(&v).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn simd_and_scalar_dots_are_bit_identical() {
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 13, 64, 97] {
            let a = noisy(len, 5);
            let b = noisy(len, 11);
            assert_eq!(
                dot_simd(&a, &b).to_bits(),
                dot_scalar(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn reduction_order_is_the_documented_lane_order() {
        // 6 elements: lanes get v[0..4], tail is v[4] + v[5].
        let v = [1e16, 1.0, -1e16, 1.0, 0.5, 0.25];
        let expected: f64 = ((1e16 + 1.0) + (-1e16 + 1.0)) + (0.5 + 0.25);
        assert_eq!(sum(KernelKind::Simd, &v).to_bits(), expected.to_bits());
        assert_eq!(sum(KernelKind::Scalar, &v).to_bits(), expected.to_bits());
    }

    #[test]
    fn affine_adds_bias_after_the_reduction() {
        let w = noisy(9, 1);
        let x = noisy(9, 2);
        let expected = 0.37 + dot_simd(&w, &x);
        assert_eq!(
            affine(KernelKind::Simd, 0.37, &w, &x).to_bits(),
            expected.to_bits()
        );
        assert_eq!(
            affine(KernelKind::Scalar, 0.37, &w, &x).to_bits(),
            expected.to_bits()
        );
    }

    #[test]
    fn kernel_names_round_trip() {
        assert_eq!(KernelKind::Simd.name(), "simd");
        assert_eq!(KernelKind::Scalar.name(), "scalar");
    }
}
