//! # zsdb-nn
//!
//! A deliberately small neural-network library: dense layers over `f64`
//! vectors, multi-layer perceptrons with manual backpropagation, the Adam
//! optimizer and regression metrics (Q-error).
//!
//! All learned cost models in the workspace — the zero-shot model in
//! `zsdb-core` as well as the MSCN / E2E baselines — are built from these
//! pieces.  There is no autograd: models call `forward_cached` /
//! `backward` explicitly, which keeps the DAG message-passing architecture
//! of the zero-shot model easy to reason about and fast enough on a CPU.
//!
//! Every MLP also runs in **batched** mode ([`batch::Batch`],
//! [`Mlp::forward_batch`], [`Mlp::backward_batch`]): one fused loop per
//! layer over a whole mini-batch, bit-identical per example to the
//! per-example forward, with a fixed ascending-example gradient reduction
//! order so training stays deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod kernel;
pub mod metrics;
pub mod mlp;
pub mod optim;
pub mod param;

pub use batch::Batch;
pub use kernel::{active_kernel, KernelKind};
pub use metrics::{median, percentile, q_error, QErrorSummary};
pub use mlp::{Activation, BatchForwardScratch, ForwardScratch, Mlp, MlpBatchCache, MlpCache};
pub use optim::Adam;
pub use param::ParamBuf;
