//! Mini-batch matrices for batched MLP execution.
//!
//! A [`Batch`] holds `n` example vectors of dimension `dim` in a single
//! flat allocation, stored **feature-major** (`data[f * n + e]` is feature
//! `f` of example `e`).  The layout is chosen for the batched layer loops
//! in [`Mlp::forward_batch`](crate::Mlp::forward_batch): for a fixed
//! output unit the inner loop runs over *examples*, which are independent
//! accumulators in contiguous memory — the compiler can vectorise across
//! the batch while every single example still sees exactly the same
//! floating-point operations in exactly the same order as the per-example
//! [`Mlp::forward`](crate::Mlp::forward) path.  That ordering guarantee is
//! what makes batched inference bit-identical to per-example inference.

/// A batch of `n` example vectors of dimension `dim`, feature-major.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    dim: usize,
    n: usize,
    data: Vec<f64>,
}

impl Batch {
    /// A zero-filled batch of `n` examples of dimension `dim`.
    pub fn zeros(dim: usize, n: usize) -> Self {
        Batch {
            dim,
            n,
            data: vec![0.0; dim * n],
        }
    }

    /// Build a batch from example slices (all of length `dim`).
    pub fn from_examples<'a, I>(dim: usize, examples: I) -> Self
    where
        I: ExactSizeIterator<Item = &'a [f64]>,
    {
        let n = examples.len();
        let mut batch = Batch::zeros(dim, n);
        for (e, x) in examples.enumerate() {
            batch.set_example(e, x);
        }
        batch
    }

    /// Number of examples in the batch.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dimension of each example vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the batch holds no examples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The values of feature `f` across all examples.
    pub fn feature_row(&self, f: usize) -> &[f64] {
        &self.data[f * self.n..(f + 1) * self.n]
    }

    /// Mutable values of feature `f` across all examples.
    pub fn feature_row_mut(&mut self, f: usize) -> &mut [f64] {
        &mut self.data[f * self.n..(f + 1) * self.n]
    }

    /// Read feature `f` of example `e`.
    pub fn get(&self, f: usize, e: usize) -> f64 {
        self.data[f * self.n + e]
    }

    /// Write feature `f` of example `e`.
    pub fn set(&mut self, f: usize, e: usize, v: f64) {
        self.data[f * self.n + e] = v;
    }

    /// Add `v` to feature `f` of example `e`.
    pub fn add(&mut self, f: usize, e: usize, v: f64) {
        self.data[f * self.n + e] += v;
    }

    /// Overwrite example `e` with the vector `x` (length `dim`).
    pub fn set_example(&mut self, e: usize, x: &[f64]) {
        debug_assert_eq!(x.len(), self.dim);
        for (f, &v) in x.iter().enumerate() {
            self.data[f * self.n + e] = v;
        }
    }

    /// Copy example `e` into `out` (cleared first).
    pub fn example_into(&self, e: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.dim);
        for f in 0..self.dim {
            out.push(self.data[f * self.n + e]);
        }
    }

    /// Example `e` as a freshly allocated vector.
    pub fn example(&self, e: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.example_into(e, &mut out);
        out
    }

    /// Reshape this batch to `dim × n`, zero-filled, **reusing** the
    /// existing allocation (grown once to the high-water mark, never
    /// shrunk).  The workhorse of the allocation-free batched paths: a
    /// long-lived scratch batch is `resize`d per group/layer instead of
    /// constructing a fresh [`Batch::zeros`].
    pub fn resize(&mut self, dim: usize, n: usize) {
        self.dim = dim;
        self.n = n;
        self.data.clear();
        self.data.resize(dim * n, 0.0);
    }

    /// The raw feature-major buffer (`data[f * n + e]`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw feature-major buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy the first `rows` feature rows of `src` into the feature rows
    /// starting at `dst_offset` of `self`, for the same batch width.
    pub fn copy_rows_from(&mut self, dst_offset: usize, src: &Batch, rows: usize) {
        debug_assert_eq!(self.n, src.n);
        debug_assert!(rows <= src.dim && dst_offset + rows <= self.dim);
        self.data[dst_offset * self.n..(dst_offset + rows) * self.n]
            .copy_from_slice(&src.data[..rows * self.n]);
    }

    /// Extract `dim` feature rows starting at `offset` as a new batch of
    /// the same width.
    pub fn sub_rows(&self, offset: usize, dim: usize) -> Batch {
        debug_assert!(offset + dim <= self.dim);
        Batch {
            dim,
            n: self.n,
            data: self.data[offset * self.n..(offset + dim) * self.n].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_major_layout_round_trips_examples() {
        let examples: Vec<Vec<f64>> = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let batch = Batch::from_examples(3, examples.iter().map(|v| v.as_slice()));
        assert_eq!(batch.n(), 2);
        assert_eq!(batch.dim(), 3);
        // Feature rows are contiguous across examples.
        assert_eq!(batch.feature_row(0), &[1.0, 4.0]);
        assert_eq!(batch.feature_row(2), &[3.0, 6.0]);
        // Examples reassemble exactly.
        assert_eq!(batch.example(0), examples[0]);
        assert_eq!(batch.example(1), examples[1]);
    }

    #[test]
    fn set_add_get_address_the_same_cell() {
        let mut b = Batch::zeros(2, 3);
        b.set(1, 2, 5.0);
        b.add(1, 2, 2.5);
        assert_eq!(b.get(1, 2), 7.5);
        assert_eq!(b.get(0, 2), 0.0);
    }

    #[test]
    fn copy_rows_from_moves_whole_feature_blocks() {
        let src = Batch::from_examples(
            2,
            [[1.0, 2.0].as_slice(), [3.0, 4.0].as_slice()].into_iter(),
        );
        let mut dst = Batch::zeros(4, 2);
        dst.copy_rows_from(1, &src, 2);
        assert_eq!(dst.feature_row(0), &[0.0, 0.0]);
        assert_eq!(dst.feature_row(1), &[1.0, 3.0]);
        assert_eq!(dst.feature_row(2), &[2.0, 4.0]);
        assert_eq!(dst.feature_row(3), &[0.0, 0.0]);
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let b = Batch::zeros(4, 0);
        assert!(b.is_empty());
        assert_eq!(b.feature_row(3), &[] as &[f64]);
    }
}
