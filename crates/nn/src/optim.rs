//! Optimizers.

use crate::param::ParamBuf;
use serde::{Deserialize, Serialize};

/// The Adam optimizer (Kingma & Ba) over a set of [`ParamBuf`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// Exponential decay rate of the first moment.
    pub beta1: f64,
    /// Exponential decay rate of the second moment.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub eps: f64,
    t: u64,
}

impl Adam {
    /// Adam with the usual defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update to all parameters and clear their gradients.
    pub fn step(&mut self, params: &mut [&mut ParamBuf]) {
        self.t += 1;
        for p in params.iter_mut() {
            p.adam_step(self.lr, self.beta1, self.beta2, self.eps, self.t);
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counter_increments_and_grads_clear() {
        let mut adam = Adam::new(0.01);
        let mut p = ParamBuf::new(vec![1.0]);
        p.grad[0] = 1.0;
        adam.step(&mut [&mut p]);
        assert_eq!(adam.steps(), 1);
        assert_eq!(p.grad[0], 0.0);
        assert!(p.data[0] < 1.0);
    }

    #[test]
    fn optimizes_multiple_buffers() {
        let mut adam = Adam::new(0.05);
        let mut a = ParamBuf::new(vec![5.0]);
        let mut b = ParamBuf::new(vec![-5.0]);
        for _ in 0..1500 {
            a.grad[0] = 2.0 * a.data[0];
            b.grad[0] = 2.0 * b.data[0];
            adam.step(&mut [&mut a, &mut b]);
        }
        assert!(a.data[0].abs() < 0.05);
        assert!(b.data[0].abs() < 0.05);
    }
}
