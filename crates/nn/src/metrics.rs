//! Regression metrics, most importantly the Q-error used throughout the
//! paper's evaluation.

use serde::{Deserialize, Serialize};

/// Q-error of a runtime (or cardinality) prediction: the factor by which
/// the prediction deviates from the truth,
/// `max(pred / actual, actual / pred) ≥ 1`.
///
/// Both values are clamped to a small positive floor so that degenerate
/// predictions produce large-but-finite errors.
pub fn q_error(predicted: f64, actual: f64) -> f64 {
    let floor = 1e-9;
    let p = predicted.max(floor);
    let a = actual.max(floor);
    (p / a).max(a / p)
}

/// Median of a sample (averaging the two middle elements for even sizes).
/// Returns `NaN` for empty input.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// The `p`-th percentile (0–100) of a sample using linear interpolation
/// between closest ranks.  Returns `NaN` for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary of a Q-error distribution in the format of the paper's Table 1:
/// median, 95th percentile and maximum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QErrorSummary {
    /// Median Q-error.
    pub median: f64,
    /// 95th-percentile Q-error.
    pub p95: f64,
    /// Maximum Q-error.
    pub max: f64,
    /// Number of predictions summarised.
    pub count: usize,
}

impl QErrorSummary {
    /// Summarise `(predicted, actual)` pairs.
    pub fn from_predictions(pairs: &[(f64, f64)]) -> Self {
        let q: Vec<f64> = pairs.iter().map(|(p, a)| q_error(*p, *a)).collect();
        QErrorSummary {
            median: median(&q),
            p95: percentile(&q, 95.0),
            max: q.iter().copied().fold(f64::NAN, f64::max),
            count: q.len(),
        }
    }
}

impl std::fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:.2}  p95 {:.2}  max {:.2}  (n={})",
            self.median, self.p95, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(2.0, 2.0), 1.0);
        assert_eq!(q_error(4.0, 2.0), 2.0);
        assert_eq!(q_error(2.0, 4.0), 2.0);
        assert!(q_error(0.0, 5.0) > 1e6);
    }

    #[test]
    fn median_and_percentiles() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&values), 3.0);
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 100.0), 5.0);
        let even = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&even) - 2.5).abs() < 1e-12);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn q_error_exact_match_is_exactly_one() {
        for v in [1e-6, 0.5, 1.0, 3.5, 1e9] {
            assert_eq!(q_error(v, v), 1.0, "q_error({v}, {v})");
        }
    }

    #[test]
    fn q_error_guards_zero_and_negative_inputs() {
        // Zero and negative values are clamped to the positive floor, so
        // the metric stays finite and ≥ 1 instead of dividing by zero.
        assert!(q_error(0.0, 1.0).is_finite());
        assert!(q_error(1.0, 0.0).is_finite());
        assert!(q_error(-5.0, 2.0).is_finite());
        assert!(q_error(2.0, -5.0).is_finite());
        assert!(q_error(0.0, 0.0) >= 1.0);
        assert_eq!(q_error(0.0, 0.0), 1.0); // both clamp to the same floor
        assert_eq!(q_error(-1.0, -2.0), 1.0);
        assert!(q_error(0.0, 1.0) >= 1e8); // floor makes the error huge, not infinite
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let values = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&values, -10.0), 1.0);
        assert_eq!(percentile(&values, 150.0), 3.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_single_element_is_constant() {
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], p), 7.5);
        }
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let values = [0.0, 10.0];
        assert!((percentile(&values, 25.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&values, 75.0) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let pairs = [(1.0, 1.0), (2.0, 1.0), (1.0, 4.0), (8.0, 1.0)];
        let s = QErrorSummary::from_predictions(&pairs);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 8.0);
        assert!((s.median - 3.0).abs() < 1e-12); // q-errors 1,2,4,8 → median 3
    }

    #[test]
    fn summary_display_is_readable() {
        let s = QErrorSummary {
            median: 1.2,
            p95: 2.5,
            max: 10.0,
            count: 3,
        };
        assert_eq!(s.to_string(), "median 1.20  p95 2.50  max 10.00  (n=3)");
    }
}
