//! Dense layers and multi-layer perceptrons with manual backpropagation.
//!
//! Every MLP offers two execution modes:
//!
//! * **per-example** (`forward`, `forward_cached`, `backward`) — one
//!   vector at a time, the original training/inference path;
//! * **batched** (`forward_batch`, `forward_batch_cached`,
//!   `backward_batch`) — a whole [`Batch`] of examples through one fused
//!   loop per layer.  For a fixed `(example, output unit)` pair the
//!   accumulation order over input units is identical to the per-example
//!   path, so batched *forward* outputs are bit-identical to per-example
//!   outputs; the batched layout additionally lets the inner loops run
//!   over independent per-example accumulators in contiguous memory,
//!   which is what makes batching fast on a CPU.
//!
//! Every dot product in both modes reduces in the canonical 4-lane order
//! of [`crate::kernel`], executed by either the SIMD-shaped or the scalar
//! micro-kernels — the two are bit-identical, and the process-wide choice
//! comes from the `ZSDB_KERNEL` environment variable (see
//! [`crate::kernel::active_kernel`]).

use crate::batch::Batch;
use crate::kernel::{self, active_kernel, KernelKind, LANES};
use crate::param::ParamBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activation function applied after every hidden layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x if x > 0 else 0.01 x
    LeakyRelu,
    /// identity (linear layer)
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Identity => x,
        }
    }

    fn derivative(self, pre: f64) -> f64 {
        match self {
            Activation::Relu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer `y = W x + b` with `W` stored row-major
/// (`out_dim × in_dim`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Linear {
    in_dim: usize,
    out_dim: usize,
    w: ParamBuf,
    b: ParamBuf,
}

impl Linear {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        // He-style initialisation keeps ReLU activations well-scaled.
        let scale = (2.0 / in_dim.max(1) as f64).sqrt();
        let w: Vec<f64> = (0..in_dim * out_dim)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Linear {
            in_dim,
            out_dim,
            w: ParamBuf::new(w),
            b: ParamBuf::zeros(out_dim),
        }
    }

    /// Per-example forward: `out[o] = b[o] + dot(w[o], x)` in the
    /// canonical 4-lane reduction order of [`crate::kernel`] — the same
    /// order every batched kernel uses, which is what keeps batched and
    /// per-example outputs bit-identical.
    fn forward(&self, kind: KernelKind, x: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(x.len(), self.in_dim);
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w.data[o * self.in_dim..(o + 1) * self.in_dim];
            out.push(kernel::affine(kind, self.b.data[o], row, x));
        }
    }

    /// Accumulate parameter gradients for this layer given the input `x`
    /// and the gradient w.r.t. the (pre-activation) output `dy`; returns
    /// the gradient w.r.t. the input.
    fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        // Hard assert: a short `dy` would otherwise silently skip gradient
        // accumulation for the tail output units in release builds.
        assert_eq!(dy.len(), self.out_dim);
        let mut dx = vec![0.0; self.in_dim];
        for (o, &g) in dy.iter().enumerate() {
            self.b.grad[o] += g;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.w.grad[row_start + i] += g * x[i];
                dx[i] += g * self.w.data[row_start + i];
            }
        }
        dx
    }

    /// Batched forward: `out[o][e] = b[o] + dot(w[o], x[·][e])` with the
    /// dot product reduced in the canonical 4-lane order — exactly the
    /// operation order of the per-example [`Linear::forward`], so each
    /// column of `out` is bit-identical to a per-example forward of that
    /// column, under either kernel.
    fn forward_batch(&self, kind: KernelKind, x: &Batch, out: &mut Batch) {
        debug_assert_eq!(x.dim(), self.in_dim);
        debug_assert_eq!(out.dim(), self.out_dim);
        debug_assert_eq!(x.n(), out.n());
        match kind {
            KernelKind::Simd => self.forward_batch_simd(x, out),
            KernelKind::Scalar => self.forward_batch_unblocked(x, out, 0),
        }
    }

    /// SIMD-shaped batched forward: for each output unit, a register
    /// block of [`LANES`] lane-accumulator rows × [`TILE_E`] examples
    /// (`LANES × TILE_E` f64 accumulators, i.e. eight AVX2 vectors) sweeps
    /// the input in lane-interleaved order.  Lane `l` of example `e`
    /// accumulates `w[o][4k+l] · x[4k+l][e]` over ascending `k`; lanes
    /// combine pairwise and the `in_dim % 4` tail is added last — the
    /// canonical order, vectorised across the example tile.
    fn forward_batch_simd(&self, x: &Batch, out: &mut Batch) {
        let n = x.n();
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        let chunks = in_dim / LANES;
        let mut e = 0;
        while e + TILE_E <= n {
            for o in 0..out_dim {
                let wrow = &self.w.data[o * in_dim..(o + 1) * in_dim];
                let mut lanes = [[0.0f64; TILE_E]; LANES];
                for k in 0..chunks {
                    for (l, lane) in lanes.iter_mut().enumerate() {
                        let i = LANES * k + l;
                        let w_oi = wrow[i];
                        let xv: &[f64; TILE_E] =
                            x.feature_row(i)[e..e + TILE_E].try_into().expect("tile");
                        for (a, &xe) in lane.iter_mut().zip(xv) {
                            *a += w_oi * xe;
                        }
                    }
                }
                let mut tail = [0.0f64; TILE_E];
                for (i, &w_oi) in wrow.iter().enumerate().skip(LANES * chunks) {
                    let xv: &[f64; TILE_E] =
                        x.feature_row(i)[e..e + TILE_E].try_into().expect("tile");
                    for (a, &xe) in tail.iter_mut().zip(xv) {
                        *a += w_oi * xe;
                    }
                }
                let bias = self.b.data[o];
                let orow = &mut out.feature_row_mut(o)[e..e + TILE_E];
                for (j, dst) in orow.iter_mut().enumerate() {
                    *dst = bias
                        + (((lanes[0][j] + lanes[1][j]) + (lanes[2][j] + lanes[3][j])) + tail[j]);
                }
            }
            e += TILE_E;
        }
        // Remaining examples: unblocked canonical-order accumulation.
        self.forward_batch_unblocked(x, out, e);
    }

    /// Unblocked batched forward over examples `e0..n`, one example ×
    /// output unit at a time in the canonical lane order.  Serves as the
    /// scalar kernel (from `e0 = 0`) and as the `n % TILE_E` remainder of
    /// the SIMD kernel — identical operations, identical order.
    fn forward_batch_unblocked(&self, x: &Batch, out: &mut Batch, e0: usize) {
        let n = x.n();
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        let chunks = in_dim / LANES;
        for e in e0..n {
            for o in 0..out_dim {
                let wrow = &self.w.data[o * in_dim..(o + 1) * in_dim];
                let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for k in 0..chunks {
                    let base = LANES * k;
                    l0 += wrow[base] * x.feature_row(base)[e];
                    l1 += wrow[base + 1] * x.feature_row(base + 1)[e];
                    l2 += wrow[base + 2] * x.feature_row(base + 2)[e];
                    l3 += wrow[base + 3] * x.feature_row(base + 3)[e];
                }
                let mut tail = 0.0;
                for (i, &w_oi) in wrow.iter().enumerate().skip(LANES * chunks) {
                    tail += w_oi * x.feature_row(i)[e];
                }
                out.feature_row_mut(o)[e] = self.b.data[o] + (((l0 + l1) + (l2 + l3)) + tail);
            }
        }
    }

    /// Batched backward: accumulate parameter gradients over the whole
    /// batch (reduced with the canonical 4-lane order of
    /// [`kernel::sum`] / [`kernel::dot`] — deterministic for any batch)
    /// and write the input gradients to `dx`.
    fn backward_batch(&mut self, kind: KernelKind, x: &Batch, dy: &Batch, dx: &mut Batch) {
        debug_assert_eq!(x.dim(), self.in_dim);
        debug_assert_eq!(dy.dim(), self.out_dim);
        debug_assert_eq!(dx.dim(), self.in_dim);
        debug_assert_eq!(x.n(), dy.n());
        debug_assert_eq!(x.n(), dx.n());
        // Parameter gradients: block over output units so each input row
        // is streamed once per GRAD_TILE_O outputs.  Every (o, i) cell is
        // an independent canonical-order reduction over examples, so the
        // blocking never affects a single bit.
        let mut o = 0;
        while o + GRAD_TILE_O <= self.out_dim {
            for ob in 0..GRAD_TILE_O {
                self.b.grad[o + ob] += kernel::sum(kind, dy.feature_row(o + ob));
            }
            for i in 0..self.in_dim {
                let xrow = x.feature_row(i);
                for ob in 0..GRAD_TILE_O {
                    self.w.grad[(o + ob) * self.in_dim + i] +=
                        kernel::dot(kind, dy.feature_row(o + ob), xrow);
                }
            }
            o += GRAD_TILE_O;
        }
        while o < self.out_dim {
            let dyrow = dy.feature_row(o);
            self.b.grad[o] += kernel::sum(kind, dyrow);
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.w.grad[row_start + i] += kernel::dot(kind, dyrow, x.feature_row(i));
            }
            o += 1;
        }

        // Input gradients (`dx[i][e] = Σ_o w[o][i] · dy[o][e]`, summed
        // sequentially in ascending `o` under either kernel — the sum
        // runs over *output units*, not lanes, so it keeps the
        // pre-existing sequential order).
        dx.data_mut().fill(0.0);
        match kind {
            KernelKind::Simd => self.input_grad_simd(dy, dx),
            KernelKind::Scalar => self.input_grad_unblocked(dy, dx, 0),
        }
    }

    /// SIMD-shaped input-gradient accumulation: register tiles of
    /// `GRAD_TILE_O` input features × [`TILE_E`] examples, streaming each
    /// `dy` row once per tile.
    fn input_grad_simd(&self, dy: &Batch, dx: &mut Batch) {
        let n = dx.n();
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        let mut e = 0;
        while e + TILE_E <= n {
            let mut i = 0;
            while i + GRAD_TILE_O <= in_dim {
                let mut acc = [[0.0f64; TILE_E]; GRAD_TILE_O];
                for o in 0..out_dim {
                    let gv: &[f64; TILE_E] =
                        dy.feature_row(o)[e..e + TILE_E].try_into().expect("tile");
                    for (ib, row) in acc.iter_mut().enumerate() {
                        let w_oi = self.w.data[o * in_dim + i + ib];
                        for (a, &ge) in row.iter_mut().zip(gv) {
                            *a += w_oi * ge;
                        }
                    }
                }
                for (ib, row) in acc.iter().enumerate() {
                    dx.feature_row_mut(i + ib)[e..e + TILE_E].copy_from_slice(row);
                }
                i += GRAD_TILE_O;
            }
            while i < in_dim {
                let mut acc = [0.0f64; TILE_E];
                for o in 0..out_dim {
                    let gv: &[f64; TILE_E] =
                        dy.feature_row(o)[e..e + TILE_E].try_into().expect("tile");
                    let w_oi = self.w.data[o * in_dim + i];
                    for (a, &ge) in acc.iter_mut().zip(gv) {
                        *a += w_oi * ge;
                    }
                }
                dx.feature_row_mut(i)[e..e + TILE_E].copy_from_slice(&acc);
                i += 1;
            }
            e += TILE_E;
        }
        self.input_grad_unblocked(dy, dx, e);
    }

    /// Unblocked input gradients over examples `e0..n` — the scalar
    /// kernel and the SIMD remainder path (same sequential-over-`o`
    /// order).
    fn input_grad_unblocked(&self, dy: &Batch, dx: &mut Batch, e0: usize) {
        let n = dx.n();
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        for e in e0..n {
            for i in 0..in_dim {
                let mut acc = 0.0;
                for o in 0..out_dim {
                    acc += self.w.data[o * in_dim + i] * dy.feature_row(o)[e];
                }
                dx.feature_row_mut(i)[e] = acc;
            }
        }
    }
}

/// Examples per register tile of the batched kernels (one AVX-512 f64
/// vector, two AVX2 vectors).
const TILE_E: usize = 8;

/// Feature/output units per register tile of the gradient kernels:
/// `GRAD_TILE_O × TILE_E` accumulators stay in registers, so every
/// streamed row is loaded once per `GRAD_TILE_O` units instead of once
/// per unit.
const GRAD_TILE_O: usize = 4;

/// Reusable ping-pong buffers for allocation-free inference through an
/// [`Mlp`] (see [`Mlp::forward_into`]).
///
/// A scratch instance may be reused across calls and across different
/// `Mlp`s; buffers grow to the widest layer encountered and are never
/// shrunk, so a long-lived scratch makes repeated inference allocation-free
/// — the optimisation that matters on the serving hot path, where the same
/// worker thread pushes thousands of plans through the same model.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

/// Reusable ping-pong [`Batch`] buffers for allocation-free *batched*
/// inference (see [`Mlp::forward_batch_into`]).  Like [`ForwardScratch`],
/// a long-lived instance grows to the high-water mark of
/// `widest layer × largest batch` and is never shrunk, so warm calls
/// perform zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct BatchForwardScratch {
    a: Batch,
    b: Batch,
}

/// Forward-pass cache needed for backpropagation through an [`Mlp`].
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// Input and all post-activation vectors, layer by layer
    /// (`activations[0]` is the input).
    activations: Vec<Vec<f64>>,
    /// Pre-activation vectors per layer.
    pre_activations: Vec<Vec<f64>>,
}

/// Batched forward-pass cache needed by [`Mlp::backward_batch`].
#[derive(Debug, Clone, Default)]
pub struct MlpBatchCache {
    /// Input and all post-activation batches (`activations[0]` is the
    /// input batch).
    activations: Vec<Batch>,
    /// Pre-activation batches per layer.
    pre_activations: Vec<Batch>,
}

/// A multi-layer perceptron: `dims[0] → dims[1] → … → dims[last]`, with the
/// configured activation after every layer except the last (which is
/// linear).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Create an MLP with the given layer sizes; weights are initialised
    /// deterministically from `seed`.
    pub fn new(dims: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim).unwrap_or(0)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim).unwrap_or(0)
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass without keeping a cache (inference).
    ///
    /// Convenience wrapper around [`Mlp::forward_into`] that allocates a
    /// fresh scratch per call; hot paths should hold a [`ForwardScratch`]
    /// and call `forward_into` directly.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut scratch = ForwardScratch::default();
        self.forward_into(x, &mut scratch).to_vec()
    }

    /// Allocation-free forward pass: ping-pongs between the two scratch
    /// buffers instead of allocating per layer, and returns a slice into
    /// the scratch holding the output activations.
    ///
    /// Produces bit-identical results to [`Mlp::forward`] and to the
    /// output of [`Mlp::forward_cached`] (same operations in the same
    /// order), under the process-wide [`active_kernel`].
    pub fn forward_into<'s>(&self, x: &[f64], scratch: &'s mut ForwardScratch) -> &'s [f64] {
        self.forward_into_with(active_kernel(), x, scratch)
    }

    /// [`Mlp::forward_into`] with an explicit kernel choice.  Both
    /// kernels produce bit-identical outputs (the `simd ≡ scalar`
    /// contract); this entry point exists so tests and benchmarks can
    /// exercise both paths in one process.
    pub fn forward_into_with<'s>(
        &self,
        kind: KernelKind,
        x: &[f64],
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        let num_layers = self.layers.len();
        if num_layers == 0 {
            scratch.a.clear();
            scratch.a.extend_from_slice(x);
            return &scratch.a;
        }
        // Layer 0 reads the caller's input; subsequent layers alternate
        // between the two scratch buffers.
        self.layers[0].forward(kind, x, &mut scratch.a);
        if num_layers > 1 {
            for v in scratch.a.iter_mut() {
                *v = self.activation.apply(*v);
            }
        }
        let mut in_a = true;
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let (src, dst) = if in_a {
                (&scratch.a, &mut scratch.b)
            } else {
                (&scratch.b, &mut scratch.a)
            };
            layer.forward(kind, src, dst);
            if i + 1 < num_layers {
                for v in dst.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            in_a = !in_a;
        }
        if in_a {
            &scratch.a
        } else {
            &scratch.b
        }
    }

    /// Forward pass that records the cache needed by [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, MlpCache) {
        let mut cache = MlpCache {
            activations: vec![x.to_vec()],
            pre_activations: Vec::with_capacity(self.layers.len()),
        };
        let mut current = x.to_vec();
        let mut buffer = Vec::new();
        let kind = active_kernel();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(kind, &current, &mut buffer);
            cache.pre_activations.push(buffer.clone());
            let is_last = i + 1 == self.layers.len();
            current = if is_last {
                buffer.clone()
            } else {
                buffer.iter().map(|&v| self.activation.apply(v)).collect()
            };
            cache.activations.push(current.clone());
        }
        (current, cache)
    }

    /// Backpropagate `d_out` (gradient w.r.t. the MLP output) through the
    /// network, accumulating parameter gradients, and return the gradient
    /// w.r.t. the input.
    pub fn backward(&mut self, cache: &MlpCache, d_out: &[f64]) -> Vec<f64> {
        let mut grad = d_out.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let is_last = i + 1 == cache.pre_activations.len();
            if !is_last {
                let pre = &cache.pre_activations[i];
                for (g, p) in grad.iter_mut().zip(pre) {
                    *g *= self.activation.derivative(*p);
                }
            }
            let input = &cache.activations[i];
            grad = layer.backward(input, &grad);
        }
        grad
    }

    /// Batched inference: push a whole [`Batch`] through the network.
    ///
    /// Column `e` of the result is **bit-identical** to
    /// `self.forward(x.example(e))` — the batched layer loops perform the
    /// same floating-point operations in the same order per example (see
    /// [`Batch`] for the layout argument).
    pub fn forward_batch(&self, x: &Batch) -> Batch {
        self.forward_batch_with(active_kernel(), x)
    }

    /// [`Mlp::forward_batch`] with an explicit kernel choice (bit-identical
    /// across kernels — see [`crate::kernel`]).
    pub fn forward_batch_with(&self, kind: KernelKind, x: &Batch) -> Batch {
        let n = x.n();
        let num_layers = self.layers.len();
        let mut current: Option<Batch> = None;
        for (l, layer) in self.layers.iter().enumerate() {
            let mut out = Batch::zeros(layer.out_dim, n);
            layer.forward_batch(kind, current.as_ref().unwrap_or(x), &mut out);
            if l + 1 < num_layers {
                for v in out.data_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            current = Some(out);
        }
        current.unwrap_or_else(|| x.clone())
    }

    /// Allocation-free batched inference: like [`Mlp::forward_batch`] but
    /// ping-pongs between two reusable scratch batches instead of
    /// allocating one output batch per layer.  Returns a reference into
    /// the scratch holding the output batch.  Bit-identical to
    /// [`Mlp::forward_batch`] (identical layer kernels; buffer identity
    /// never affects the arithmetic).
    pub fn forward_batch_into<'s>(
        &self,
        x: &Batch,
        scratch: &'s mut BatchForwardScratch,
    ) -> &'s Batch {
        self.forward_batch_into_with(active_kernel(), x, scratch)
    }

    /// [`Mlp::forward_batch_into`] with an explicit kernel choice.
    pub fn forward_batch_into_with<'s>(
        &self,
        kind: KernelKind,
        x: &Batch,
        scratch: &'s mut BatchForwardScratch,
    ) -> &'s Batch {
        let n = x.n();
        let num_layers = self.layers.len();
        if num_layers == 0 {
            scratch.a.resize(x.dim(), n);
            scratch.a.data_mut().copy_from_slice(x.data());
            return &scratch.a;
        }
        scratch.a.resize(self.layers[0].out_dim, n);
        self.layers[0].forward_batch(kind, x, &mut scratch.a);
        if num_layers > 1 {
            for v in scratch.a.data_mut() {
                *v = self.activation.apply(*v);
            }
        }
        let mut in_a = true;
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let (src, dst) = if in_a {
                (&scratch.a, &mut scratch.b)
            } else {
                (&scratch.b, &mut scratch.a)
            };
            dst.resize(layer.out_dim, n);
            layer.forward_batch(kind, src, dst);
            if i + 1 < num_layers {
                for v in dst.data_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            in_a = !in_a;
        }
        if in_a {
            &scratch.a
        } else {
            &scratch.b
        }
    }

    /// Batched forward pass recording the cache needed by
    /// [`Mlp::backward_batch`].  Takes the input by value (callers build
    /// mini-batch inputs fresh per call) — it becomes part of the cache
    /// without a copy.  Outputs are bit-identical to
    /// [`Mlp::forward_batch`] (and therefore to per-example forwards).
    pub fn forward_batch_cached(&self, x: Batch) -> (Batch, MlpBatchCache) {
        self.forward_batch_cached_with(active_kernel(), x)
    }

    /// [`Mlp::forward_batch_cached`] with an explicit kernel choice.
    pub fn forward_batch_cached_with(&self, kind: KernelKind, x: Batch) -> (Batch, MlpBatchCache) {
        let n = x.n();
        let num_layers = self.layers.len();
        let mut cache = MlpBatchCache {
            activations: Vec::with_capacity(num_layers),
            pre_activations: Vec::with_capacity(num_layers.saturating_sub(1)),
        };
        let mut current = x;
        for (l, layer) in self.layers.iter().enumerate() {
            let mut out = Batch::zeros(layer.out_dim, n);
            layer.forward_batch(kind, &current, &mut out);
            // The cache keeps each layer's *input*; the final output is
            // returned to the caller and never needed for backprop.
            cache.activations.push(current);
            if l + 1 < num_layers {
                cache.pre_activations.push(out.clone());
                for v in out.data_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            current = out;
        }
        (current, cache)
    }

    /// Batched backpropagation: push `d_out` (gradient w.r.t. the batched
    /// output) back through the network, accumulating parameter gradients
    /// with a fixed lane-split reduction order, and return the gradient
    /// w.r.t. the input batch.
    pub fn backward_batch(&mut self, cache: &MlpBatchCache, d_out: &Batch) -> Batch {
        self.backward_batch_with(active_kernel(), cache, d_out)
    }

    /// [`Mlp::backward_batch`] with an explicit kernel choice (gradient
    /// bits are identical across kernels — same canonical reductions).
    pub fn backward_batch_with(
        &mut self,
        kind: KernelKind,
        cache: &MlpBatchCache,
        d_out: &Batch,
    ) -> Batch {
        let n = d_out.n();
        let num_layers = self.layers.len();
        let mut grad = d_out.clone();
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let is_last = l + 1 == num_layers;
            if !is_last {
                let pre = &cache.pre_activations[l];
                for (g, p) in grad.data_mut().iter_mut().zip(pre.data()) {
                    *g *= self.activation.derivative(*p);
                }
            }
            let mut dx = Batch::zeros(layer.in_dim, n);
            layer.backward_batch(kind, &cache.activations[l], &grad, &mut dx);
            grad = dx;
        }
        grad
    }

    /// Read-only access to every parameter buffer, in the same order as
    /// [`Mlp::params_mut`] (weights then bias, layer by layer) — the fixed
    /// order used for flat gradient export/reduction.
    pub fn params(&self) -> Vec<&ParamBuf> {
        self.layers.iter().flat_map(|l| [&l.w, &l.b]).collect()
    }

    /// Mutable access to every parameter buffer (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut ParamBuf> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w, &mut l.b])
            .collect()
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check: compare analytic input/parameter gradients
    /// against central finite differences on a scalar loss.
    #[test]
    fn gradient_check_against_finite_differences() {
        let mut mlp = Mlp::new(&[4, 8, 1], Activation::LeakyRelu, 3);
        let x = vec![0.3, -0.7, 1.2, 0.05];
        let target = 0.8;

        // Analytic gradients.
        mlp.zero_grad();
        let (out, cache) = mlp.forward_cached(&x);
        let d_out = vec![2.0 * (out[0] - target)];
        mlp.backward(&cache, &d_out);
        let analytic: Vec<f64> = mlp
            .params_mut()
            .iter()
            .flat_map(|p| p.grad.clone())
            .collect();

        // Finite differences.
        let eps = 1e-6;
        let mut numeric = Vec::with_capacity(analytic.len());
        let num_params: Vec<usize> = mlp.params_mut().iter().map(|p| p.len()).collect();
        for (pi, &len) in num_params.iter().enumerate() {
            for j in 0..len {
                let orig = mlp.params_mut()[pi].data[j];
                mlp.params_mut()[pi].data[j] = orig + eps;
                let up = (mlp.forward(&x)[0] - target).powi(2);
                mlp.params_mut()[pi].data[j] = orig - eps;
                let down = (mlp.forward(&x)[0] - target).powi(2);
                mlp.params_mut()[pi].data[j] = orig;
                numeric.push((up - down) / (2.0 * eps));
            }
        }
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!(
                (a - n).abs() < 1e-5 * (1.0 + a.abs().max(n.abs())),
                "analytic {a} vs numeric {n}"
            );
        }
    }

    /// The input gradient returned by [`Mlp::backward`] must also match
    /// central finite differences (it is what upstream graph models chain
    /// through).
    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut mlp = Mlp::new(&[3, 6, 6, 1], Activation::LeakyRelu, 11);
        let x = vec![0.9, -0.4, 0.2];
        let target = -0.3;

        mlp.zero_grad();
        let (out, cache) = mlp.forward_cached(&x);
        let d_out = vec![2.0 * (out[0] - target)];
        let analytic = mlp.backward(&cache, &d_out);
        assert_eq!(analytic.len(), x.len());

        let eps = 1e-6;
        for i in 0..x.len() {
            let mut up_x = x.clone();
            up_x[i] += eps;
            let mut down_x = x.clone();
            down_x[i] -= eps;
            let up = (mlp.forward(&up_x)[0] - target).powi(2);
            let down = (mlp.forward(&down_x)[0] - target).powi(2);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                "input grad {i}: analytic {} vs numeric {numeric}",
                analytic[i]
            );
        }
    }

    /// Gradient check per activation: every supported activation must
    /// backpropagate consistently with its forward definition.
    #[test]
    fn gradient_check_covers_all_activations() {
        for activation in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Identity,
        ] {
            let mut mlp = Mlp::new(&[2, 4, 1], activation, 23);
            // Offset inputs away from ReLU kinks so finite differences are
            // well-defined.
            let x = vec![0.37, -0.61];
            mlp.zero_grad();
            let (out, cache) = mlp.forward_cached(&x);
            mlp.backward(&cache, &[1.0]);
            let analytic: Vec<f64> = mlp
                .params_mut()
                .iter()
                .flat_map(|p| p.grad.clone())
                .collect();

            let eps = 1e-6;
            let num_params: Vec<usize> = mlp.params_mut().iter().map(|p| p.len()).collect();
            let mut k = 0;
            for (pi, &len) in num_params.iter().enumerate() {
                for j in 0..len {
                    let orig = mlp.params_mut()[pi].data[j];
                    mlp.params_mut()[pi].data[j] = orig + eps;
                    let up = mlp.forward(&x)[0];
                    mlp.params_mut()[pi].data[j] = orig - eps;
                    let down = mlp.forward(&x)[0];
                    mlp.params_mut()[pi].data[j] = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    assert!(
                        (analytic[k] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                        "{activation:?} param {k}: analytic {} vs numeric {numeric}",
                        analytic[k]
                    );
                    k += 1;
                }
            }
            let _ = out;
        }
    }

    #[test]
    fn forward_into_matches_forward_bit_for_bit() {
        let mlp = Mlp::new(&[5, 9, 7, 2], Activation::LeakyRelu, 17);
        let mut scratch = ForwardScratch::default();
        for trial in 0..10 {
            let x: Vec<f64> = (0..5).map(|i| (i as f64 - trial as f64) * 0.37).collect();
            let allocating = mlp.forward(&x);
            let (cached_out, _) = mlp.forward_cached(&x);
            let scratch_out = mlp.forward_into(&x, &mut scratch);
            assert_eq!(scratch_out.len(), allocating.len());
            for ((a, b), c) in allocating.iter().zip(scratch_out).zip(&cached_out) {
                assert_eq!(a.to_bits(), b.to_bits());
                assert_eq!(a.to_bits(), c.to_bits());
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_models_of_different_shapes() {
        let narrow = Mlp::new(&[2, 3, 1], Activation::Relu, 1);
        let wide = Mlp::new(&[4, 32, 32, 2], Activation::Relu, 2);
        let mut scratch = ForwardScratch::default();
        let narrow_expected = narrow.forward(&[0.5, -0.5]);
        let wide_expected = wide.forward(&[1.0, 2.0, 3.0, 4.0]);
        for _ in 0..3 {
            assert_eq!(
                narrow.forward_into(&[0.5, -0.5], &mut scratch),
                &narrow_expected[..]
            );
            assert_eq!(
                wide.forward_into(&[1.0, 2.0, 3.0, 4.0], &mut scratch),
                &wide_expected[..]
            );
        }
    }

    #[test]
    fn single_layer_mlp_forward_into() {
        // One linear layer: no activation is applied (the last layer is
        // linear by convention), and only one scratch buffer is used.
        let mlp = Mlp::new(&[3, 2], Activation::LeakyRelu, 4);
        let mut scratch = ForwardScratch::default();
        let x = [0.1, -0.2, 0.3];
        assert_eq!(mlp.forward_into(&x, &mut scratch), &mlp.forward(&x)[..]);
    }

    #[test]
    fn forward_is_deterministic_per_seed() {
        let a = Mlp::new(&[3, 5, 2], Activation::Relu, 7);
        let b = Mlp::new(&[3, 5, 2], Activation::Relu, 7);
        let c = Mlp::new(&[3, 5, 2], Activation::Relu, 8);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.forward(&x), b.forward(&x));
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn shapes_and_parameter_counts() {
        let mlp = Mlp::new(&[6, 16, 16, 1], Activation::Relu, 1);
        assert_eq!(mlp.input_dim(), 6);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.num_parameters(), 6 * 16 + 16 + 16 * 16 + 16 + 16 + 1);
        assert_eq!(mlp.forward(&[0.0; 6]).len(), 1);
    }

    #[test]
    fn mlp_learns_a_simple_function() {
        // Fit y = 2*x0 - x1 with Adam; should get close within a few
        // hundred steps.
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::LeakyRelu, 5);
        let mut adam = crate::optim::Adam::new(0.01);
        let data: Vec<([f64; 2], f64)> = (0..64)
            .map(|i| {
                let x0 = (i % 8) as f64 / 8.0;
                let x1 = (i / 8) as f64 / 8.0;
                ([x0, x1], 2.0 * x0 - x1)
            })
            .collect();
        for _ in 0..400 {
            mlp.zero_grad();
            for (x, y) in &data {
                let (out, cache) = mlp.forward_cached(x);
                let d = vec![2.0 * (out[0] - y) / data.len() as f64];
                mlp.backward(&cache, &d);
            }
            adam.step(&mut mlp.params_mut());
        }
        let mse: f64 = data
            .iter()
            .map(|(x, y)| (mlp.forward(x)[0] - y).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < 0.01, "mse = {mse}");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_dim_mlp_rejected() {
        Mlp::new(&[4], Activation::Relu, 0);
    }

    fn trial_examples(dim: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|e| {
                (0..dim)
                    .map(|f| ((e * dim + f) as f64 * 0.731).sin() * 1.7)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batched_forward_is_bit_identical_to_per_example_forward() {
        for activation in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Identity,
        ] {
            let mlp = Mlp::new(&[7, 13, 9, 2], activation, 21);
            for n in [1, 2, 5, 32] {
                let examples = trial_examples(7, n);
                let batch = Batch::from_examples(7, examples.iter().map(|v| v.as_slice()));
                let out = mlp.forward_batch(&batch);
                let (cached_out, _) = mlp.forward_batch_cached(batch.clone());
                for (e, x) in examples.iter().enumerate() {
                    let reference = mlp.forward(x);
                    for (f, r) in reference.iter().enumerate() {
                        assert_eq!(out.get(f, e).to_bits(), r.to_bits());
                        assert_eq!(cached_out.get(f, e).to_bits(), r.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn batched_backward_gradients_match_summed_per_example_gradients() {
        // The batched backward must compute the same *mathematical*
        // gradient as accumulating per-example backwards (the summation
        // order differs, so compare with a tolerance, not bits).
        let n = 6;
        let examples = trial_examples(4, n);
        let targets: Vec<f64> = (0..n).map(|e| (e as f64 * 0.37).cos()).collect();

        let mut per_example = Mlp::new(&[4, 8, 1], Activation::LeakyRelu, 3);
        per_example.zero_grad();
        for (x, t) in examples.iter().zip(&targets) {
            let (out, cache) = per_example.forward_cached(x);
            per_example.backward(&cache, &[2.0 * (out[0] - t)]);
        }
        let reference: Vec<f64> = per_example
            .params_mut()
            .iter()
            .flat_map(|p| p.grad.clone())
            .collect();

        let mut batched = Mlp::new(&[4, 8, 1], Activation::LeakyRelu, 3);
        batched.zero_grad();
        let batch = Batch::from_examples(4, examples.iter().map(|v| v.as_slice()));
        let (out, cache) = batched.forward_batch_cached(batch.clone());
        let mut d_out = Batch::zeros(1, n);
        for (e, t) in targets.iter().enumerate() {
            d_out.set(0, e, 2.0 * (out.get(0, e) - t));
        }
        let d_in = batched.backward_batch(&cache, &d_out);
        assert_eq!(d_in.dim(), 4);
        assert_eq!(d_in.n(), n);
        let got: Vec<f64> = batched
            .params_mut()
            .iter()
            .flat_map(|p| p.grad.clone())
            .collect();

        assert_eq!(reference.len(), got.len());
        for (r, g) in reference.iter().zip(&got) {
            assert!(
                (r - g).abs() < 1e-10 * (1.0 + r.abs()),
                "per-example {r} vs batched {g}"
            );
        }
    }

    #[test]
    fn batched_input_gradient_matches_per_example_input_gradient() {
        let mlp_ref = Mlp::new(&[3, 6, 2], Activation::LeakyRelu, 11);
        let mut mlp = mlp_ref.clone();
        let examples = trial_examples(3, 4);
        let batch = Batch::from_examples(3, examples.iter().map(|v| v.as_slice()));
        let (_, cache) = mlp.forward_batch_cached(batch.clone());
        let mut d_out = Batch::zeros(2, 4);
        for e in 0..4 {
            d_out.set(0, e, 1.0);
            d_out.set(1, e, -0.5);
        }
        let d_in = mlp.backward_batch(&cache, &d_out);

        for (e, x) in examples.iter().enumerate() {
            let mut single = mlp_ref.clone();
            let (_, cache) = single.forward_cached(x);
            let d = single.backward(&cache, &[1.0, -0.5]);
            for (f, dv) in d.iter().enumerate() {
                assert!(
                    (d_in.get(f, e) - dv).abs() < 1e-12 * (1.0 + dv.abs()),
                    "input grad ({f},{e})"
                );
            }
        }
    }

    #[test]
    fn batched_training_learns_the_same_simple_function() {
        // The batched fit counterpart of `mlp_learns_a_simple_function`.
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::LeakyRelu, 5);
        let mut adam = crate::optim::Adam::new(0.01);
        let data: Vec<([f64; 2], f64)> = (0..64)
            .map(|i| {
                let x0 = (i % 8) as f64 / 8.0;
                let x1 = (i / 8) as f64 / 8.0;
                ([x0, x1], 2.0 * x0 - x1)
            })
            .collect();
        let batch = Batch::from_examples(2, data.iter().map(|(x, _)| x.as_slice()));
        for _ in 0..400 {
            mlp.zero_grad();
            let (out, cache) = mlp.forward_batch_cached(batch.clone());
            let mut d_out = Batch::zeros(1, data.len());
            for (e, (_, y)) in data.iter().enumerate() {
                d_out.set(0, e, 2.0 * (out.get(0, e) - y) / data.len() as f64);
            }
            mlp.backward_batch(&cache, &d_out);
            adam.step(&mut mlp.params_mut());
        }
        let mse: f64 = data
            .iter()
            .map(|(x, y)| (mlp.forward(x)[0] - y).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < 0.01, "mse = {mse}");
    }

    #[test]
    fn params_and_params_mut_agree_on_order() {
        let mut mlp = Mlp::new(&[3, 4, 1], Activation::Relu, 9);
        let ro: Vec<usize> = mlp.params().iter().map(|p| p.len()).collect();
        let rw: Vec<usize> = mlp.params_mut().iter().map(|p| p.len()).collect();
        assert_eq!(ro, rw);
        assert_eq!(ro, vec![12, 4, 4, 1]);
    }

    /// `simd ≡ scalar` over a spread of held-out models: every forward
    /// entry point must produce bit-identical outputs under both kernels.
    #[test]
    fn simd_and_scalar_forward_are_bit_identical() {
        for (seed, dims, activation) in [
            (21u64, vec![7, 13, 9, 2], Activation::LeakyRelu),
            (97, vec![96, 48, 48], Activation::LeakyRelu),
            (3, vec![5, 17, 1], Activation::Relu),
            (54, vec![11, 4], Activation::Identity),
        ] {
            let mlp = Mlp::new(&dims, activation, seed);
            for n in [1, 3, 8, 19] {
                let examples = trial_examples(dims[0], n);
                let batch = Batch::from_examples(dims[0], examples.iter().map(|v| v.as_slice()));
                let simd = mlp.forward_batch_with(KernelKind::Simd, &batch);
                let scalar = mlp.forward_batch_with(KernelKind::Scalar, &batch);
                let mut bs = BatchForwardScratch::default();
                let into_simd = mlp
                    .forward_batch_into_with(KernelKind::Simd, &batch, &mut bs)
                    .clone();
                assert_eq!(into_simd, simd, "forward_batch_into {dims:?} n={n}");
                assert_eq!(simd.data().len(), scalar.data().len());
                for (a, b) in simd.data().iter().zip(scalar.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "batched {dims:?} n={n}");
                }
                let mut s1 = ForwardScratch::default();
                let mut s2 = ForwardScratch::default();
                for x in &examples {
                    let a = mlp.forward_into_with(KernelKind::Simd, x, &mut s1).to_vec();
                    let b = mlp.forward_into_with(KernelKind::Scalar, x, &mut s2);
                    for (va, vb) in a.iter().zip(b) {
                        assert_eq!(va.to_bits(), vb.to_bits(), "per-example {dims:?}");
                    }
                }
            }
        }
    }

    /// The batched backward must also be bit-identical across kernels:
    /// parameter gradients, input gradients, and the forward cache all
    /// reduce in the same canonical order.
    #[test]
    fn simd_and_scalar_backward_batch_are_bit_identical() {
        let n = 11; // exercises both the tiled body and the remainder
        let examples = trial_examples(7, n);
        let batch = Batch::from_examples(7, examples.iter().map(|v| v.as_slice()));
        let mut results = Vec::new();
        for kind in [KernelKind::Simd, KernelKind::Scalar] {
            let mut mlp = Mlp::new(&[7, 12, 5, 1], Activation::LeakyRelu, 33);
            mlp.zero_grad();
            let (out, cache) = mlp.forward_batch_cached_with(kind, batch.clone());
            let mut d_out = Batch::zeros(1, n);
            for e in 0..n {
                d_out.set(0, e, 2.0 * (out.get(0, e) - (e as f64 * 0.21).sin()));
            }
            let dx = mlp.backward_batch_with(kind, &cache, &d_out);
            let grads: Vec<u64> = mlp
                .params_mut()
                .iter()
                .flat_map(|p| p.grad.iter().map(|g| g.to_bits()))
                .collect();
            let dx_bits: Vec<u64> = dx.data().iter().map(|v| v.to_bits()).collect();
            results.push((grads, dx_bits));
        }
        assert_eq!(results[0].0, results[1].0, "parameter gradient bits");
        assert_eq!(results[0].1, results[1].1, "input gradient bits");
    }

    /// Pin the canonical order itself: with a catastrophic-cancellation
    /// weight row, sequential accumulation and the lane order give
    /// different floats — the kernels must produce the lane-order result.
    #[test]
    fn forward_uses_the_canonical_lane_order() {
        let mut mlp = Mlp::new(&[6, 1], Activation::Identity, 0);
        let w = [1e16, 1.0, -1e16, 1.0, 0.5, 0.25];
        mlp.params_mut()[0].data.copy_from_slice(&w);
        mlp.params_mut()[1].data[0] = 0.125;
        let x = vec![1.0; 6];
        let expected: f64 = 0.125 + (((1e16 + 1.0) + (-1e16 + 1.0)) + (0.5 + 0.25));
        let mut scratch = ForwardScratch::default();
        for kind in [KernelKind::Simd, KernelKind::Scalar] {
            let got = mlp.forward_into_with(kind, &x, &mut scratch)[0];
            assert_eq!(got.to_bits(), expected.to_bits(), "{kind:?}");
        }
        let batch = Batch::from_examples(6, std::iter::once(x.as_slice()));
        for kind in [KernelKind::Simd, KernelKind::Scalar] {
            let got = mlp.forward_batch_with(kind, &batch).get(0, 0);
            assert_eq!(got.to_bits(), expected.to_bits(), "batched {kind:?}");
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let mlp = Mlp::new(&[3, 4, 1], Activation::Relu, 9);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        // JSON may lose the last bit of a float, so compare behaviour, not
        // bit-exact structure.
        let x = [0.5, -1.0, 2.0];
        let (a, b) = (mlp.forward(&x)[0], back.forward(&x)[0]);
        assert!((a - b).abs() < 1e-9);
        assert_eq!(back.num_parameters(), mlp.num_parameters());
    }
}
