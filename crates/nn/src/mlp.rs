//! Dense layers and multi-layer perceptrons with manual backpropagation.

use crate::param::ParamBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activation function applied after every hidden layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x if x > 0 else 0.01 x
    LeakyRelu,
    /// identity (linear layer)
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Identity => x,
        }
    }

    fn derivative(self, pre: f64) -> f64 {
        match self {
            Activation::Relu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer `y = W x + b` with `W` stored row-major
/// (`out_dim × in_dim`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Linear {
    in_dim: usize,
    out_dim: usize,
    w: ParamBuf,
    b: ParamBuf,
}

impl Linear {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        // He-style initialisation keeps ReLU activations well-scaled.
        let scale = (2.0 / in_dim.max(1) as f64).sqrt();
        let w: Vec<f64> = (0..in_dim * out_dim)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Linear {
            in_dim,
            out_dim,
            w: ParamBuf::new(w),
            b: ParamBuf::zeros(out_dim),
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(x.len(), self.in_dim);
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w.data[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b.data[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }

    /// Accumulate parameter gradients for this layer given the input `x`
    /// and the gradient w.r.t. the (pre-activation) output `dy`; returns
    /// the gradient w.r.t. the input.
    fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        // Hard assert: a short `dy` would otherwise silently skip gradient
        // accumulation for the tail output units in release builds.
        assert_eq!(dy.len(), self.out_dim);
        let mut dx = vec![0.0; self.in_dim];
        for (o, &g) in dy.iter().enumerate() {
            self.b.grad[o] += g;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.w.grad[row_start + i] += g * x[i];
                dx[i] += g * self.w.data[row_start + i];
            }
        }
        dx
    }
}

/// Reusable ping-pong buffers for allocation-free inference through an
/// [`Mlp`] (see [`Mlp::forward_into`]).
///
/// A scratch instance may be reused across calls and across different
/// `Mlp`s; buffers grow to the widest layer encountered and are never
/// shrunk, so a long-lived scratch makes repeated inference allocation-free
/// — the optimisation that matters on the serving hot path, where the same
/// worker thread pushes thousands of plans through the same model.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

/// Forward-pass cache needed for backpropagation through an [`Mlp`].
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// Input and all post-activation vectors, layer by layer
    /// (`activations[0]` is the input).
    activations: Vec<Vec<f64>>,
    /// Pre-activation vectors per layer.
    pre_activations: Vec<Vec<f64>>,
}

/// A multi-layer perceptron: `dims[0] → dims[1] → … → dims[last]`, with the
/// configured activation after every layer except the last (which is
/// linear).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Create an MLP with the given layer sizes; weights are initialised
    /// deterministically from `seed`.
    pub fn new(dims: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim).unwrap_or(0)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim).unwrap_or(0)
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass without keeping a cache (inference).
    ///
    /// Convenience wrapper around [`Mlp::forward_into`] that allocates a
    /// fresh scratch per call; hot paths should hold a [`ForwardScratch`]
    /// and call `forward_into` directly.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut scratch = ForwardScratch::default();
        self.forward_into(x, &mut scratch).to_vec()
    }

    /// Allocation-free forward pass: ping-pongs between the two scratch
    /// buffers instead of allocating per layer, and returns a slice into
    /// the scratch holding the output activations.
    ///
    /// Produces bit-identical results to [`Mlp::forward`] and to the
    /// output of [`Mlp::forward_cached`] (same operations in the same
    /// order).
    pub fn forward_into<'s>(&self, x: &[f64], scratch: &'s mut ForwardScratch) -> &'s [f64] {
        let num_layers = self.layers.len();
        if num_layers == 0 {
            scratch.a.clear();
            scratch.a.extend_from_slice(x);
            return &scratch.a;
        }
        // Layer 0 reads the caller's input; subsequent layers alternate
        // between the two scratch buffers.
        self.layers[0].forward(x, &mut scratch.a);
        if num_layers > 1 {
            for v in scratch.a.iter_mut() {
                *v = self.activation.apply(*v);
            }
        }
        let mut in_a = true;
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let (src, dst) = if in_a {
                (&scratch.a, &mut scratch.b)
            } else {
                (&scratch.b, &mut scratch.a)
            };
            layer.forward(src, dst);
            if i + 1 < num_layers {
                for v in dst.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            in_a = !in_a;
        }
        if in_a {
            &scratch.a
        } else {
            &scratch.b
        }
    }

    /// Forward pass that records the cache needed by [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, MlpCache) {
        let mut cache = MlpCache {
            activations: vec![x.to_vec()],
            pre_activations: Vec::with_capacity(self.layers.len()),
        };
        let mut current = x.to_vec();
        let mut buffer = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&current, &mut buffer);
            cache.pre_activations.push(buffer.clone());
            let is_last = i + 1 == self.layers.len();
            current = if is_last {
                buffer.clone()
            } else {
                buffer.iter().map(|&v| self.activation.apply(v)).collect()
            };
            cache.activations.push(current.clone());
        }
        (current, cache)
    }

    /// Backpropagate `d_out` (gradient w.r.t. the MLP output) through the
    /// network, accumulating parameter gradients, and return the gradient
    /// w.r.t. the input.
    pub fn backward(&mut self, cache: &MlpCache, d_out: &[f64]) -> Vec<f64> {
        let mut grad = d_out.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let is_last = i + 1 == cache.pre_activations.len();
            if !is_last {
                let pre = &cache.pre_activations[i];
                for (g, p) in grad.iter_mut().zip(pre) {
                    *g *= self.activation.derivative(*p);
                }
            }
            let input = &cache.activations[i];
            grad = layer.backward(input, &grad);
        }
        grad
    }

    /// Mutable access to every parameter buffer (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut ParamBuf> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w, &mut l.b])
            .collect()
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check: compare analytic input/parameter gradients
    /// against central finite differences on a scalar loss.
    #[test]
    fn gradient_check_against_finite_differences() {
        let mut mlp = Mlp::new(&[4, 8, 1], Activation::LeakyRelu, 3);
        let x = vec![0.3, -0.7, 1.2, 0.05];
        let target = 0.8;

        // Analytic gradients.
        mlp.zero_grad();
        let (out, cache) = mlp.forward_cached(&x);
        let d_out = vec![2.0 * (out[0] - target)];
        mlp.backward(&cache, &d_out);
        let analytic: Vec<f64> = mlp
            .params_mut()
            .iter()
            .flat_map(|p| p.grad.clone())
            .collect();

        // Finite differences.
        let eps = 1e-6;
        let mut numeric = Vec::with_capacity(analytic.len());
        let num_params: Vec<usize> = mlp.params_mut().iter().map(|p| p.len()).collect();
        for (pi, &len) in num_params.iter().enumerate() {
            for j in 0..len {
                let orig = mlp.params_mut()[pi].data[j];
                mlp.params_mut()[pi].data[j] = orig + eps;
                let up = (mlp.forward(&x)[0] - target).powi(2);
                mlp.params_mut()[pi].data[j] = orig - eps;
                let down = (mlp.forward(&x)[0] - target).powi(2);
                mlp.params_mut()[pi].data[j] = orig;
                numeric.push((up - down) / (2.0 * eps));
            }
        }
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!(
                (a - n).abs() < 1e-5 * (1.0 + a.abs().max(n.abs())),
                "analytic {a} vs numeric {n}"
            );
        }
    }

    /// The input gradient returned by [`Mlp::backward`] must also match
    /// central finite differences (it is what upstream graph models chain
    /// through).
    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut mlp = Mlp::new(&[3, 6, 6, 1], Activation::LeakyRelu, 11);
        let x = vec![0.9, -0.4, 0.2];
        let target = -0.3;

        mlp.zero_grad();
        let (out, cache) = mlp.forward_cached(&x);
        let d_out = vec![2.0 * (out[0] - target)];
        let analytic = mlp.backward(&cache, &d_out);
        assert_eq!(analytic.len(), x.len());

        let eps = 1e-6;
        for i in 0..x.len() {
            let mut up_x = x.clone();
            up_x[i] += eps;
            let mut down_x = x.clone();
            down_x[i] -= eps;
            let up = (mlp.forward(&up_x)[0] - target).powi(2);
            let down = (mlp.forward(&down_x)[0] - target).powi(2);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                "input grad {i}: analytic {} vs numeric {numeric}",
                analytic[i]
            );
        }
    }

    /// Gradient check per activation: every supported activation must
    /// backpropagate consistently with its forward definition.
    #[test]
    fn gradient_check_covers_all_activations() {
        for activation in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Identity,
        ] {
            let mut mlp = Mlp::new(&[2, 4, 1], activation, 23);
            // Offset inputs away from ReLU kinks so finite differences are
            // well-defined.
            let x = vec![0.37, -0.61];
            mlp.zero_grad();
            let (out, cache) = mlp.forward_cached(&x);
            mlp.backward(&cache, &[1.0]);
            let analytic: Vec<f64> = mlp
                .params_mut()
                .iter()
                .flat_map(|p| p.grad.clone())
                .collect();

            let eps = 1e-6;
            let num_params: Vec<usize> = mlp.params_mut().iter().map(|p| p.len()).collect();
            let mut k = 0;
            for (pi, &len) in num_params.iter().enumerate() {
                for j in 0..len {
                    let orig = mlp.params_mut()[pi].data[j];
                    mlp.params_mut()[pi].data[j] = orig + eps;
                    let up = mlp.forward(&x)[0];
                    mlp.params_mut()[pi].data[j] = orig - eps;
                    let down = mlp.forward(&x)[0];
                    mlp.params_mut()[pi].data[j] = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    assert!(
                        (analytic[k] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                        "{activation:?} param {k}: analytic {} vs numeric {numeric}",
                        analytic[k]
                    );
                    k += 1;
                }
            }
            let _ = out;
        }
    }

    #[test]
    fn forward_into_matches_forward_bit_for_bit() {
        let mlp = Mlp::new(&[5, 9, 7, 2], Activation::LeakyRelu, 17);
        let mut scratch = ForwardScratch::default();
        for trial in 0..10 {
            let x: Vec<f64> = (0..5).map(|i| (i as f64 - trial as f64) * 0.37).collect();
            let allocating = mlp.forward(&x);
            let (cached_out, _) = mlp.forward_cached(&x);
            let scratch_out = mlp.forward_into(&x, &mut scratch);
            assert_eq!(scratch_out.len(), allocating.len());
            for ((a, b), c) in allocating.iter().zip(scratch_out).zip(&cached_out) {
                assert_eq!(a.to_bits(), b.to_bits());
                assert_eq!(a.to_bits(), c.to_bits());
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_models_of_different_shapes() {
        let narrow = Mlp::new(&[2, 3, 1], Activation::Relu, 1);
        let wide = Mlp::new(&[4, 32, 32, 2], Activation::Relu, 2);
        let mut scratch = ForwardScratch::default();
        let narrow_expected = narrow.forward(&[0.5, -0.5]);
        let wide_expected = wide.forward(&[1.0, 2.0, 3.0, 4.0]);
        for _ in 0..3 {
            assert_eq!(
                narrow.forward_into(&[0.5, -0.5], &mut scratch),
                &narrow_expected[..]
            );
            assert_eq!(
                wide.forward_into(&[1.0, 2.0, 3.0, 4.0], &mut scratch),
                &wide_expected[..]
            );
        }
    }

    #[test]
    fn single_layer_mlp_forward_into() {
        // One linear layer: no activation is applied (the last layer is
        // linear by convention), and only one scratch buffer is used.
        let mlp = Mlp::new(&[3, 2], Activation::LeakyRelu, 4);
        let mut scratch = ForwardScratch::default();
        let x = [0.1, -0.2, 0.3];
        assert_eq!(mlp.forward_into(&x, &mut scratch), &mlp.forward(&x)[..]);
    }

    #[test]
    fn forward_is_deterministic_per_seed() {
        let a = Mlp::new(&[3, 5, 2], Activation::Relu, 7);
        let b = Mlp::new(&[3, 5, 2], Activation::Relu, 7);
        let c = Mlp::new(&[3, 5, 2], Activation::Relu, 8);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.forward(&x), b.forward(&x));
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn shapes_and_parameter_counts() {
        let mlp = Mlp::new(&[6, 16, 16, 1], Activation::Relu, 1);
        assert_eq!(mlp.input_dim(), 6);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.num_parameters(), 6 * 16 + 16 + 16 * 16 + 16 + 16 + 1);
        assert_eq!(mlp.forward(&[0.0; 6]).len(), 1);
    }

    #[test]
    fn mlp_learns_a_simple_function() {
        // Fit y = 2*x0 - x1 with Adam; should get close within a few
        // hundred steps.
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::LeakyRelu, 5);
        let mut adam = crate::optim::Adam::new(0.01);
        let data: Vec<([f64; 2], f64)> = (0..64)
            .map(|i| {
                let x0 = (i % 8) as f64 / 8.0;
                let x1 = (i / 8) as f64 / 8.0;
                ([x0, x1], 2.0 * x0 - x1)
            })
            .collect();
        for _ in 0..400 {
            mlp.zero_grad();
            for (x, y) in &data {
                let (out, cache) = mlp.forward_cached(x);
                let d = vec![2.0 * (out[0] - y) / data.len() as f64];
                mlp.backward(&cache, &d);
            }
            adam.step(&mut mlp.params_mut());
        }
        let mse: f64 = data
            .iter()
            .map(|(x, y)| (mlp.forward(x)[0] - y).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < 0.01, "mse = {mse}");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_dim_mlp_rejected() {
        Mlp::new(&[4], Activation::Relu, 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let mlp = Mlp::new(&[3, 4, 1], Activation::Relu, 9);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        // JSON may lose the last bit of a float, so compare behaviour, not
        // bit-exact structure.
        let x = [0.5, -1.0, 2.0];
        let (a, b) = (mlp.forward(&x)[0], back.forward(&x)[0]);
        assert!((a - b).abs() < 1e-9);
        assert_eq!(back.num_parameters(), mlp.num_parameters());
    }
}
