//! Throughput of the transferable graph featurization (plan → PlanGraph).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zsdb_catalog::presets;
use zsdb_core::features::{featurize_execution, featurize_plan, FeaturizerConfig};
use zsdb_engine::QueryRunner;
use zsdb_query::WorkloadGenerator;
use zsdb_storage::Database;

fn bench_encoding(c: &mut Criterion) {
    let db = Database::generate(presets::imdb_like(0.02), 1);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 50, 2);
    let executions = runner.run_workload(&queries, 0);

    c.bench_function("featurize_executed_plan", |b| {
        b.iter(|| {
            black_box(featurize_execution(
                db.catalog(),
                black_box(&executions[0]),
                FeaturizerConfig::exact(),
            ))
        })
    });
    c.bench_function("featurize_plan_only_50", |b| {
        b.iter(|| {
            for e in &executions {
                black_box(featurize_plan(
                    db.catalog(),
                    black_box(&e.plan),
                    FeaturizerConfig::estimated(),
                ));
            }
        })
    });
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
