//! Training-step throughput of the zero-shot model (gradient accumulation
//! and optimizer step).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zsdb_catalog::presets;
use zsdb_core::features::{featurize_execution, FeaturizerConfig};
use zsdb_core::{ModelConfig, ZeroShotCostModel};
use zsdb_engine::QueryRunner;
use zsdb_nn::Adam;
use zsdb_query::WorkloadGenerator;
use zsdb_storage::Database;

fn bench_training(c: &mut Criterion) {
    let db = Database::generate(presets::imdb_like(0.02), 1);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 16, 5);
    let executions = runner.run_workload(&queries, 0);
    let graphs: Vec<_> = executions
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect();

    c.bench_function("training_minibatch_16", |b| {
        let mut model = ZeroShotCostModel::new(ModelConfig::default());
        let mut adam = Adam::new(1e-3);
        b.iter(|| {
            model.zero_grad();
            for g in &graphs {
                black_box(model.accumulate_gradients(black_box(g), g.runtime_secs.unwrap()));
            }
            model.apply_step(&mut adam);
        })
    });

    c.bench_function("training_minibatch_16_batched", |b| {
        let mut model = ZeroShotCostModel::new(ModelConfig::default());
        let mut adam = Adam::new(1e-3);
        let refs: Vec<&zsdb_core::PlanGraph> = graphs.iter().collect();
        let targets: Vec<f64> = refs.iter().map(|g| g.runtime_secs.unwrap()).collect();
        b.iter(|| {
            model.zero_grad();
            black_box(model.accumulate_gradients_batch(black_box(&refs), &targets));
            model.apply_step(&mut adam);
        })
    });
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
