//! Serving-layer micro-benchmarks: end-to-end request latency through the
//! worker pool, with and without feature-cache hits, against the
//! direct single-threaded prediction path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zsdb_bench::tiny_serving_fixture;
use zsdb_catalog::presets;
use zsdb_core::features::featurize_plan;
use zsdb_serve::{PredictionServer, ServerConfig};
use zsdb_storage::Database;

fn bench_serving(c: &mut Criterion) {
    let db = Database::generate(presets::imdb_like(0.02), 1);
    let (model, plans) = tiny_serving_fixture(&db, 20, 1);

    c.bench_function("direct_featurize_and_predict", |b| {
        b.iter(|| {
            let g = featurize_plan(db.catalog(), black_box(&plans[0]), model.featurizer);
            black_box(model.predict(&g))
        })
    });

    let server = PredictionServer::start(
        model.clone(),
        db.catalog().clone(),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    );
    // Warm the cache so the cached benchmark measures pure hits.
    for p in &plans {
        server.predict_blocking(p.clone()).unwrap();
    }
    c.bench_function("served_predict_cache_hit", |b| {
        b.iter(|| {
            black_box(
                server
                    .predict_blocking(black_box(plans[0].clone()))
                    .unwrap(),
            )
        })
    });

    let uncached_server = PredictionServer::start(
        model,
        db.catalog().clone(),
        ServerConfig {
            workers: 4,
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    );
    c.bench_function("served_predict_uncached", |b| {
        b.iter(|| {
            black_box(
                uncached_server
                    .predict_blocking(black_box(plans[0].clone()))
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
