//! Microbenchmark for the MLP inference hot path: per-call allocation
//! (`Mlp::forward`) versus a reused scratch buffer (`Mlp::forward_into`),
//! and the SIMD-shaped versus scalar micro-kernels on both the
//! per-example and the batched path.
//!
//! The scratch + SIMD variant is what the serving worker pool uses; the
//! kernel pairs document the win of the lane-blocked loops over the
//! scalar fallback (their outputs are bit-identical — see
//! `zsdb_nn::kernel`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zsdb_nn::{Activation, Batch, ForwardScratch, KernelKind, Mlp};

fn bench_mlp_forward(c: &mut Criterion) {
    // The combine MLP of the default zero-shot model ([96, 48, 48]) is the
    // most frequently evaluated network during inference.
    let mlp = Mlp::new(&[96, 48, 48], Activation::LeakyRelu, 42);
    let x: Vec<f64> = (0..96).map(|i| (i as f64 * 0.173).sin()).collect();

    c.bench_function("mlp_forward_alloc_per_call", |b| {
        b.iter(|| black_box(mlp.forward(black_box(&x))))
    });

    let mut scratch = ForwardScratch::default();
    c.bench_function("mlp_forward_reused_scratch", |b| {
        b.iter(|| black_box(mlp.forward_into(black_box(&x), &mut scratch)[0]))
    });

    for kind in [KernelKind::Simd, KernelKind::Scalar] {
        c.bench_function(&format!("mlp_forward_kernel_{}", kind.name()), |b| {
            b.iter(|| black_box(mlp.forward_into_with(kind, black_box(&x), &mut scratch)[0]))
        });
    }

    // Batched forward over a serving-sized tile (32 examples).
    let examples: Vec<Vec<f64>> = (0..32)
        .map(|e| {
            (0..96)
                .map(|i| ((e * 96 + i) as f64 * 0.173).sin())
                .collect()
        })
        .collect();
    let batch = Batch::from_examples(96, examples.iter().map(|v| v.as_slice()));
    for kind in [KernelKind::Simd, KernelKind::Scalar] {
        c.bench_function(
            &format!("mlp_forward_batch32_kernel_{}", kind.name()),
            |b| b.iter(|| black_box(mlp.forward_batch_with(kind, black_box(&batch)))),
        );
    }
}

criterion_group!(benches, bench_mlp_forward);
criterion_main!(benches);
