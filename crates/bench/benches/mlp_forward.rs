//! Microbenchmark for the MLP inference hot path: per-call allocation
//! (`Mlp::forward`) versus a reused scratch buffer (`Mlp::forward_into`).
//!
//! The scratch variant is what the serving worker pool uses; this bench
//! documents the win of not reallocating per layer on every prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zsdb_nn::{Activation, ForwardScratch, Mlp};

fn bench_mlp_forward(c: &mut Criterion) {
    // The combine MLP of the default zero-shot model ([96, 48, 48]) is the
    // most frequently evaluated network during inference.
    let mlp = Mlp::new(&[96, 48, 48], Activation::LeakyRelu, 42);
    let x: Vec<f64> = (0..96).map(|i| (i as f64 * 0.173).sin()).collect();

    c.bench_function("mlp_forward_alloc_per_call", |b| {
        b.iter(|| black_box(mlp.forward(black_box(&x))))
    });

    let mut scratch = ForwardScratch::default();
    c.bench_function("mlp_forward_reused_scratch", |b| {
        b.iter(|| black_box(mlp.forward_into(black_box(&x), &mut scratch)[0]))
    });
}

criterion_group!(benches, bench_mlp_forward);
criterion_main!(benches);
