//! Optimizer and executor throughput of the underlying engine substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zsdb_cardest::PostgresLikeEstimator;
use zsdb_catalog::presets;
use zsdb_engine::{EngineConfig, Executor, Optimizer, QueryRunner, RowExecutor};
use zsdb_query::WorkloadGenerator;
use zsdb_storage::Database;

fn bench_engine(c: &mut Criterion) {
    let db = Database::generate(presets::imdb_like(0.02), 1);
    let estimator = PostgresLikeEstimator::new(db.catalog().clone());
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 3);
    let optimizer = Optimizer::new(&db, EngineConfig::default(), &estimator);
    let plans: Vec<_> = queries.iter().map(|q| optimizer.plan(q)).collect();

    c.bench_function("optimizer_plan_20_queries", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(optimizer.plan(black_box(q)));
            }
        })
    });
    c.bench_function("executor_single_join_query", |b| {
        let executor = Executor::new(&db);
        b.iter(|| black_box(executor.execute(black_box(&plans[0]))))
    });
    c.bench_function("row_executor_single_join_query", |b| {
        let executor = RowExecutor::new(&db);
        b.iter(|| black_box(executor.execute(black_box(&plans[0]))))
    });
    c.bench_function("runner_end_to_end_query", |b| {
        let runner = QueryRunner::with_defaults(&db);
        b.iter(|| black_box(runner.run(black_box(&queries[0]), 0)))
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
