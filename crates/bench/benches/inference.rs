//! Inference latency of the zero-shot cost model (prediction for a single
//! featurized plan) and of graph featurization + prediction end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zsdb_catalog::presets;
use zsdb_core::features::{featurize_execution, FeaturizerConfig};
use zsdb_core::{ModelConfig, ZeroShotCostModel};
use zsdb_engine::QueryRunner;
use zsdb_query::WorkloadGenerator;
use zsdb_storage::Database;

fn bench_inference(c: &mut Criterion) {
    let db = Database::generate(presets::imdb_like(0.02), 1);
    let runner = QueryRunner::with_defaults(&db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 1);
    let executions = runner.run_workload(&queries, 0);
    let graphs: Vec<_> = executions
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect();
    let model = ZeroShotCostModel::new(ModelConfig::default());

    c.bench_function("zero_shot_predict_single_plan", |b| {
        b.iter(|| black_box(model.predict(black_box(&graphs[0]))))
    });
    c.bench_function("zero_shot_predict_20_plans", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for g in &graphs {
                acc += model.predict(black_box(g));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
