//! # zsdb-bench
//!
//! Shared harness code for the experiment binaries that regenerate the
//! paper's Figure 3 and Table 1, plus the criterion micro-benchmarks.
//!
//! Every binary accepts `--quick` (default) or `--full` plus individual
//! overrides (`--train-dbs N`, `--queries-per-db N`, `--eval-queries N`,
//! `--scale F`, `--threads N`), so the same code can run a CI-sized
//! sanity pass or an overnight paper-scale reproduction.  All binaries
//! train through the batched (level, kind)-scheduled engine and print the
//! batch/thread settings they ran with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use zsdb_catalog::presets;
use zsdb_core::dataset::{collect_training_corpus, TrainingDataConfig};
use zsdb_core::features::featurize_execution;
use zsdb_core::{FeaturizerConfig, ModelConfig, TrainedModel, Trainer, TrainingConfig};
use zsdb_engine::{EngineConfig, HardwareProfile, PlanNode, QueryExecution, QueryRunner};
use zsdb_query::{BenchmarkWorkload, WorkloadGenerator, WorkloadKind};
use zsdb_storage::Database;

/// Knobs of an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Number of synthetic training databases for the zero-shot model.
    pub train_databases: usize,
    /// Queries executed per training database.
    pub queries_per_database: usize,
    /// Scale factor of the IMDB-like evaluation database.
    pub eval_scale: f64,
    /// Number of queries per evaluation workload.
    pub eval_queries: usize,
    /// Training-set sizes for the workload-driven baselines (Figure 3
    /// x-axis).
    pub baseline_training_sizes: Vec<usize>,
    /// Training epochs for the zero-shot model.
    pub epochs: usize,
    /// Random indexes per training database (for the Table 1 index row).
    pub random_indexes: usize,
    /// Worker threads for sharded gradient accumulation (0 = one per
    /// available CPU core; any value trains to bit-identical weights).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// A quick configuration that finishes in a few minutes on a laptop.
    pub fn quick() -> Self {
        ExperimentScale {
            train_databases: 8,
            queries_per_database: 250,
            eval_scale: 0.04,
            eval_queries: 150,
            baseline_training_sizes: vec![100, 300, 1_000, 3_000],
            epochs: 30,
            random_indexes: 3,
            threads: 0,
            seed: 0xBEEF,
        }
    }

    /// The paper-scale configuration (19 databases × 5,000 queries,
    /// baseline training sets up to 50,000 queries).  Expect hours of
    /// runtime.
    pub fn full() -> Self {
        ExperimentScale {
            train_databases: 19,
            queries_per_database: 5_000,
            eval_scale: 0.5,
            eval_queries: 500,
            baseline_training_sizes: vec![100, 500, 1_000, 5_000, 10_000, 50_000],
            epochs: 60,
            random_indexes: 5,
            threads: 0,
            seed: 0xBEEF,
        }
    }

    /// Parse command-line arguments (`--quick`, `--full` and individual
    /// overrides).  Unknown arguments are ignored.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--full") {
            ExperimentScale::full()
        } else {
            ExperimentScale::quick()
        };
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        if let Some(v) = value_of("--train-dbs").and_then(|v| v.parse().ok()) {
            scale.train_databases = v;
        }
        if let Some(v) = value_of("--queries-per-db").and_then(|v| v.parse().ok()) {
            scale.queries_per_database = v;
        }
        if let Some(v) = value_of("--eval-queries").and_then(|v| v.parse().ok()) {
            scale.eval_queries = v;
        }
        if let Some(v) = value_of("--scale").and_then(|v| v.parse().ok()) {
            scale.eval_scale = v;
        }
        if let Some(v) = value_of("--epochs").and_then(|v| v.parse().ok()) {
            scale.epochs = v;
        }
        if let Some(v) = value_of("--threads").and_then(|v| v.parse().ok()) {
            scale.threads = v;
        }
        scale
    }

    /// Training-data configuration derived from this experiment scale.
    pub fn training_data_config(&self) -> TrainingDataConfig {
        TrainingDataConfig {
            num_databases: self.train_databases,
            queries_per_database: self.queries_per_database,
            random_indexes_per_database: self.random_indexes,
            seed: self.seed,
            ..TrainingDataConfig::default()
        }
    }

    /// Training configuration derived from this experiment scale.
    pub fn training_config(&self) -> TrainingConfig {
        TrainingConfig {
            epochs: self.epochs,
            threads: self.threads,
            ..TrainingConfig::default()
        }
    }
}

/// Print the batched-trainer settings an experiment runs with (batch and
/// shard sizes, threads, early stopping) so every experiment log records
/// how its training was executed.
pub fn print_training_settings(config: &TrainingConfig) {
    println!(
        "batched trainer: batch {} · microbatch {} · threads {} · \
         validation {:.0}% · early-stopping patience {}",
        config.batch_size,
        config.microbatch_size,
        config.effective_threads(),
        config.validation_fraction * 100.0,
        config.early_stopping_patience
    );
}

/// Build the (unseen) IMDB-like evaluation database.
pub fn evaluation_database(scale: &ExperimentScale) -> Database {
    Database::generate(presets::imdb_like(scale.eval_scale), scale.seed ^ 0x1111)
}

/// Execute one of the evaluation benchmark workloads on the evaluation
/// database and return the executions (ground-truth runtimes).
pub fn benchmark_executions(
    db: &Database,
    kind: WorkloadKind,
    scale: &ExperimentScale,
) -> Vec<QueryExecution> {
    let workload =
        BenchmarkWorkload::generate(kind, db.catalog(), scale.eval_queries, scale.seed ^ 0x77);
    let runner = QueryRunner::new(db, EngineConfig::default(), HardwareProfile::default());
    runner.run_workload(&workload.queries, scale.seed ^ 0x99)
}

/// Train a zero-shot model with the given featurizer over the multi
/// database training corpus described by `scale`.  Returns the trained
/// model and the corpus size (for reporting).
pub fn train_zero_shot(
    scale: &ExperimentScale,
    featurizer: FeaturizerConfig,
) -> (TrainedModel, usize) {
    let data_config = scale.training_data_config();
    let corpus = collect_training_corpus(&data_config);
    let schemas = zsdb_catalog::SchemaGenerator::new(data_config.schema_config.clone())
        .generate_corpus("train", data_config.num_databases, data_config.seed);
    let training_config = scale.training_config();
    print_training_settings(&training_config);
    let trainer = Trainer::new(ModelConfig::default(), training_config, featurizer);
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas
            .iter()
            .find(|s| s.name == name)
            .expect("catalog for corpus database")
    });
    (trainer.train(&graphs), corpus.len())
}

/// Print a markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Write a machine-readable benchmark report as pretty-printed JSON and
/// print the artifact path — the one emitter shared by every `BENCH_*`
/// binary (`bench_serve`, `bench_train`, `bench_multitask`), so all
/// reports are formatted identically and every run ends by naming its
/// artifact.
pub fn write_json_report<T: serde::Serialize>(path: &str, report: &T) {
    let json = serde_json::to_string_pretty(report).expect("benchmark report serialization");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    let shown = std::fs::canonicalize(path)
        .map(|p| p.display().to_string())
        .unwrap_or_else(|_| path.to_string());
    println!("wrote {shown}");
}

/// Shared fixture of the serving bench targets: execute a `num_queries`
/// random workload on a small IMDB-like database, train a tiny model on
/// it, and return the model together with the workload's optimizer plans
/// (the request stream a serving benchmark replays).
pub fn tiny_serving_fixture(
    db: &Database,
    num_queries: usize,
    seed: u64,
) -> (TrainedModel, Vec<PlanNode>) {
    let runner = QueryRunner::with_defaults(db);
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), num_queries, seed);
    let graphs: Vec<_> = runner
        .run_workload(&queries, 0)
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect();
    let trainer = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 3,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    );
    (trainer.train(&graphs), runner.plan_workload(&queries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_full() {
        let quick = ExperimentScale::quick();
        let full = ExperimentScale::full();
        assert!(quick.train_databases < full.train_databases);
        assert!(quick.queries_per_database < full.queries_per_database);
        assert!(quick.baseline_training_sizes.len() <= full.baseline_training_sizes.len());
    }

    #[test]
    fn evaluation_database_has_imdb_tables() {
        let scale = ExperimentScale {
            eval_scale: 0.02,
            ..ExperimentScale::quick()
        };
        let db = evaluation_database(&scale);
        assert!(db.catalog().table_by_name("title").is_ok());
    }

    #[test]
    fn benchmark_executions_produce_runtimes() {
        let scale = ExperimentScale {
            eval_scale: 0.02,
            eval_queries: 5,
            ..ExperimentScale::quick()
        };
        let db = evaluation_database(&scale);
        let execs = benchmark_executions(&db, WorkloadKind::JobLight, &scale);
        assert_eq!(execs.len(), 5);
        assert!(execs.iter().all(|e| e.runtime_secs > 0.0));
    }
}
