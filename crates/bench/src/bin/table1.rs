//! Reproduces **Table 1** of the paper: median / 95th-percentile / max
//! Q-errors of the zero-shot cost model (exact vs. estimated
//! cardinalities) on the Scale, Synthetic and JOB-light workloads, plus the
//! **Index** what-if workload of Section 4.1.
//!
//! Usage: `cargo run -p zsdb-bench --release --bin table1 [--quick|--full]`

use zsdb_bench::{benchmark_executions, evaluation_database, train_zero_shot, ExperimentScale};
use zsdb_core::{evaluate, evaluate_predictions, FeaturizerConfig, WhatIfCostEstimator};
use zsdb_engine::WhatIfPlanner;
use zsdb_query::WorkloadKind;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("# Table 1 reproduction (scale: {scale:?})\n");

    println!(
        "Training zero-shot models (with random per-database indexes for the what-if row) ..."
    );
    let (zs_exact, _) = train_zero_shot(&scale, FeaturizerConfig::exact());
    let (zs_est, _) = train_zero_shot(&scale, FeaturizerConfig::estimated());

    let mut db = evaluation_database(&scale);

    println!("\n| Workload | variant | median | 95th | max |");
    println!("|---|---|---|---|---|");

    // Plain cost-estimation rows.
    for kind in WorkloadKind::FIGURE3 {
        let eval = benchmark_executions(&db, kind, &scale);
        for (label, model) in [("Exact Card.", &zs_exact), ("Estimated Card.", &zs_est)] {
            let report = evaluate(model, &db, kind.name(), &eval);
            println!(
                "| {} | Zero-Shot ({label}) | {:.2} | {:.2} | {:.2} |",
                kind.name(),
                report.qerrors.median,
                report.qerrors.p95,
                report.qerrors.max
            );
        }
    }

    // Index what-if row: for each query of the index workload, pick a random
    // predicate attribute, ask the model for the runtime *if* an index on it
    // existed, and compare against the ground truth obtained by actually
    // building the index and executing.
    let index_workload = zsdb_query::BenchmarkWorkload::generate(
        WorkloadKind::Index,
        db.catalog(),
        scale.eval_queries,
        scale.seed ^ 0x333,
    );
    let planner = WhatIfPlanner::with_defaults();
    for (label, model) in [("Exact Card.", &zs_exact), ("Estimated Card.", &zs_est)] {
        let estimator = WhatIfCostEstimator::new(model);
        let mut pairs = Vec::new();
        for (i, query) in index_workload.queries.iter().enumerate() {
            let Some(column) = WhatIfPlanner::candidate_index_column(query, i as u64) else {
                continue;
            };
            let truth =
                planner.ground_truth_with_index(&mut db, query, column, scale.seed ^ i as u64);
            let predicted = estimator.predict_with_index(&db, query, column);
            pairs.push((predicted, truth.runtime_secs));
        }
        let report = evaluate_predictions("index", &pairs);
        println!(
            "| index | Zero-Shot ({label}) | {:.2} | {:.2} | {:.2} |",
            report.qerrors.median, report.qerrors.p95, report.qerrors.max
        );
    }
}
