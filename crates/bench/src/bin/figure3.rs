//! Reproduces **Figure 3** of the paper: median Q-error of workload-driven
//! baselines (MSCN, E2E, Scaled Optimizer Cost) as a function of the number
//! of training queries on the IMDB-like database, compared with the
//! zero-shot model (exact / estimated cardinalities) that never saw that
//! database — plus the execution time (hours) needed to collect the
//! baselines' training queries.
//!
//! Usage: `cargo run -p zsdb-bench --release --bin figure3 [--quick|--full]`

use zsdb_baselines::{E2EModel, MscnConfig, MscnModel, ScaledOptimizerCost};
use zsdb_bench::{benchmark_executions, evaluation_database, train_zero_shot, ExperimentScale};
use zsdb_core::dataset::{collect_for_database, workload_execution_hours};
use zsdb_core::{evaluate, median_qerror_of, FeaturizerConfig, ModelConfig};
use zsdb_query::{WorkloadKind, WorkloadSpec};

fn main() {
    let scale = ExperimentScale::from_args();
    println!("# Figure 3 reproduction (scale: {scale:?})\n");

    // 1. Zero-shot models trained on synthetic databases only.
    println!(
        "Training zero-shot models on {} synthetic databases ...",
        scale.train_databases
    );
    let (zs_exact, corpus_size) = train_zero_shot(&scale, FeaturizerConfig::exact());
    let (zs_est, _) = train_zero_shot(&scale, FeaturizerConfig::estimated());
    println!(
        "  corpus: {corpus_size} executed queries, final train q-error {:.2} (exact) / {:.2} (est.)\n",
        zs_exact.final_train_qerror, zs_est.final_train_qerror
    );

    // 2. The unseen evaluation database and its benchmark workloads.
    let db = evaluation_database(&scale);

    // 3. Training pool for the workload-driven baselines (queries executed
    //    on the *target* database, as the paper's x-axis).
    let max_training = *scale.baseline_training_sizes.iter().max().unwrap_or(&100);
    println!(
        "Collecting up to {max_training} baseline training queries on the target database ..."
    );
    let baseline_pool = collect_for_database(
        &db,
        &WorkloadSpec::paper_training(),
        max_training,
        scale.seed ^ 0xABC,
    );

    for kind in WorkloadKind::FIGURE3 {
        let eval = benchmark_executions(&db, kind, &scale);
        println!("\n## Workload: {}  ({} queries)\n", kind.name(), eval.len());
        println!("| training queries | MSCN | E2E | Scaled Opt. Cost | Zero-Shot (exact) | Zero-Shot (est.) | exec. time (h) |");
        println!("|---|---|---|---|---|---|---|");

        let zs_exact_report = evaluate(&zs_exact, &db, kind.name(), &eval);
        let zs_est_report = evaluate(&zs_est, &db, kind.name(), &eval);

        for &n in &scale.baseline_training_sizes {
            let train_slice = &baseline_pool[..n.min(baseline_pool.len())];

            let opt = ScaledOptimizerCost::fit(train_slice);
            let opt_q = median_qerror_of(
                &eval
                    .iter()
                    .map(|e| (opt.predict(e), e.runtime_secs))
                    .collect::<Vec<_>>(),
            );

            let mut mscn = MscnModel::new(db.catalog(), MscnConfig::default());
            mscn.train(db.catalog(), train_slice);
            let mscn_q = median_qerror_of(
                &eval
                    .iter()
                    .map(|e| (mscn.predict(db.catalog(), &e.query), e.runtime_secs))
                    .collect::<Vec<_>>(),
            );

            let mut e2e = E2EModel::new(ModelConfig::default(), scale.epochs, 1.5e-3);
            e2e.train(&db, train_slice);
            let e2e_q = median_qerror_of(
                &eval
                    .iter()
                    .map(|e| (e2e.predict(&db, e), e.runtime_secs))
                    .collect::<Vec<_>>(),
            );

            let hours = workload_execution_hours(train_slice);
            println!(
                "| {n} | {mscn_q:.2} | {e2e_q:.2} | {opt_q:.2} | {:.2} | {:.2} | {hours:.3} |",
                zs_exact_report.qerrors.median, zs_est_report.qerrors.median
            );
        }
        println!(
            "\nZero-shot models used 0 queries on the target database ({} queries on other databases).",
            corpus_size
        );
    }
}
