//! Ablation: accuracy on the unseen database as a function of the number
//! of training databases.  The paper reports that "after 19 databases the
//! performance stagnated"; this binary sweeps the number of training
//! databases and prints the resulting median Q-errors so the saturation
//! point of this (simulated) setup can be read off.
//!
//! Usage: `cargo run -p zsdb-bench --release --bin training_dbs_ablation [--quick|--full]`

use zsdb_bench::{
    benchmark_executions, evaluation_database, print_training_settings, ExperimentScale,
};
use zsdb_core::dataset::collect_training_corpus;
use zsdb_core::{evaluate, FeaturizerConfig, ModelConfig, Trainer};
use zsdb_query::WorkloadKind;

fn main() {
    let scale = ExperimentScale::from_args();
    let sweep: Vec<usize> = if std::env::args().any(|a| a == "--full") {
        vec![1, 2, 4, 8, 12, 16, 19]
    } else {
        vec![1, 2, 4, 8]
    };
    println!("# Training-database ablation (scale: {scale:?})\n");
    print_training_settings(&scale.training_config());

    let db = evaluation_database(&scale);
    let eval = benchmark_executions(&db, WorkloadKind::Synthetic, &scale);

    println!("| training databases | training queries | median q-error | 95th |");
    println!("|---|---|---|---|");
    for &num_dbs in &sweep {
        let mut data_config = scale.training_data_config();
        data_config.num_databases = num_dbs;
        let corpus = collect_training_corpus(&data_config);
        let schemas = zsdb_catalog::SchemaGenerator::new(data_config.schema_config.clone())
            .generate_corpus("train", num_dbs, data_config.seed);
        let trainer = Trainer::new(
            ModelConfig::default(),
            scale.training_config(),
            FeaturizerConfig::exact(),
        );
        let graphs = trainer.featurize_corpus(&corpus, |name| {
            schemas.iter().find(|s| s.name == name).expect("catalog")
        });
        let trained = trainer.train(&graphs);
        let report = evaluate(&trained, &db, "synthetic", &eval);
        println!(
            "| {num_dbs} | {} | {:.2} | {:.2} |",
            corpus.len(),
            report.qerrors.median,
            report.qerrors.p95
        );
    }
}
