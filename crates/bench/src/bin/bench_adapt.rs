//! Online-adaptation benchmark: quantifies the execute → observe →
//! fine-tune → hot-swap loop of `zsdb_serve::adapt` and emits a
//! machine-readable `BENCH_adapt.json` report.
//!
//! Scenario: a zero-shot cost model is trained against one hardware
//! profile, then serves a database whose observed runtimes come from a
//! **drifted** profile (`HardwareProfile::slow_disk()` — e.g. the model
//! was trained on NVMe boxes and deployed next to spinning rust).  The
//! report shows
//!
//! * median q-error on the drifted database **before vs. after** N
//!   adaptation rounds (frozen model vs. adapted model),
//! * the p99 serving-latency impact of performing hot-swaps under load
//!   (target: < 5% degradation), and
//! * that a registry rollback restores predictions **bit-identical** to
//!   the prior version.
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_adapt -- \
//!    [--rounds N] [--train-queries N] [--observe N] [--eval N] \
//!    [--requests N] [--workers N] [--epochs N] [--out PATH]`

use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use zsdb_bench::write_json_report;
use zsdb_catalog::presets;
use zsdb_core::features::featurize_execution;
use zsdb_core::{
    FeaturizerConfig, FinetuneConfig, ModelConfig, PlanGraph, TrainedModel, Trainer, TrainingConfig,
};
use zsdb_engine::{EngineConfig, HardwareProfile, ObservationLog, PlanNode, QueryRunner};
use zsdb_nn::percentile;
use zsdb_query::WorkloadGenerator;
use zsdb_serve::{
    rollback_and_swap, AdaptationConfig, AdaptationLoop, ModelRegistry, PredictionServer,
    ServerConfig,
};
use zsdb_storage::Database;

struct Args {
    rounds: u64,
    train_queries: usize,
    observe_per_round: usize,
    eval_queries: usize,
    requests: usize,
    workers: usize,
    epochs: usize,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        let num = |flag: &str, default: usize| {
            value_of(flag)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Args {
            rounds: num("--rounds", 3) as u64,
            train_queries: num("--train-queries", 120),
            observe_per_round: num("--observe", 40),
            eval_queries: num("--eval", 60),
            requests: num("--requests", 2_000),
            workers: num("--workers", 4),
            epochs: num("--epochs", 12),
            out: value_of("--out").unwrap_or_else(|| "BENCH_adapt.json".to_string()),
        }
    }
}

/// The `BENCH_adapt.json` payload.
#[derive(Debug, Serialize)]
struct AdaptReport {
    rounds: u64,
    observe_per_round: usize,
    eval_queries: usize,
    requests_per_phase: usize,
    workers: usize,
    /// Median q-error of the frozen (pre-adaptation) model on the
    /// drifted holdout.
    frozen_median_qerror: f64,
    /// Median q-error of the final adapted model on the same holdout.
    adapted_median_qerror: f64,
    /// Holdout median q-error after each adaptation round, in order.
    round_qerrors: Vec<f64>,
    /// Observations the adaptation loop consumed.
    observations_consumed: u64,
    /// `adapted < frozen`, strictly (the acceptance bar).
    qerror_improved: bool,
    /// Client-side p99 latency (ms) with no swap activity.
    p99_no_swap_ms: f64,
    /// Client-side p99 latency (ms) while hot-swaps fire mid-stream.
    p99_during_swaps_ms: f64,
    /// `(during - baseline) / baseline`, in percent (may be negative).
    p99_degradation_pct: f64,
    /// Hot-swaps performed during the measured phase.
    swaps_during_phase: u64,
    /// Whether rollback restored bit-identical predictions.
    rollback_bit_identical: bool,
    /// The version rollback restored.
    rollback_restored_version: u32,
}

fn median_qerror_on(model: &TrainedModel, holdout: &[PlanGraph]) -> f64 {
    zsdb_core::train::median_q_error(&model.model, holdout)
}

/// Fire `requests` predictions from `workers` client threads and return
/// the client-observed p99 latency in milliseconds.  `mid_phase` runs on
/// the driver thread once half the requests are in flight — the swap
/// injection hook of the measured phase.
fn latency_phase(
    server: &Arc<PredictionServer>,
    plans: &[PlanNode],
    requests: usize,
    clients: usize,
    mid_phase: impl FnOnce(),
) -> f64 {
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let per_client = requests / clients.max(1);
    let mut handles = Vec::new();
    for c in 0..clients.max(1) {
        let server = Arc::clone(server);
        let plans = plans.to_vec();
        let latencies = Arc::clone(&latencies);
        handles.push(std::thread::spawn(move || {
            let mut local = Vec::with_capacity(per_client);
            for i in 0..per_client {
                let plan = plans[(c + i) % plans.len()].clone();
                let prediction = server
                    .submit(plan)
                    .expect("submit")
                    .wait()
                    .expect("answered");
                local.push(prediction.latency.as_secs_f64() * 1e3);
            }
            latencies.lock().expect("latencies").extend(local);
        }));
    }
    // Let the phase ramp up, then inject the mid-phase action.
    std::thread::sleep(Duration::from_millis(30));
    mid_phase();
    for h in handles {
        h.join().expect("client");
    }
    let all = latencies.lock().expect("latencies");
    percentile(&all, 99.0)
}

fn main() {
    let args = Args::parse();
    println!(
        "# Online adaptation benchmark: {} rounds × {} observations, {} eval queries\n",
        args.rounds, args.observe_per_round, args.eval_queries
    );

    // ---- 1. Train the base model on the *source* hardware -----------
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let source_runner = QueryRunner::with_defaults(&db);
    let train_queries =
        WorkloadGenerator::with_defaults().generate(db.catalog(), args.train_queries, 5);
    let train_graphs: Vec<PlanGraph> = source_runner
        .run_workload(&train_queries, 0)
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect();
    let trainer = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: args.epochs,
            validation_fraction: 0.0,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::exact(),
    );
    let base_model = trainer.train(&train_graphs);

    // ---- 2. The drifted deployment: same data, slower hardware ------
    let drifted_runner =
        QueryRunner::new(&db, EngineConfig::default(), HardwareProfile::slow_disk());
    let eval_queries =
        WorkloadGenerator::with_defaults().generate(db.catalog(), args.eval_queries, 77);
    let holdout: Vec<PlanGraph> = drifted_runner
        .run_workload(&eval_queries, 900)
        .iter()
        .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
        .collect();
    let frozen_q = median_qerror_on(&base_model, &holdout);
    println!("frozen model on drifted hardware: median q-error {frozen_q:.3}");

    // ---- 3. Registry + server + background adaptation ----------------
    let dir = std::env::temp_dir().join(format!("zsdb_bench_adapt_{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).expect("open registry");
    let v1 = registry
        .register("adaptive", &base_model, &train_graphs[..4])
        .expect("register base");
    registry.promote("adaptive", v1).expect("promote base");
    let server = Arc::new(PredictionServer::start_versioned(
        registry.load("adaptive", v1).expect("load base"),
        v1,
        db.catalog().clone(),
        ServerConfig {
            workers: args.workers,
            ..ServerConfig::default()
        },
    ));
    let plans = drifted_runner.plan_workload(&eval_queries);

    let log = Arc::new(ObservationLog::new(args.observe_per_round.max(8), 13));
    let adaptation = AdaptationLoop::start(
        Arc::clone(&server),
        registry.clone(),
        "adaptive",
        Arc::clone(&log),
        AdaptationConfig {
            drift_threshold: 1.2,
            drift_window: args.observe_per_round.max(8),
            min_observations: (args.observe_per_round / 2).max(4),
            poll_interval: Duration::from_millis(25),
            finetune: FinetuneConfig {
                epochs: 30,
                learning_rate: 1e-3,
                ..FinetuneConfig::default()
            },
            max_probe_graphs: 4,
            max_swaps: args.rounds,
        },
    );

    // Feed observed (drifted) executions until every round completed.
    let observe_queries = WorkloadGenerator::with_defaults().generate(
        db.catalog(),
        args.observe_per_round * args.rounds as usize,
        31,
    );
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut fed = 0usize;
    while adaptation.status().swaps < args.rounds && Instant::now() < deadline {
        let chunk_end = (fed + args.observe_per_round).min(observe_queries.len());
        if fed < chunk_end {
            drifted_runner.run_workload_observed(
                &observe_queries[fed..chunk_end],
                2000 + fed as u64,
                &log,
            );
            fed = chunk_end;
        } else {
            // All chunks fed; re-observe the same workload until the
            // loop catches up.
            fed = 0;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let status = adaptation.stop();
    assert!(
        status.swaps >= args.rounds,
        "adaptation performed only {} of {} rounds (status: {status:?})",
        status.swaps,
        args.rounds
    );

    // Per-round holdout accuracy from the registry's version trail.
    let mut round_qerrors = Vec::new();
    for version in (v1 + 1)..=(v1 + args.rounds as u32) {
        let model = registry.load("adaptive", version).expect("load round");
        round_qerrors.push(median_qerror_on(&model, &holdout));
    }
    let adapted_q = *round_qerrors.last().expect("at least one round");
    println!(
        "adapted model after {} rounds: median q-error {adapted_q:.3}",
        args.rounds
    );
    for (i, q) in round_qerrors.iter().enumerate() {
        println!("  round {}: {q:.3}", i + 1);
    }

    // ---- 4. p99 latency impact of hot-swapping under load ------------
    // Warm-up pass so both phases run against a warm cache and JIT-warm
    // code paths.
    latency_phase(&server, &plans, args.requests / 4, args.workers, || {});
    let p99_no_swap = latency_phase(&server, &plans, args.requests, args.workers, || {});
    let final_version = server.model_version();
    let swap_a = registry.load("adaptive", final_version).expect("load A");
    let swap_b = registry
        .load("adaptive", final_version - 1)
        .expect("load B");
    let swaps_during_phase = 4u64;
    let p99_during_swaps = {
        let server_for_swaps = Arc::clone(&server);
        latency_phase(&server, &plans, args.requests, args.workers, move || {
            // Alternate between the two newest versions mid-stream.
            for i in 0..swaps_during_phase {
                let (model, version) = if i % 2 == 0 {
                    (swap_b.clone(), final_version - 1)
                } else {
                    (swap_a.clone(), final_version)
                };
                server_for_swaps.swap_model(model, version);
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };
    // Leave the server on the newest version regardless of parity.
    server.swap_model(
        registry.load("adaptive", final_version).expect("reload"),
        final_version,
    );
    let degradation_pct = (p99_during_swaps - p99_no_swap) / p99_no_swap * 100.0;
    println!(
        "\np99 latency: {:.3} ms without swaps, {:.3} ms across {} swaps ({:+.1}%, target < +5%)",
        p99_no_swap, p99_during_swaps, swaps_during_phase, degradation_pct
    );

    // ---- 5. Rollback restores the prior version bit-for-bit ----------
    let restored = rollback_and_swap(&server, &registry, "adaptive").expect("rollback");
    let prior = registry.load("adaptive", restored).expect("load prior");
    let rollback_bit_identical = plans.iter().all(|plan| {
        let served = server.predict_blocking(plan.clone()).expect("serve");
        let expected = prior.predict(&zsdb_core::features::featurize_plan(
            db.catalog(),
            plan,
            prior.featurizer,
        ));
        served.runtime_secs.to_bits() == expected.to_bits()
    });
    assert!(
        rollback_bit_identical,
        "rollback must restore bit-identical predictions"
    );
    println!("rollback to v{restored}: bit-identical predictions restored");

    // ---- 6. Emit the report ------------------------------------------
    let report = AdaptReport {
        rounds: args.rounds,
        observe_per_round: args.observe_per_round,
        eval_queries: args.eval_queries,
        requests_per_phase: args.requests,
        workers: args.workers,
        frozen_median_qerror: frozen_q,
        adapted_median_qerror: adapted_q,
        round_qerrors,
        observations_consumed: status.observations_consumed,
        qerror_improved: adapted_q < frozen_q,
        p99_no_swap_ms: p99_no_swap,
        p99_during_swaps_ms: p99_during_swaps,
        p99_degradation_pct: degradation_pct,
        swaps_during_phase,
        rollback_bit_identical,
        rollback_restored_version: restored,
    };
    assert!(
        report.qerror_improved,
        "post-adaptation median q-error ({adapted_q:.3}) must be strictly better than the \
         frozen model's ({frozen_q:.3})"
    );
    write_json_report(&args.out, &report);
    let _ = std::fs::remove_dir_all(registry.root());
}
