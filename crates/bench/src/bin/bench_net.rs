//! Network serving benchmark: stands up the multi-tenant TCP gateway,
//! drives it with many concurrent `zsdb_client` connections (64 by
//! default, per the acceptance criteria) and emits a machine-readable
//! `BENCH_net.json` report: sustained end-to-end throughput,
//! client-observed p50/p95/p99 latency, a bit-identity check of every
//! remote prediction against the in-process `predict_blocking` path,
//! and the gateway's per-tenant admission counters.
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_net -- \
//!    [--clients N] [--per-client N] [--distinct N] [--workers N] \
//!    [--queue N] [--cache N] [--out PATH]`

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use zsdb_bench::tiny_serving_fixture;
use zsdb_catalog::presets;
use zsdb_client::{Client, ClientConfig, ClientError};
use zsdb_engine::PlanNode;
use zsdb_protocol::GatewayMetrics;
use zsdb_serve::{NetServer, NetServerConfig, PredictionServer, ServerConfig, TenantPolicy};
use zsdb_storage::Database;

struct Args {
    clients: usize,
    per_client: usize,
    distinct: usize,
    workers: usize,
    queue: usize,
    cache: usize,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        let num = |flag: &str, default: usize| {
            value_of(flag)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Args {
            clients: num("--clients", 64),
            per_client: num("--per-client", 100),
            distinct: num("--distinct", 50),
            workers: num("--workers", 4),
            queue: num("--queue", 256),
            cache: num("--cache", 1_024),
            out: value_of("--out").unwrap_or_else(|| "BENCH_net.json".to_string()),
        }
    }
}

/// What `BENCH_net.json` contains.
#[derive(Serialize)]
struct BenchNetReport {
    clients: usize,
    requests: u64,
    retried_rejections: u64,
    wall_secs: f64,
    throughput_qps: f64,
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    bit_identical: bool,
    gateway: GatewayMetrics,
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ClientOutcome {
    latencies_ms: Vec<f64>,
    retried: u64,
    mismatches: u64,
}

fn drive_client(
    addr: std::net::SocketAddr,
    tenant: &str,
    offset: usize,
    per_client: usize,
    plans: &[PlanNode],
    reference: &HashMap<u64, u64>,
) -> ClientOutcome {
    let client = Client::connect(addr, ClientConfig::tenant(tenant)).expect("connect client");
    let mut outcome = ClientOutcome {
        latencies_ms: Vec::with_capacity(per_client),
        retried: 0,
        mismatches: 0,
    };
    for i in 0..per_client {
        let plan = &plans[(offset + i) % plans.len()];
        // Retry on backpressure (quota / shed): the gateway answers with a
        // structured retryable error frame instead of queueing unboundedly.
        let remote = loop {
            let started = Instant::now();
            match client.predict(plan) {
                Ok(remote) => {
                    outcome
                        .latencies_ms
                        .push(started.elapsed().as_secs_f64() * 1e3);
                    break remote;
                }
                Err(ClientError::Server { code, .. }) if code.is_retryable() => {
                    outcome.retried += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("client request failed: {e}"),
            }
        };
        if reference.get(&remote.fingerprint) != Some(&remote.runtime_secs.to_bits()) {
            outcome.mismatches += 1;
        }
    }
    outcome
}

fn main() {
    let args = Args::parse();
    let total_requests = (args.clients * args.per_client) as u64;
    println!(
        "# Network serving benchmark: {} clients x {} requests over {} distinct plans, {} workers\n",
        args.clients, args.per_client, args.distinct, args.workers
    );

    // 1. Train a small model and plan the request stream (the benchmark
    //    measures the serving path, not zero-shot accuracy).
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let (model, plans) = tiny_serving_fixture(&db, args.distinct, 5);

    // 2. Gateway in front of the worker pool; clients split across two
    //    tenants so the per-tenant counters show up in the report.
    let gateway = NetServer::start(
        "127.0.0.1:0",
        PredictionServer::start(
            model,
            db.catalog().clone(),
            ServerConfig {
                workers: args.workers,
                queue_capacity: args.queue,
                cache_capacity: args.cache,
                ..ServerConfig::default()
            },
        ),
        NetServerConfig::default()
            .with_tenant("analytics", TenantPolicy { max_in_flight: 512 })
            .with_tenant("dashboard", TenantPolicy { max_in_flight: 512 }),
    )
    .expect("bind gateway");
    let addr = gateway.local_addr();

    // 3. In-process reference predictions for the bit-identity check.
    let reference: Arc<HashMap<u64, u64>> = Arc::new(
        plans
            .iter()
            .map(|p| {
                let r = gateway
                    .server()
                    .predict_blocking(p.clone())
                    .expect("in-process prediction");
                (r.fingerprint, r.runtime_secs.to_bits())
            })
            .collect(),
    );

    // 4. Fire the concurrent client fleet, one TCP connection each.
    let plans = Arc::new(plans);
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.clients {
        let plans = Arc::clone(&plans);
        let reference = Arc::clone(&reference);
        let per_client = args.per_client;
        let tenant = if c % 2 == 0 { "analytics" } else { "dashboard" };
        handles.push(std::thread::spawn(move || {
            drive_client(addr, tenant, c, per_client, &plans, &reference)
        }));
    }
    let outcomes: Vec<ClientOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let wall_secs = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ms.clone())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let retried: u64 = outcomes.iter().map(|o| o.retried).sum();
    let mismatches: u64 = outcomes.iter().map(|o| o.mismatches).sum();
    assert_eq!(latencies.len() as u64, total_requests);

    let report = BenchNetReport {
        clients: args.clients,
        requests: total_requests,
        retried_rejections: retried,
        wall_secs,
        throughput_qps: total_requests as f64 / wall_secs.max(f64::EPSILON),
        latency_p50_ms: percentile_ms(&latencies, 50.0),
        latency_p95_ms: percentile_ms(&latencies, 95.0),
        latency_p99_ms: percentile_ms(&latencies, 99.0),
        bit_identical: mismatches == 0,
        gateway: gateway.shutdown(),
    };
    println!(
        "{} requests in {:.2}s ({:.0} q/s) · latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.requests,
        report.wall_secs,
        report.throughput_qps,
        report.latency_p50_ms,
        report.latency_p95_ms,
        report.latency_p99_ms
    );
    for t in &report.gateway.tenants {
        println!(
            "tenant {}: admitted {} completed {} rejected_quota {} rejected_shed {}",
            t.tenant, t.admitted, t.completed, t.rejected_quota, t.rejected_shed
        );
    }
    println!(
        "bit-identical to predict_blocking: {} ({} retried rejections)",
        report.bit_identical, report.retried_rejections
    );
    assert!(
        report.bit_identical,
        "{mismatches} remote predictions diverged from predict_blocking"
    );

    println!();
    zsdb_bench::write_json_report(&args.out, &report);
}
