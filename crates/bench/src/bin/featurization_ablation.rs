//! Ablation: transferable features vs. the hashed one-hot (identity)
//! featurization the paper argues against (Section 2.2).  Both variants
//! use the *same* architecture and multi-database training corpus; only
//! the table/column features differ.  The transferable variant should
//! generalize to the unseen IMDB-like database, the one-hot variant should
//! not.
//!
//! Usage: `cargo run -p zsdb-bench --release --bin featurization_ablation [--quick|--full]`

use zsdb_bench::{benchmark_executions, evaluation_database, train_zero_shot, ExperimentScale};
use zsdb_core::features::FeatureMode;
use zsdb_core::{evaluate, CardinalityMode, FeaturizerConfig};
use zsdb_query::WorkloadKind;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("# Featurization ablation (scale: {scale:?})\n");

    let db = evaluation_database(&scale);

    let variants = [
        (
            "transferable (paper)",
            FeaturizerConfig {
                cardinality_mode: CardinalityMode::Exact,
                feature_mode: FeatureMode::Transferable,
            },
        ),
        (
            "hashed one-hot (non-transferable)",
            FeaturizerConfig {
                cardinality_mode: CardinalityMode::Exact,
                feature_mode: FeatureMode::HashedOneHot,
            },
        ),
    ];

    println!("| featurization | train q-error | scale | synthetic | job-light |");
    println!("|---|---|---|---|---|");
    for (label, featurizer) in variants {
        let (model, _) = train_zero_shot(&scale, featurizer);
        let mut cells = vec![
            label.to_string(),
            format!("{:.2}", model.final_train_qerror),
        ];
        for kind in WorkloadKind::FIGURE3 {
            let eval = benchmark_executions(&db, kind, &scale);
            let report = evaluate(&model, &db, kind.name(), &eval);
            cells.push(format!("{:.2}", report.qerrors.median));
        }
        zsdb_bench::print_row(&cells);
    }
}
