//! Multi-task benchmark: trains the jointly-trained multi-task model and
//! the single-task cost model on the same multi-database corpus, then
//! evaluates **per head** on a held-out database the models never saw, and
//! emits a machine-readable `BENCH_multitask.json` report:
//!
//! * **cost head** — median/p95 runtime q-error vs the single-task
//!   zero-shot cost model and the (database-specific, privileged) MSCN
//!   baseline trained on half the held-out workload;
//! * **cardinality head** — median/p95 root-result cardinality q-error vs
//!   the classical estimators (`postgres_like`, `histogram`, `sampling`),
//!   all with the same `+1` smoothing, plus the per-operator head's
//!   median;
//! * **end-to-end plan quality** — the System-R optimizer planning the
//!   held-out workload with [`LearnedCardEstimator`] vs classical
//!   cardinalities, both plan sets executed on a noiseless runtime
//!   simulator.
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_multitask -- \
//!    [--train-dbs N] [--queries-per-db N] [--epochs N] [--eval-queries N] \
//!    [--scale F] [--threads N] [--out PATH]`

use serde::Serialize;
use zsdb_baselines::{MscnConfig, MscnModel};
use zsdb_bench::print_training_settings;
use zsdb_cardest::{
    CardinalityEstimator, HistogramEstimator, PostgresLikeEstimator, SamplingEstimator,
};
use zsdb_core::dataset::{collect_training_corpus, TrainingDataConfig};
use zsdb_core::{qerror_percentiles, FeaturizerConfig, ModelConfig, Trainer, TrainingConfig};
use zsdb_engine::{EngineConfig, HardwareProfile, Optimizer, QueryExecution, QueryRunner};
use zsdb_multitask::{
    samples_from_executions, LearnedCardEstimator, MultiTaskConfig, MultiTaskSample,
    MultiTaskTrainer,
};
use zsdb_nn::q_error;
use zsdb_query::WorkloadGenerator;
use zsdb_storage::Database;

struct Args {
    train_dbs: usize,
    queries_per_db: usize,
    epochs: usize,
    eval_queries: usize,
    scale: f64,
    threads: usize,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        let num = |flag: &str, default: usize| {
            value_of(flag)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Args {
            train_dbs: num("--train-dbs", 6),
            queries_per_db: num("--queries-per-db", 200),
            epochs: num("--epochs", 20),
            eval_queries: num("--eval-queries", 160),
            scale: value_of("--scale")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.03),
            threads: num("--threads", 0),
            out: value_of("--out").unwrap_or_else(|| "BENCH_multitask.json".to_string()),
        }
    }
}

/// Median/p95 q-error block of one estimator or head.
#[derive(Serialize)]
struct QErrorReport {
    median: f64,
    p95: f64,
}

fn qerrors(qs: &[f64]) -> QErrorReport {
    let p = qerror_percentiles(qs);
    QErrorReport {
        median: p.p50,
        p95: p.p95,
    }
}

/// The `BENCH_multitask.json` payload.
#[derive(Serialize)]
struct MultitaskBenchReport {
    corpus_graphs: usize,
    eval_queries: usize,
    mscn_training_queries: usize,
    epochs: usize,
    threads: usize,
    hidden_dim: usize,
    /// Runtime q-error of the jointly-trained cost head.
    cost_multitask: QErrorReport,
    /// Runtime q-error of the single-task zero-shot cost model.
    cost_single_task: QErrorReport,
    /// Runtime q-error of the MSCN baseline (trained on the held-out
    /// database itself — a privileged workload-driven baseline).
    cost_mscn: QErrorReport,
    /// Joint training kept the cost head within 5% of the single-task
    /// median.
    cost_within_5pct: bool,
    /// Root-result cardinality q-error of the learned head.
    root_card_learned: QErrorReport,
    /// Root-result cardinality q-error of the classical estimators.
    root_card_postgres_like: QErrorReport,
    root_card_histogram: QErrorReport,
    root_card_sampling: QErrorReport,
    /// The learned head beats the classical `postgres_like` median.
    learned_beats_postgres: bool,
    /// Per-operator intermediate-cardinality q-error of the learned head.
    op_card_learned: QErrorReport,
    /// End-to-end plan quality: the held-out workload planned with
    /// learned vs classical cardinalities, both executed on a noiseless
    /// simulator.
    plan_runtime_learned_secs: f64,
    plan_runtime_classical_secs: f64,
    /// `classical / learned` — above 1.0 means learned cardinalities
    /// produced cheaper plans overall.
    plan_runtime_ratio: f64,
    plan_learned_wins: usize,
    plan_classical_wins: usize,
    plan_ties: usize,
}

/// Root-result ground truth of an executed query: rows entering the root
/// aggregate.
fn true_root_rows(execution: &QueryExecution) -> f64 {
    execution
        .executed
        .children
        .first()
        .map(|c| c.actual_cardinality)
        .unwrap_or(execution.executed.actual_cardinality) as f64
}

fn card_qerrors(estimates: impl Iterator<Item = f64>, truths: &[f64]) -> Vec<f64> {
    estimates
        .zip(truths)
        .map(|(est, truth)| q_error(est + 1.0, truth + 1.0))
        .collect()
}

fn main() {
    let args = Args::parse();
    let seed = 0xBEEFu64;
    println!(
        "# Multi-task benchmark: {} dbs × {} queries, {} epochs, eval {} queries at scale {}\n",
        args.train_dbs, args.queries_per_db, args.epochs, args.eval_queries, args.scale
    );

    // ---- Shared multi-database training corpus ------------------------
    let data_config = TrainingDataConfig {
        num_databases: args.train_dbs,
        queries_per_database: args.queries_per_db,
        seed,
        ..TrainingDataConfig::default()
    };
    let corpus = collect_training_corpus(&data_config);
    let schemas = zsdb_catalog::SchemaGenerator::new(data_config.schema_config.clone())
        .generate_corpus("train", data_config.num_databases, data_config.seed);
    let catalog_of = |name: &str| {
        schemas
            .iter()
            .find(|s| s.name == name)
            .expect("catalog for corpus database")
    };
    // Estimated-cardinality featurization: the cardinality heads must not
    // see true cardinalities in their inputs (at planning time none
    // exist), so they learn to *correct* the classical estimates.
    let featurizer = FeaturizerConfig::estimated();
    let samples = samples_from_executions(&corpus, catalog_of, featurizer);
    let training_config = TrainingConfig {
        epochs: args.epochs,
        threads: args.threads,
        ..TrainingConfig::default()
    };
    print_training_settings(&training_config);
    println!("corpus: {} graphs\n", samples.len());

    // ---- Train both models --------------------------------------------
    println!("training the single-task cost model ...");
    let single_trainer = Trainer::new(ModelConfig::default(), training_config, featurizer);
    let graphs: Vec<_> = samples.iter().map(|s| s.graph.clone()).collect();
    let single = single_trainer.train(&graphs);
    println!("  final train q-error {:.3}\n", single.final_train_qerror);

    println!("training the multi-task model (cost + root card + operator card) ...");
    let multi_config = MultiTaskConfig::default();
    let multi_trainer = MultiTaskTrainer::new(multi_config, training_config, featurizer);
    let multi = multi_trainer.train(&samples);
    println!(
        "  final train q-errors: cost {:.3} · root card {:.3} · op card {:.3}\n",
        multi.final_train_qerrors.cost,
        multi.final_train_qerrors.root_card,
        multi.final_train_qerrors.op_card
    );

    // ---- Held-out database and workload -------------------------------
    let db = Database::generate(zsdb_catalog::presets::imdb_like(args.scale), seed ^ 0x1111);
    let runner = QueryRunner::new(
        &db,
        EngineConfig::default(),
        HardwareProfile::default().noiseless(),
    );
    let queries =
        WorkloadGenerator::with_defaults().generate(db.catalog(), args.eval_queries, seed ^ 0x77);
    let executions = runner.run_workload(&queries, seed ^ 0x99);
    let split = executions.len() / 2;
    let (mscn_train, eval) = executions.split_at(split);
    let eval_samples: Vec<MultiTaskSample> =
        samples_from_executions(eval, |_| db.catalog(), featurizer);
    println!(
        "held-out db '{}': {} MSCN-training / {} evaluation queries\n",
        db.catalog().name,
        mscn_train.len(),
        eval.len()
    );

    // ---- Cost head vs single-task vs MSCN -----------------------------
    let eval_graphs: Vec<&zsdb_core::PlanGraph> = eval_samples.iter().map(|s| &s.graph).collect();
    let multi_predictions = multi.predict_batch(&eval_graphs);
    let cost_multitask: Vec<f64> = multi_predictions
        .iter()
        .zip(eval)
        .map(|(p, e)| q_error(p.runtime_secs, e.runtime_secs))
        .collect();
    let cost_single: Vec<f64> = single
        .predict_batch(&eval_graphs)
        .into_iter()
        .zip(eval)
        .map(|(p, e)| q_error(p, e.runtime_secs))
        .collect();
    let mut mscn = MscnModel::new(db.catalog(), MscnConfig::default());
    mscn.train(db.catalog(), mscn_train);
    let cost_mscn: Vec<f64> = eval
        .iter()
        .map(|e| q_error(mscn.predict(db.catalog(), &e.query), e.runtime_secs))
        .collect();

    // ---- Cardinality head vs classical estimators ---------------------
    let truths: Vec<f64> = eval.iter().map(true_root_rows).collect();
    let learned_card = card_qerrors(multi_predictions.iter().map(|p| p.root_rows), &truths);
    let postgres = PostgresLikeEstimator::new(db.catalog().clone());
    let histogram = HistogramEstimator::build(&db, seed ^ 0x5);
    let sampling = SamplingEstimator::build(&db, 2_000, seed ^ 0x6);
    let postgres_card = card_qerrors(
        eval.iter().map(|e| postgres.query_cardinality(&e.query)),
        &truths,
    );
    let histogram_card = card_qerrors(
        eval.iter().map(|e| histogram.query_cardinality(&e.query)),
        &truths,
    );
    let sampling_card = card_qerrors(
        eval.iter().map(|e| sampling.query_cardinality(&e.query)),
        &truths,
    );
    let op_card: Vec<f64> = multi_predictions
        .iter()
        .zip(&eval_samples)
        .flat_map(|(p, s)| {
            p.operator_rows
                .iter()
                .zip(&s.targets.operator_rows)
                .map(|(pr, ar)| q_error(pr + 1.0, ar + 1.0))
                .collect::<Vec<_>>()
        })
        .collect();

    // ---- End-to-end plan quality: optimizer with learned cards --------
    println!("planning the held-out workload with learned vs classical cardinalities ...");
    let learned_est = LearnedCardEstimator::new(&multi, postgres.clone());
    let learned_optimizer = Optimizer::new(&db, EngineConfig::default(), &learned_est);
    let classical_optimizer = Optimizer::new(&db, EngineConfig::default(), &postgres);
    let (mut learned_total, mut classical_total) = (0.0f64, 0.0f64);
    let (mut learned_wins, mut classical_wins, mut ties) = (0usize, 0usize, 0usize);
    for (i, e) in eval.iter().enumerate() {
        let noise = seed ^ 0x200 ^ i as u64;
        let learned_runtime = runner
            .run_plan(&e.query, learned_optimizer.plan(&e.query), noise)
            .runtime_secs;
        let classical_runtime = runner
            .run_plan(&e.query, classical_optimizer.plan(&e.query), noise)
            .runtime_secs;
        learned_total += learned_runtime;
        classical_total += classical_runtime;
        if learned_runtime < classical_runtime {
            learned_wins += 1;
        } else if classical_runtime < learned_runtime {
            classical_wins += 1;
        } else {
            ties += 1;
        }
    }

    // ---- Report -------------------------------------------------------
    let report = MultitaskBenchReport {
        corpus_graphs: samples.len(),
        eval_queries: eval.len(),
        mscn_training_queries: mscn_train.len(),
        epochs: args.epochs,
        threads: training_config.effective_threads(),
        hidden_dim: multi_config.hidden_dim,
        cost_multitask: qerrors(&cost_multitask),
        cost_single_task: qerrors(&cost_single),
        cost_mscn: qerrors(&cost_mscn),
        cost_within_5pct: qerrors(&cost_multitask).median <= qerrors(&cost_single).median * 1.05,
        root_card_learned: qerrors(&learned_card),
        root_card_postgres_like: qerrors(&postgres_card),
        root_card_histogram: qerrors(&histogram_card),
        root_card_sampling: qerrors(&sampling_card),
        learned_beats_postgres: qerrors(&learned_card).median < qerrors(&postgres_card).median,
        op_card_learned: qerrors(&op_card),
        plan_runtime_learned_secs: learned_total,
        plan_runtime_classical_secs: classical_total,
        plan_runtime_ratio: classical_total / learned_total.max(1e-12),
        plan_learned_wins: learned_wins,
        plan_classical_wins: classical_wins,
        plan_ties: ties,
    };

    println!("\n## Per-head q-error on the held-out database (median / p95)");
    zsdb_bench::print_row(&["head".into(), "model".into(), "median".into(), "p95".into()]);
    let row = |head: &str, model: &str, q: &QErrorReport| {
        zsdb_bench::print_row(&[
            head.into(),
            model.into(),
            format!("{:.3}", q.median),
            format!("{:.3}", q.p95),
        ]);
    };
    row("cost", "multi-task", &report.cost_multitask);
    row("cost", "single-task", &report.cost_single_task);
    row("cost", "MSCN (privileged)", &report.cost_mscn);
    row("root card", "learned head", &report.root_card_learned);
    row(
        "root card",
        "postgres_like",
        &report.root_card_postgres_like,
    );
    row("root card", "histogram", &report.root_card_histogram);
    row("root card", "sampling", &report.root_card_sampling);
    row("op card", "learned head", &report.op_card_learned);
    println!(
        "\nplan quality: learned {:.4}s vs classical {:.4}s (ratio {:.3}; \
         learned wins {} · classical wins {} · ties {})",
        report.plan_runtime_learned_secs,
        report.plan_runtime_classical_secs,
        report.plan_runtime_ratio,
        report.plan_learned_wins,
        report.plan_classical_wins,
        report.plan_ties
    );
    println!(
        "cost head within 5% of single-task: {} · learned card beats postgres_like: {}\n",
        report.cost_within_5pct, report.learned_beats_postgres
    );

    zsdb_bench::write_json_report(&args.out, &report);
}
