//! Observability overhead benchmark: drives the same serving workload
//! three times through one `zsdb_serve` worker pool — tracer disabled,
//! tracer enabled, and tracer + flight recorder + provenance enabled —
//! and emits a machine-readable `BENCH_obs.json` report with all three
//! throughputs, both overheads, and the per-stage latency breakdown
//! gathered by the instrumented passes.
//!
//! The binary exits non-zero when either the tracer pass or the
//! recorder-on pass regresses throughput by more than
//! `--max-overhead-pct` (default 10%), so CI catches an
//! instrumentation path that stops being cheap.
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_obs -- \
//!    [--requests N] [--distinct N] [--workers N] [--queue N] [--cache N] \
//!    [--rounds N] [--max-overhead-pct P] [--out PATH]`

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use zsdb_bench::tiny_serving_fixture;
use zsdb_catalog::presets;
use zsdb_engine::PlanNode;
use zsdb_serve::{ObservabilityConfig, PredictionServer, ServerConfig};
use zsdb_storage::Database;

struct Args {
    requests: usize,
    distinct: usize,
    workers: usize,
    queue: usize,
    cache: usize,
    rounds: usize,
    max_overhead_pct: f64,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        let num = |flag: &str, default: usize| {
            value_of(flag)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Args {
            requests: num("--requests", 3_000),
            distinct: num("--distinct", 150),
            workers: num("--workers", 4),
            queue: num("--queue", 256),
            cache: num("--cache", 1_024),
            rounds: num("--rounds", 3).max(1),
            max_overhead_pct: value_of("--max-overhead-pct")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10.0),
            out: value_of("--out").unwrap_or_else(|| "BENCH_obs.json".to_string()),
        }
    }
}

/// One stage of the per-stage latency breakdown, aggregated from the
/// instrumented pass's `serve.stage.*_ns` histograms.
#[derive(Serialize)]
struct StageBreakdown {
    stage: String,
    count: u64,
    mean_ns: f64,
    max_ns: u64,
    share_pct: f64,
}

#[derive(Serialize)]
struct BenchObsReport {
    requests_per_pass: usize,
    distinct_plans: usize,
    workers: usize,
    rounds: usize,
    /// Best round's throughput with the tracer disabled (requests/sec).
    baseline_qps: f64,
    /// Best round's throughput with the tracer enabled.
    instrumented_qps: f64,
    /// Throughput lost to instrumentation, in percent of the baseline
    /// (negative means the instrumented pass happened to run faster).
    overhead_pct: f64,
    /// Best round's throughput with the tracer, flight recorder, and
    /// per-request provenance assembly all enabled.
    recorder_on_qps: f64,
    /// Throughput lost to the flight recorder + provenance, in percent
    /// of the tracer-only (recorder-off) pass.
    recorder_overhead_pct: f64,
    /// Slow-ring occupancy after the recorder-on rounds — proof the
    /// recorder actually retained traces while being measured.
    slow_requests_retained: usize,
    /// The failure threshold this run was checked against.
    max_overhead_pct: f64,
    /// Per-stage latency breakdown from the instrumented pass.
    stages: Vec<StageBreakdown>,
}

/// Fire `requests` predictions from `clients` producer threads through
/// the shared worker pool and return the wall-clock seconds the pass
/// took.  When the tracer is enabled each request carries a trace; the
/// producer finishes it and feeds the per-stage histograms, exactly as
/// the network responder does.
fn run_pass(
    server: &Arc<PredictionServer>,
    plans: &[PlanNode],
    requests: usize,
    clients: usize,
    provenance: bool,
) -> f64 {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let per_client = requests / clients + usize::from(c < requests % clients);
            let server = Arc::clone(server);
            scope.spawn(move || {
                for i in 0..per_client {
                    let plan = plans[(c + i * clients) % plans.len()].clone();
                    let trace = server.tracer().begin();
                    let ticket = server.submit_traced(plan, trace).unwrap();
                    let (prediction, trace) = ticket.wait_traced().unwrap();
                    if let Some(t) = trace {
                        if provenance {
                            // Full cold path: stage histograms, flight
                            // recorder retention, provenance assembly.
                            server.complete_traced(&prediction, t);
                        } else {
                            let done = server.tracer().finish(t);
                            server.recorder().stage_recorder().record_trace(&done);
                        }
                    }
                }
            });
        }
    });
    started.elapsed().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    println!(
        "# Observability overhead: {} requests/pass over {} distinct plans, {} workers, {} rounds\n",
        args.requests, args.distinct, args.workers, args.rounds
    );

    let db = Database::generate(presets::imdb_like(0.02), 11);
    let (model, plans) = tiny_serving_fixture(&db, args.distinct, 5);
    let server = Arc::new(PredictionServer::start_observed(
        model,
        1,
        db.catalog().clone(),
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            ..ServerConfig::default()
        },
        ObservabilityConfig::default(),
    ));

    // Warm the feature cache and the thread pool outside the clock.
    server.tracer().set_enabled(false);
    server.flight_recorder().set_enabled(false);
    run_pass(
        &server,
        &plans,
        args.requests / 4,
        args.workers.max(1),
        false,
    );

    // Alternate baseline / tracer-on / recorder-on rounds so
    // slow-machine noise hits every side, and score each side by its
    // best round.
    let mut baseline_qps = 0.0f64;
    let mut instrumented_qps = 0.0f64;
    let mut recorder_on_qps = 0.0f64;
    for round in 0..args.rounds {
        server.tracer().set_enabled(false);
        server.flight_recorder().set_enabled(false);
        let off = args.requests as f64
            / run_pass(&server, &plans, args.requests, args.workers.max(1), false);
        server.tracer().set_enabled(true);
        let on = args.requests as f64
            / run_pass(&server, &plans, args.requests, args.workers.max(1), false);
        server.flight_recorder().set_enabled(true);
        let rec = args.requests as f64
            / run_pass(&server, &plans, args.requests, args.workers.max(1), true);
        baseline_qps = baseline_qps.max(off);
        instrumented_qps = instrumented_qps.max(on);
        recorder_on_qps = recorder_on_qps.max(rec);
        println!(
            "round {round}: tracer off {off:.0} req/s, tracer on {on:.0} req/s, \
             recorder on {rec:.0} req/s"
        );
    }
    let overhead_pct = (baseline_qps - instrumented_qps) / baseline_qps * 100.0;
    let recorder_overhead_pct = (instrumented_qps - recorder_on_qps) / instrumented_qps * 100.0;
    let slow_requests_retained = server.flight_recorder().slow_len();

    // Per-stage breakdown from the instrumented rounds' histograms.
    let snapshot = server.recorder().registry().snapshot();
    let stage_total: u64 = snapshot
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("serve.stage."))
        .map(|(_, h)| h.sum)
        .sum();
    let stages: Vec<StageBreakdown> = snapshot
        .histograms
        .iter()
        .filter(|(name, h)| name.starts_with("serve.stage.") && h.count > 0)
        .map(|(name, h)| StageBreakdown {
            stage: name
                .trim_start_matches("serve.stage.")
                .trim_end_matches("_ns")
                .to_string(),
            count: h.count,
            mean_ns: h.sum as f64 / h.count as f64,
            max_ns: h.max,
            share_pct: h.sum as f64 / stage_total.max(1) as f64 * 100.0,
        })
        .collect();

    println!(
        "\nbaseline {baseline_qps:.0} req/s, instrumented {instrumented_qps:.0} req/s \
         => overhead {overhead_pct:+.2}% (limit {:.1}%)",
        args.max_overhead_pct
    );
    println!(
        "recorder on {recorder_on_qps:.0} req/s => overhead {recorder_overhead_pct:+.2}% \
         vs recorder off ({slow_requests_retained} slow traces retained)"
    );
    for s in &stages {
        println!(
            "  {:<14} {:>9} samples  mean {:>10.0} ns  max {:>10} ns  {:>5.1}% of stage time",
            s.stage, s.count, s.mean_ns, s.max_ns, s.share_pct
        );
    }

    let report = BenchObsReport {
        requests_per_pass: args.requests,
        distinct_plans: args.distinct,
        workers: args.workers,
        rounds: args.rounds,
        baseline_qps,
        instrumented_qps,
        overhead_pct,
        recorder_on_qps,
        recorder_overhead_pct,
        slow_requests_retained,
        max_overhead_pct: args.max_overhead_pct,
        stages,
    };
    println!();
    zsdb_bench::write_json_report(&args.out, &report);

    if overhead_pct > args.max_overhead_pct {
        eprintln!(
            "FAIL: instrumentation overhead {overhead_pct:.2}% exceeds the {:.1}% budget",
            args.max_overhead_pct
        );
        std::process::exit(1);
    }
    if recorder_overhead_pct > args.max_overhead_pct {
        eprintln!(
            "FAIL: flight recorder overhead {recorder_overhead_pct:.2}% exceeds the {:.1}% budget",
            args.max_overhead_pct
        );
        std::process::exit(1);
    }
}
