//! Training-throughput benchmark: trains the same multi-database corpus
//! with the pre-refactor per-example trainer and with the batched
//! (level, kind)-scheduled trainer, and emits a machine-readable
//! `BENCH_train.json` report (graphs/sec for both engines, speedup,
//! epochs-to-convergence, final median q-error, and the batched-vs-
//! per-example bit-equivalence check).
//!
//! Measurement methodology: both engines are timed over their **whole
//! training loop**, exactly as a user experiences them.  That includes
//! each engine's per-epoch bookkeeping — the per-example baseline
//! reproduces the pre-refactor trainer faithfully, with its separate
//! full-corpus evaluation pass per epoch, while the batched engine's
//! training curve reuses the epoch's own training forwards (plus a small
//! validation pass).  The reported `speedup` therefore credits the
//! batched engine both for its faster kernels and for eliminating the
//! redundant evaluation sweep; both are deliberate parts of the
//! refactor.
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_train -- \
//!    [--train-dbs N] [--queries-per-db N] [--epochs N] [--batch N] \
//!    [--microbatch N] [--threads N] [--hidden N] [--out PATH]`

use serde::Serialize;
use std::time::Instant;
use zsdb_core::dataset::{collect_training_corpus, TrainingDataConfig};
use zsdb_core::{FeaturizerConfig, ModelConfig, PlanGraph, TrainedModel, Trainer, TrainingConfig};

struct Args {
    train_dbs: usize,
    queries_per_db: usize,
    epochs: usize,
    batch: usize,
    microbatch: usize,
    threads: usize,
    hidden: usize,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        let num = |flag: &str, default: usize| {
            value_of(flag)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Args {
            train_dbs: num("--train-dbs", 4),
            queries_per_db: num("--queries-per-db", 100),
            epochs: num("--epochs", 10),
            batch: num("--batch", 64),
            microbatch: num("--microbatch", 32),
            threads: num("--threads", 0),
            hidden: num("--hidden", 48),
            out: value_of("--out").unwrap_or_else(|| "BENCH_train.json".to_string()),
        }
    }
}

/// Per-engine result block of `BENCH_train.json`.
#[derive(Serialize)]
struct EngineReport {
    wall_secs: f64,
    graphs_per_sec: f64,
    epochs_run: usize,
    final_median_qerror: f64,
}

/// The `BENCH_train.json` payload.
#[derive(Serialize)]
struct TrainBenchReport {
    corpus_graphs: usize,
    train_graphs: usize,
    validation_graphs: usize,
    epochs: usize,
    batch_size: usize,
    microbatch_size: usize,
    threads: usize,
    hidden_dim: usize,
    per_example: EngineReport,
    batched: EngineReport,
    speedup: f64,
    /// First epoch (1-based) at which the batched trainer's median
    /// training q-error dropped below 2.0; `None` when never reached.
    epochs_to_convergence: Option<usize>,
    /// Whether batched predictions of the trained model are bit-identical
    /// to per-example predictions over the training corpus.
    equivalence_bit_identical: bool,
}

fn engine_report(trained: &TrainedModel, graphs_trained_on: usize, wall_secs: f64) -> EngineReport {
    let epochs_run = trained.training_curve.len();
    EngineReport {
        wall_secs,
        graphs_per_sec: (epochs_run * graphs_trained_on) as f64 / wall_secs.max(1e-12),
        epochs_run,
        final_median_qerror: trained.final_train_qerror,
    }
}

fn main() {
    let args = Args::parse();
    println!(
        "# Training benchmark: {} dbs × {} queries, {} epochs, batch {}, microbatch {}, threads {}\n",
        args.train_dbs, args.queries_per_db, args.epochs, args.batch, args.microbatch, args.threads
    );

    // ---- Corpus --------------------------------------------------------
    let data_config = TrainingDataConfig {
        num_databases: args.train_dbs,
        queries_per_database: args.queries_per_db,
        ..TrainingDataConfig::default()
    };
    let corpus = collect_training_corpus(&data_config);
    let schemas = zsdb_catalog::SchemaGenerator::new(data_config.schema_config.clone())
        .generate_corpus("train", data_config.num_databases, data_config.seed);

    let model_config = ModelConfig {
        hidden_dim: args.hidden,
        ..ModelConfig::default()
    };
    let training_config = TrainingConfig {
        epochs: args.epochs,
        batch_size: args.batch,
        microbatch_size: args.microbatch,
        threads: args.threads,
        validation_fraction: 0.1,
        // Both engines must run the same number of epochs for a clean
        // throughput comparison; convergence behaviour is reported
        // separately via `epochs_to_convergence`.
        early_stopping_patience: 0,
        ..TrainingConfig::default()
    };
    let trainer = Trainer::new(model_config, training_config, FeaturizerConfig::exact());
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas
            .iter()
            .find(|s| s.name == name)
            .expect("catalog for corpus database")
    });
    let val_len = ((graphs.len() as f64) * training_config.validation_fraction) as usize;
    let train_len = graphs.len() - val_len;
    println!(
        "corpus: {} graphs ({} train / {} validation)\n",
        graphs.len(),
        train_len,
        val_len
    );

    // ---- Pre-refactor per-example engine ------------------------------
    println!("training with the per-example reference engine ...");
    let started = Instant::now();
    let reference = trainer.train_per_example(&graphs);
    let reference_secs = started.elapsed().as_secs_f64();
    let per_example = engine_report(&reference, train_len, reference_secs);
    println!(
        "  {:.2}s · {:.0} graphs/sec · final median q-error {:.3}",
        per_example.wall_secs, per_example.graphs_per_sec, per_example.final_median_qerror
    );

    // ---- Batched engine -----------------------------------------------
    println!("training with the batched engine ...");
    let started = Instant::now();
    let trained = trainer.train(&graphs);
    let batched_secs = started.elapsed().as_secs_f64();
    let batched = engine_report(&trained, train_len, batched_secs);
    println!(
        "  {:.2}s · {:.0} graphs/sec · final median q-error {:.3}",
        batched.wall_secs, batched.graphs_per_sec, batched.final_median_qerror
    );

    let epochs_to_convergence = trained
        .training_curve
        .iter()
        .position(|&q| q < 2.0)
        .map(|i| i + 1);

    // ---- Bit-equivalence of batched and per-example inference ---------
    let sample: Vec<&PlanGraph> = graphs.iter().take(256).collect();
    let batched_predictions = trained.model.predict_batch(&sample);
    let equivalence_bit_identical = sample
        .iter()
        .zip(&batched_predictions)
        .all(|(g, p)| p.to_bits() == trained.model.predict(g).to_bits());

    let speedup = batched.graphs_per_sec / per_example.graphs_per_sec.max(1e-12);
    let report = TrainBenchReport {
        corpus_graphs: graphs.len(),
        train_graphs: train_len,
        validation_graphs: val_len,
        epochs: args.epochs,
        batch_size: args.batch,
        microbatch_size: args.microbatch,
        threads: training_config.effective_threads(),
        hidden_dim: args.hidden,
        per_example,
        batched,
        speedup,
        epochs_to_convergence,
        equivalence_bit_identical,
    };

    println!(
        "\nspeedup: {:.2}x (batched {:.0} vs per-example {:.0} graphs/sec) · \
         epochs-to-convergence {:?} · bit-identical {}",
        report.speedup,
        report.batched.graphs_per_sec,
        report.per_example.graphs_per_sec,
        report.epochs_to_convergence,
        report.equivalence_bit_identical
    );
    // Fail loudly in CI if the batched engine ever regresses below the
    // equivalence guarantee.
    assert!(
        report.equivalence_bit_identical,
        "batched predictions diverged from the per-example path"
    );

    zsdb_bench::write_json_report(&args.out, &report);
}
