//! Executor throughput benchmark: batched vs row-at-a-time.
//!
//! Runs the same optimizer-planned workload through both execution
//! strategies — the vectorized batch executor (`zsdb_engine::Executor`,
//! the production corpus-generation path) and the row-at-a-time reference
//! (`zsdb_engine::RowExecutor`) — and emits a machine-readable
//! `BENCH_exec.json` with per-strategy rows/sec, corpus-generation wall
//! clock, the speedup, and an equivalence check (aggregates, actual
//! cardinalities and work metrics must be bit-identical across every
//! query).
//!
//! The binary exits non-zero when the executors diverge on any query, or
//! when `--min-speedup` (default 1.0; CI smoke uses it loosely, the
//! committed report targets ≥3×) is not met.
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_exec -- \
//!    [--scale S] [--queries N] [--max-tables N] [--rounds N] \
//!    [--min-speedup X] [--out PATH]`

use std::time::Instant;

use serde::Serialize;
use zsdb_catalog::presets;
use zsdb_engine::{Executor, Optimizer, PlanNode, QueryResult, RowExecutor};
use zsdb_query::{WorkloadGenerator, WorkloadSpec};
use zsdb_storage::Database;

struct Args {
    scale: f64,
    queries: usize,
    max_tables: usize,
    rounds: usize,
    min_speedup: f64,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        Args {
            scale: value_of("--scale")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.08),
            queries: value_of("--queries")
                .and_then(|v| v.parse().ok())
                .unwrap_or(60),
            max_tables: value_of("--max-tables")
                .and_then(|v| v.parse().ok())
                .unwrap_or(3),
            rounds: value_of("--rounds")
                .and_then(|v| v.parse().ok())
                .unwrap_or(3)
                .max(1),
            min_speedup: value_of("--min-speedup")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.0),
            out: value_of("--out").unwrap_or_else(|| "BENCH_exec.json".to_string()),
        }
    }
}

#[derive(Serialize)]
struct StrategyReport {
    /// Total wall clock across all rounds, seconds.
    wall_secs_total: f64,
    /// Best (minimum) single-round wall clock, seconds — the number the
    /// throughput is derived from.
    wall_secs_best_round: f64,
    /// Input tuples pushed through plan operators per second, best round.
    rows_per_sec: f64,
}

#[derive(Serialize)]
struct BenchExecReport {
    scale: f64,
    queries: usize,
    rounds: usize,
    /// Total operator input tuples across the workload (one round).
    corpus_input_tuples: u64,
    row_at_a_time: StrategyReport,
    batched: StrategyReport,
    /// batched rows/sec ÷ row-at-a-time rows/sec.
    speedup: f64,
    /// True only if aggregates, actual cardinalities and work metrics were
    /// bit-identical between the strategies on every query.
    results_identical: bool,
}

fn time_rounds<F: FnMut() -> u64>(rounds: usize, mut pass: F) -> (f64, f64, u64) {
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    let mut tuples = 0;
    for _ in 0..rounds {
        let start = Instant::now();
        tuples = pass();
        let secs = start.elapsed().as_secs_f64();
        total += secs;
        best = best.min(secs);
    }
    (total, best, tuples)
}

fn main() {
    let args = Args::parse();
    let db = Database::generate(presets::imdb_like(args.scale), 7);
    let estimator = zsdb_cardest::PostgresLikeEstimator::new(db.catalog().clone());
    let optimizer = Optimizer::new(&db, zsdb_engine::EngineConfig::default(), &estimator);
    let queries = WorkloadGenerator::new(WorkloadSpec {
        max_tables: args.max_tables,
        ..WorkloadSpec::default()
    })
    .generate(db.catalog(), args.queries, 13);
    let plans: Vec<PlanNode> = queries.iter().map(|q| optimizer.plan(q)).collect();
    println!(
        "bench_exec: {} queries on imdb_like(scale={}), {} rounds",
        plans.len(),
        args.scale,
        args.rounds
    );

    let corpus_tuples = |results: &[QueryResult]| -> u64 {
        results
            .iter()
            .map(|r| r.root.total_work().input_tuples)
            .sum()
    };

    // Equivalence check first (also warms both paths).
    let batched_results: Vec<QueryResult> = plans
        .iter()
        .map(|p| Executor::new(&db).execute(p))
        .collect();
    let row_results: Vec<QueryResult> = plans
        .iter()
        .map(|p| RowExecutor::new(&db).execute(p))
        .collect();
    let results_identical = batched_results == row_results;

    let (row_total, row_best, row_tuples) = time_rounds(args.rounds, || {
        let results: Vec<QueryResult> = plans
            .iter()
            .map(|p| RowExecutor::new(&db).execute(p))
            .collect();
        corpus_tuples(&results)
    });
    let (batched_total, batched_best, batched_tuples) = time_rounds(args.rounds, || {
        let results: Vec<QueryResult> = plans
            .iter()
            .map(|p| Executor::new(&db).execute(p))
            .collect();
        corpus_tuples(&results)
    });
    assert_eq!(row_tuples, batched_tuples, "work accounting diverged");

    let row_rps = row_tuples as f64 / row_best;
    let batched_rps = batched_tuples as f64 / batched_best;
    let speedup = batched_rps / row_rps;
    let report = BenchExecReport {
        scale: args.scale,
        queries: plans.len(),
        rounds: args.rounds,
        corpus_input_tuples: batched_tuples,
        row_at_a_time: StrategyReport {
            wall_secs_total: row_total,
            wall_secs_best_round: row_best,
            rows_per_sec: row_rps,
        },
        batched: StrategyReport {
            wall_secs_total: batched_total,
            wall_secs_best_round: batched_best,
            rows_per_sec: batched_rps,
        },
        speedup,
        results_identical,
    };

    println!(
        "row-at-a-time: {:.3}s best round ({:.0} rows/sec)",
        row_best, row_rps
    );
    println!(
        "batched:       {:.3}s best round ({:.0} rows/sec)",
        batched_best, batched_rps
    );
    println!("speedup:       {speedup:.2}x (results identical: {results_identical})");
    zsdb_bench::write_json_report(&args.out, &report);

    if !results_identical {
        eprintln!("FAIL: batched and row-at-a-time results diverged");
        std::process::exit(1);
    }
    if speedup < args.min_speedup {
        eprintln!(
            "FAIL: speedup {speedup:.2}x below required {:.2}x",
            args.min_speedup
        );
        std::process::exit(1);
    }
}
