//! Serving benchmark: drives a concurrent request stream through the
//! `zsdb_serve` worker pool and emits a machine-readable
//! `BENCH_serve.json` report (throughput, p50/p95/p99 latency, cache
//! hit-rate).
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_serve -- \
//!    [--requests N] [--distinct N] [--workers N] [--queue N] [--cache N] [--out PATH]`

use std::sync::Arc;
use zsdb_bench::tiny_serving_fixture;
use zsdb_catalog::presets;
use zsdb_serve::{PredictionServer, ServerConfig};
use zsdb_storage::Database;

struct Args {
    requests: usize,
    distinct: usize,
    workers: usize,
    queue: usize,
    cache: usize,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        let num = |flag: &str, default: usize| {
            value_of(flag)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Args {
            requests: num("--requests", 5_000),
            distinct: num("--distinct", 200),
            workers: num("--workers", 4),
            queue: num("--queue", 256),
            cache: num("--cache", 1_024),
            out: value_of("--out").unwrap_or_else(|| "BENCH_serve.json".to_string()),
        }
    }
}

fn main() {
    let args = Args::parse();
    println!(
        "# Serving benchmark: {} requests over {} distinct plans, {} workers\n",
        args.requests, args.distinct, args.workers
    );

    // 1. Train a small model on executions from the target database (the
    //    benchmark measures serving, not zero-shot accuracy) and plan the
    //    request stream; requests cycle through the plans, so repeats
    //    exercise the cache.
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let (model, plans) = tiny_serving_fixture(&db, args.distinct, 5);
    let server = Arc::new(PredictionServer::start(
        model,
        db.catalog().clone(),
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            ..ServerConfig::default()
        },
    ));

    // 3. Fire from as many client threads as workers; `submit` blocks on
    //    the bounded queue, so producers experience backpressure instead
    //    of queueing without limit.
    let clients = args.workers.max(1);
    let mut handles = Vec::new();
    for c in 0..clients {
        // Spread the remainder over the first `requests % clients`
        // threads so exactly `requests` predictions are served.
        let per_client = args.requests / clients + usize::from(c < args.requests % clients);
        let server = Arc::clone(&server);
        let plans = plans.clone();
        handles.push(std::thread::spawn(move || {
            let mut checksum = 0.0f64;
            for i in 0..per_client {
                let plan = plans[(c + i * clients) % plans.len()].clone();
                let prediction = server.submit(plan).unwrap().wait().unwrap();
                checksum += prediction.runtime_secs;
            }
            checksum
        }));
    }
    let checksum: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let snapshot = server.metrics();
    println!("{snapshot}");
    println!("(prediction checksum {checksum:.6})");

    println!();
    zsdb_bench::write_json_report(&args.out, &snapshot);
}
