//! Serving benchmark: drives a concurrent request stream through the
//! sharded `zsdb_serve` server and emits a machine-readable
//! `BENCH_serve.json` report (throughput, p50/p95/p99 latency, cache
//! hit-rate) together with the configuration that produced it (shard
//! count, kernel, queue/cache sizing) and a bit-stable prediction
//! checksum, so two runs can be compared for numeric identity.
//!
//! Usage:
//! `cargo run -p zsdb_bench --release --bin bench_serve -- \
//!    [--scale tiny|full] [--requests N] [--distinct N] [--shards N] \
//!    [--queue N] [--cache N] [--out PATH]`
//!
//! `--workers` is accepted as an alias for `--shards` (the server runs
//! thread-per-core: one worker per shard).  Explicit flags override the
//! `--scale` preset.  The kernel is selected by the `ZSDB_KERNEL`
//! environment variable (`simd` default, `scalar` fallback); both must
//! produce the identical `prediction_checksum_bits`.

use std::sync::Arc;
use std::time::Instant;
use zsdb_bench::tiny_serving_fixture;
use zsdb_catalog::presets;
use zsdb_serve::{MetricsSnapshot, PredictionServer, ServerConfig};
use zsdb_storage::Database;

struct Args {
    scale: String,
    requests: usize,
    distinct: usize,
    shards: usize,
    queue: usize,
    cache: usize,
    batch: usize,
    out: String,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        let scale = value_of("--scale").unwrap_or_else(|| "full".to_string());
        // Scale presets; any explicit flag overrides its preset value.
        let (requests, distinct, shards, queue, cache) = match scale.as_str() {
            "tiny" => (500, 50, 2, 64, 256),
            "full" => (5_000, 200, 4, 256, 1_024),
            other => panic!("unknown --scale {other:?} (expected tiny|full)"),
        };
        let num = |flag: &str, default: usize| {
            value_of(flag)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Args {
            requests: num("--requests", requests),
            distinct: num("--distinct", distinct),
            shards: num("--shards", num("--workers", shards)),
            queue: num("--queue", queue),
            cache: num("--cache", cache),
            batch: num("--batch", 1).max(1),
            out: value_of("--out").unwrap_or_else(|| "BENCH_serve.json".to_string()),
            scale,
        }
    }
}

/// Configuration stanza embedded in the report so a stored
/// `BENCH_serve.json` is self-describing.
#[derive(serde::Serialize)]
struct BenchConfig {
    scale: String,
    requests: usize,
    distinct_plans: usize,
    shards: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    /// Client-side submission batch size: 1 means one ticket per
    /// request; larger values go through `submit_batch`, the load shape
    /// the coalescing TCP gateway produces.
    batch: usize,
    /// Active MLP kernel (`"simd"` or `"scalar"`, from `ZSDB_KERNEL`).
    kernel: &'static str,
}

#[derive(serde::Serialize)]
struct BenchReport {
    config: BenchConfig,
    /// End-to-end request throughput over the firing window.
    throughput_qps: f64,
    /// Sum of all predicted runtimes, in deterministic (thread-index)
    /// order — bit-stable for a fixed seed and request schedule.
    prediction_checksum: f64,
    /// The checksum's exact IEEE-754 bit pattern: two runs agree
    /// numerically iff these strings are equal.
    prediction_checksum_bits: String,
    metrics: MetricsSnapshot,
}

fn main() {
    let args = Args::parse();
    let kernel = zsdb_nn::active_kernel().name();
    println!(
        "# Serving benchmark ({}): {} requests over {} distinct plans, {} shards, {} kernel\n",
        args.scale, args.requests, args.distinct, args.shards, kernel
    );

    // 1. Train a small model on executions from the target database (the
    //    benchmark measures serving, not zero-shot accuracy) and plan the
    //    request stream; requests cycle through the plans, so repeats
    //    exercise the cache.
    let db = Database::generate(presets::imdb_like(0.02), 11);
    let (model, plans) = tiny_serving_fixture(&db, args.distinct, 5);
    let server = Arc::new(PredictionServer::start(
        model,
        db.catalog().clone(),
        ServerConfig {
            workers: args.shards,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            ..ServerConfig::default()
        },
    ));

    // 2. Fire from as many client threads as shards.  Each client
    //    pipelines: it submits eagerly (the bounded queue blocks it when
    //    the server is saturated — backpressure instead of unbounded
    //    growth) and waits for the replies in submission order, so the
    //    measurement is server capacity, not one-in-flight round-trip
    //    latency, and the checksum accumulates deterministically.
    let clients = args.shards.max(1);
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        // Spread the remainder over the first `requests % clients`
        // threads so exactly `requests` predictions are served.
        let per_client = args.requests / clients + usize::from(c < args.requests % clients);
        let server = Arc::clone(&server);
        let plans = plans.clone();
        let batch = args.batch;
        handles.push(std::thread::spawn(move || {
            let plan_at = |i: usize| plans[(c + i * clients) % plans.len()].clone();
            if batch == 1 {
                let mut tickets = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    tickets.push(server.submit(plan_at(i)).unwrap());
                }
                let mut checksum = 0.0f64;
                for ticket in tickets {
                    checksum += ticket.wait().unwrap().runtime_secs;
                }
                checksum
            } else {
                // Batched mode: the shape of load the TCP gateway
                // produces when it coalesces a pipelined connection.
                let mut tickets = Vec::with_capacity(per_client.div_ceil(batch));
                let mut fired = 0;
                while fired < per_client {
                    let n = batch.min(per_client - fired);
                    let chunk: Vec<_> = (0..n).map(|j| plan_at(fired + j)).collect();
                    tickets.push(server.submit_batch(chunk).unwrap());
                    fired += n;
                }
                let mut checksum = 0.0f64;
                for ticket in tickets {
                    for prediction in ticket.wait().unwrap() {
                        checksum += prediction.runtime_secs;
                    }
                }
                checksum
            }
        }));
    }
    // Per-thread sums accumulate in submission order and the outer sum in
    // thread-index order, so the checksum is bit-reproducible.
    let checksum: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = started.elapsed();

    let snapshot = server.metrics();
    let throughput = args.requests as f64 / elapsed.as_secs_f64();
    println!("{snapshot}");
    println!("(end-to-end throughput {throughput:.0} q/s)");
    println!(
        "(prediction checksum {checksum:.6} bits {:016x})",
        checksum.to_bits()
    );

    println!();
    let report = BenchReport {
        config: BenchConfig {
            scale: args.scale.clone(),
            requests: args.requests,
            distinct_plans: args.distinct,
            shards: args.shards,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            batch: args.batch,
            kernel,
        },
        throughput_qps: throughput,
        prediction_checksum: checksum,
        prediction_checksum_bits: format!("{:016x}", checksum.to_bits()),
        metrics: snapshot,
    };
    zsdb_bench::write_json_report(&args.out, &report);
}
