//! Striped metric primitives and the named-metric [`Registry`].
//!
//! All three primitives ([`Counter`], [`Gauge`], [`Histogram`]) stripe
//! their storage per recording thread via the internal `ShardSet`: the record path is
//! a handful of `Relaxed` atomic operations on the thread's own shard, and
//! shards are merged only when a snapshot is taken.  Handles are cheap
//! `Arc` clones, so hot loops hold a handle instead of re-resolving names.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::stripe::ShardSet;

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds the value 0,
/// bucket `i` (1 ..= 64) holds values in `[2^(i-1), 2^i - 1]`, so 1 ns
/// lands in bucket 1 and `u64::MAX` in bucket 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log₂ bucket index for a histogram value (see [`HISTOGRAM_BUCKETS`]).
pub fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a log₂ bucket; `None` for the last bucket
/// (whose bound is `u64::MAX` — callers render it as `+Inf`).
pub fn bucket_upper_bound(bucket: usize) -> Option<u64> {
    match bucket {
        0 => Some(0),
        b if b < 64 => Some((1u64 << b) - 1),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

#[derive(Default, Debug)]
struct CounterShard(AtomicU64);

/// Monotonic counter; `add` is wait-free on the caller's own shard.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    shards: Arc<ShardSet<CounterShard>>,
}

impl Counter {
    /// Create an unregistered counter (most callers get one from a
    /// [`Registry`] instead).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.shards
            .with_local(|s| s.0.fetch_add(n, Ordering::Relaxed));
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

#[derive(Default, Debug)]
struct GaugeShard(AtomicI64);

/// Point-in-time signed gauge, stored as per-thread deltas so `inc` on one
/// thread and `dec` on another (the queue-depth pattern) still sum to the
/// true level at snapshot time.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    shards: Arc<ShardSet<GaugeShard>>,
}

impl Gauge {
    /// Create an unregistered gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.shards
            .with_local(|s| s.0.fetch_add(delta, Ordering::Relaxed));
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level: the sum of all per-thread deltas, clamped at zero
    /// from below only by the caller's own usage discipline (a transient
    /// negative read is possible mid-update and is reported as-is).
    pub fn value(&self) -> i64 {
        self.shards
            .fold(0i64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HistogramShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Lifetime minimum; `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
    /// Per-bucket exemplar trace id (0 = none); the most recently minted
    /// id recorded into each bucket.
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramShard {
    fn default() -> Self {
        HistogramShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Log₂-bucketed histogram of `u64` values (nanoseconds by convention),
/// with lifetime count / sum / min / max.  Recording is wait-free on the
/// caller's own shard.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    shards: Arc<ShardSet<HistogramShard>>,
}

/// Merged view of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`log2_bucket`] for the bucket layout).
    pub buckets: Vec<u64>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Smallest recorded value, if any value was recorded.
    pub min: Option<u64>,
    /// Largest recorded value (0 while empty).
    pub max: u64,
    /// Per-bucket exemplar trace id (0 = none): a recent trace whose
    /// value landed in that bucket, recorded via
    /// [`Histogram::record_with_exemplar`].  Plain [`Histogram::record`]
    /// calls leave exemplars untouched.
    pub exemplars: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values; `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

impl Histogram {
    /// Create an unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value.  Min/max use owner-only load-then-store, which is
    /// race-free because each shard has exactly one writer.
    pub fn record(&self, value: u64) {
        self.shards.with_local(|s| {
            s.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
            s.count.fetch_add(1, Ordering::Relaxed);
            s.sum.fetch_add(value, Ordering::Relaxed);
            if value < s.min.load(Ordering::Relaxed) {
                s.min.store(value, Ordering::Relaxed);
            }
            if value > s.max.load(Ordering::Relaxed) {
                s.max.store(value, Ordering::Relaxed);
            }
        });
    }

    /// [`Histogram::record`] that also stamps `trace_id` as the bucket's
    /// exemplar (ignored when 0), linking the latency bucket to a recent
    /// trace retrievable from the tracer or flight recorder.  Same
    /// wait-free cost as a plain record.
    pub fn record_with_exemplar(&self, value: u64, trace_id: u64) {
        self.shards.with_local(|s| {
            let bucket = log2_bucket(value);
            s.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            s.count.fetch_add(1, Ordering::Relaxed);
            s.sum.fetch_add(value, Ordering::Relaxed);
            if value < s.min.load(Ordering::Relaxed) {
                s.min.store(value, Ordering::Relaxed);
            }
            if value > s.max.load(Ordering::Relaxed) {
                s.max.store(value, Ordering::Relaxed);
            }
            if trace_id != 0 {
                s.exemplars[bucket].store(trace_id, Ordering::Relaxed);
            }
        });
    }

    /// Merge all shards into a snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot {
            buckets: vec![0u64; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: None,
            max: 0,
            exemplars: vec![0u64; HISTOGRAM_BUCKETS],
        };
        self.shards.fold((), |(), s| {
            for (m, b) in merged.buckets.iter_mut().zip(&s.buckets) {
                *m += b.load(Ordering::Relaxed);
            }
            merged.count += s.count.load(Ordering::Relaxed);
            merged.sum = merged.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            let shard_min = s.min.load(Ordering::Relaxed);
            if shard_min != u64::MAX {
                merged.min = Some(merged.min.map_or(shard_min, |m| m.min(shard_min)));
            }
            merged.max = merged.max.max(s.max.load(Ordering::Relaxed));
            // Trace ids are minted monotonically, so the largest id per
            // bucket is the most recent exemplar — and the merge stays
            // deterministic for a given shard state.
            for (m, e) in merged.exemplars.iter_mut().zip(&s.exemplars) {
                *m = (*m).max(e.load(Ordering::Relaxed));
            }
        });
        merged
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default, Debug)]
struct RegistryInner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Histogram)>>,
    /// Optional `# HELP` text per metric name (any kind).
    descriptions: Mutex<Vec<(String, String)>>,
}

/// A named-metric registry.  `counter`/`gauge`/`histogram` return (and on
/// first use create) a handle for the given name; hot paths keep the
/// handle.  Registration order is preserved in snapshots and exposition.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

/// Merged view of every metric in a [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge, in registration order.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, in registration order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, help)` for every described metric (see
    /// [`Registry::describe`]), in description order.
    pub descriptions: Vec<(String, String)>,
}

impl RegistrySnapshot {
    /// The `# HELP` text registered for `name`, if any.
    pub fn description(&self, name: &str) -> Option<&str> {
        self.descriptions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, help)| help.as_str())
    }
}

fn get_or_insert<T: Clone + Default>(slots: &Mutex<Vec<(String, T)>>, name: &str) -> T {
    let mut slots = slots.lock().expect("registry poisoned");
    if let Some((_, v)) = slots.iter().find(|(n, _)| n == name) {
        return v.clone();
    }
    let v = T::default();
    slots.push((name.to_string(), v.clone()));
    v
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Handle for the named counter (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.inner.counters, name)
    }

    /// Handle for the named gauge (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.inner.gauges, name)
    }

    /// Handle for the named histogram (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.inner.histograms, name)
    }

    /// Attach (or replace) `# HELP` text for the named metric; the
    /// exposition layer emits it ahead of the `# TYPE` line.
    pub fn describe(&self, name: &str, help: &str) {
        let mut descriptions = self.inner.descriptions.lock().expect("registry poisoned");
        if let Some((_, existing)) = descriptions.iter_mut().find(|(n, _)| n == name) {
            existing.clear();
            existing.push_str(help);
        } else {
            descriptions.push((name.to_string(), help.to_string()));
        }
    }

    /// Merge every metric into a snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.value()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), g.value()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        let descriptions = self
            .inner
            .descriptions
            .lock()
            .expect("registry poisoned")
            .clone();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            descriptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn log2_bucket_edges() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1); // 1 ns: first non-zero bucket
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket((1 << 20) - 1), 20);
        assert_eq!(log2_bucket(1 << 20), 21);
        assert_eq!(log2_bucket(u64::MAX), 64); // top bucket, last index
        assert_eq!(log2_bucket(u64::MAX / 2 + 1), 64);
        assert_eq!(log2_bucket(u64::MAX / 2), 63);
    }

    #[test]
    fn bucket_upper_bounds_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let b = log2_bucket(v);
            match bucket_upper_bound(b) {
                Some(hi) => assert!(v <= hi, "{v} above bound {hi} of bucket {b}"),
                None => assert_eq!(b, 64),
            }
            if b > 0 {
                let below = bucket_upper_bound(b - 1).unwrap();
                assert!(v > below, "{v} not above bucket {}'s bound {below}", b - 1);
            }
        }
    }

    #[test]
    fn histogram_snapshot_merges_count_sum_min_max() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().min, None);
        assert_eq!(h.snapshot().mean(), None);
        h.record(1);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, Some(1));
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[64], 1);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn striped_merge_is_deterministic_one_thread_equals_n_threads() {
        // The same multiset of samples must produce identical snapshot
        // totals whether recorded from 1 thread or from N.
        let samples: Vec<u64> = (0..1000)
            .map(|i| (i * i * 2654435761u64) % 1_000_000)
            .collect();

        let single = Histogram::new();
        for &s in &samples {
            single.record(s);
        }

        let striped = Histogram::new();
        let chunks: Vec<Vec<u64>> = samples.chunks(250).map(|c| c.to_vec()).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let h = striped.clone();
                std::thread::spawn(move || {
                    for s in chunk {
                        h.record(s);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }

        assert_eq!(single.snapshot(), striped.snapshot());
    }

    #[test]
    fn gauge_levels_survive_cross_thread_inc_dec() {
        let g = Gauge::new();
        g.add(10);
        let g2 = g.clone();
        std::thread::spawn(move || {
            for _ in 0..7 {
                g2.dec();
            }
        })
        .join()
        .unwrap();
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn registry_returns_the_same_underlying_metric_per_name() {
        let r = Registry::new();
        r.counter("requests").inc();
        r.counter("requests").add(2);
        assert_eq!(r.counter("requests").value(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("requests".to_string(), 3)]);
    }

    #[test]
    fn histogram_sum_and_mean_are_exact_not_bucket_derived() {
        // The sum is tracked as an exact atomic alongside the log₂
        // buckets: values that share a bucket must still contribute
        // their exact values, not the bucket's upper bound.
        let h = Histogram::new();
        h.record(5); // bucket 3 (le=7)
        h.record(6); // same bucket
        h.record(1000); // bucket 10 (le=1023)
        let snap = h.snapshot();
        assert_eq!(snap.sum, 1011, "exact sum, not 7 + 7 + 1023");
        assert_eq!(snap.mean(), Some(1011.0 / 3.0));
    }

    #[test]
    fn exact_sum_merges_across_threads() {
        let h = Histogram::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let expected: u64 = (0..4000u64).sum();
        assert_eq!(h.snapshot().sum, expected);
    }

    #[test]
    fn exemplars_link_buckets_to_the_latest_trace_id() {
        let h = Histogram::new();
        h.record_with_exemplar(5, 41); // bucket 3
        h.record_with_exemplar(6, 42); // same bucket: newer id wins
        h.record_with_exemplar(1000, 7); // bucket 10
        h.record(1000); // plain record never touches exemplars
        let snap = h.snapshot();
        assert_eq!(snap.exemplars[log2_bucket(5)], 42);
        assert_eq!(snap.exemplars[log2_bucket(1000)], 7);
        assert!(
            snap.exemplars
                .iter()
                .enumerate()
                .all(|(i, &e)| e == 0 || i == log2_bucket(5) || i == log2_bucket(1000)),
            "untouched buckets have no exemplar"
        );
    }

    #[test]
    fn exemplar_id_zero_is_ignored() {
        let h = Histogram::new();
        h.record_with_exemplar(5, 9);
        h.record_with_exemplar(5, 0); // untraced: keeps the old exemplar
        assert_eq!(h.snapshot().exemplars[log2_bucket(5)], 9);
        assert_eq!(h.snapshot().count, 2, "still counted as a sample");
    }

    #[test]
    fn registry_descriptions_round_trip_into_the_snapshot() {
        let r = Registry::new();
        r.counter("serve.requests_total").inc();
        r.describe("serve.requests_total", "Requests completed");
        r.describe("serve.requests_total", "Total requests completed");
        let snap = r.snapshot();
        assert_eq!(
            snap.description("serve.requests_total"),
            Some("Total requests completed"),
            "re-describe replaces"
        );
        assert_eq!(snap.description("unknown"), None);
        assert_eq!(snap.descriptions.len(), 1);
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        // 8 threads × 10_000 records with no shared lock on the record
        // path must still account for every sample.
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 80_000);
    }
}
