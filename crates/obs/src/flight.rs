//! Slow-request flight recorder: bounded rings of fully-materialized
//! traces with threshold- and percentile-triggered retention.
//!
//! The recorder answers the operator question "show me the worst
//! requests and why they were slow" without keeping every trace forever.
//! It holds two bounded rings:
//!
//! * a **recent** ring every offered trace passes through (normal
//!   requests age out of it quickly), and
//! * a **slow** ring that only retains anomalous requests — failed ones,
//!   ones over an absolute latency threshold, and ones in the slow tail
//!   of the live latency population (above a configured percentile) —
//!   so a burst of normal traffic cannot evict the interesting entries.
//!
//! The warm-path half, [`FlightRecorder::classify`], is wait-free and
//! performs **zero heap allocations**: it maintains the latency
//! population in a fixed array of log₂ buckets (plain shared atomics, no
//! per-thread lazy shard setup) and returns the retention decision.
//! Materializing a [`FlightRecord`] ([`FlightRecorder::offer`]) clones a
//! finished [`Trace`] and takes a ring lock — that is the cold path,
//! taken only for traced or retained requests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::metrics::{log2_bucket, HISTOGRAM_BUCKETS};
use crate::trace::Trace;

/// Tunables of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecorderConfig {
    /// Capacity of the slow ring (retained anomalous requests).
    pub slow_capacity: usize,
    /// Capacity of the recent ring (every offered trace, ages out fast).
    pub recent_capacity: usize,
    /// Absolute retention trigger: a request at or above this latency
    /// (nanoseconds) is kept.  `0` disables the threshold trigger.
    pub slow_threshold_ns: u64,
    /// Percentile retention trigger: a request whose latency bucket lies
    /// strictly above the population's percentile bucket is kept (e.g.
    /// `99.0` keeps roughly the slowest 1%).  `0.0` disables it.
    pub percentile: f64,
    /// Observations required before the percentile trigger arms, so a
    /// cold recorder does not flag its first requests as tail latency.
    pub min_samples: u64,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            slow_capacity: 64,
            recent_capacity: 128,
            slow_threshold_ns: 0,
            percentile: 99.0,
            min_samples: 100,
        }
    }
}

/// Why a request was (or was not) retained in the slow ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FlightClass {
    /// Unremarkable request: passes through the recent ring only.
    Normal,
    /// At or above the absolute [`FlightRecorderConfig::slow_threshold_ns`].
    SlowThreshold,
    /// In the slow tail of the live latency population (percentile
    /// trigger).
    SlowTail,
    /// The request failed; always retained.
    Failed,
}

impl FlightClass {
    /// Whether this class lands in the slow ring.
    pub fn retained(self) -> bool {
        !matches!(self, FlightClass::Normal)
    }

    /// Stable lower-case label (wire / exposition friendly).
    pub fn label(self) -> &'static str {
        match self {
            FlightClass::Normal => "normal",
            FlightClass::SlowThreshold => "slow_threshold",
            FlightClass::SlowTail => "slow_tail",
            FlightClass::Failed => "failed",
        }
    }
}

/// One retained flight: a fully-materialized trace plus its retention
/// class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FlightRecord {
    /// The finished per-stage trace.
    pub trace: Trace,
    /// Why the recorder kept (or aged) it.
    pub class: FlightClass,
}

#[derive(Debug)]
struct FlightInner {
    config: FlightRecorderConfig,
    enabled: AtomicBool,
    /// Live latency population, log₂-bucketed (same layout as
    /// [`crate::metrics::Histogram`]), in plain shared atomics so the
    /// warm path never allocates — not even on a thread's first call.
    population: [AtomicU64; HISTOGRAM_BUCKETS],
    observed: AtomicU64,
    slow: Mutex<VecDeque<FlightRecord>>,
    recent: Mutex<VecDeque<FlightRecord>>,
}

/// The slow-request flight recorder (see module docs).  Cloning shares
/// the recorder.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightRecorderConfig::default())
    }
}

impl FlightRecorder {
    /// Create a recorder with the given retention configuration (ring
    /// capacities are clamped to at least 1).
    pub fn new(mut config: FlightRecorderConfig) -> Self {
        config.slow_capacity = config.slow_capacity.max(1);
        config.recent_capacity = config.recent_capacity.max(1);
        FlightRecorder {
            inner: Arc::new(FlightInner {
                config,
                enabled: AtomicBool::new(true),
                population: std::array::from_fn(|_| AtomicU64::new(0)),
                observed: AtomicU64::new(0),
                slow: Mutex::new(VecDeque::with_capacity(config.slow_capacity)),
                recent: Mutex::new(VecDeque::with_capacity(config.recent_capacity)),
            }),
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &FlightRecorderConfig {
        &self.inner.config
    }

    /// Whether the recorder is currently on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn the recorder on or off.  While off, [`classify`] always
    /// answers [`FlightClass::Normal`] without touching the population
    /// and [`offer`] drops the trace.
    ///
    /// [`classify`]: FlightRecorder::classify
    /// [`offer`]: FlightRecorder::offer
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Number of latencies observed so far.
    pub fn observed(&self) -> u64 {
        self.inner.observed.load(Ordering::Relaxed)
    }

    /// Warm-path half: fold one request's latency into the live
    /// population and decide whether it should be retained.  Wait-free,
    /// zero heap allocations — safe to call on the zero-allocation
    /// serving path for every request.
    pub fn classify(&self, latency_ns: u64, ok: bool) -> FlightClass {
        if !self.enabled() {
            return FlightClass::Normal;
        }
        let inner = &*self.inner;
        let bucket = log2_bucket(latency_ns);
        inner.population[bucket].fetch_add(1, Ordering::Relaxed);
        let observed = inner.observed.fetch_add(1, Ordering::Relaxed) + 1;
        if !ok {
            return FlightClass::Failed;
        }
        let threshold = inner.config.slow_threshold_ns;
        if threshold > 0 && latency_ns >= threshold {
            return FlightClass::SlowThreshold;
        }
        if inner.config.percentile > 0.0 && observed >= inner.config.min_samples.max(1) {
            if let Some(tail_bucket) = self.percentile_bucket(observed) {
                if bucket > tail_bucket {
                    return FlightClass::SlowTail;
                }
            }
        }
        FlightClass::Normal
    }

    /// The log₂ bucket holding the configured percentile of the live
    /// population (`None` while the population is empty).
    fn percentile_bucket(&self, observed: u64) -> Option<usize> {
        if observed == 0 {
            return None;
        }
        let pct = self.inner.config.percentile.clamp(0.0, 100.0);
        // Rank of the percentile sample, 1-based; ceil so p100 = last.
        let rank = ((observed as f64) * pct / 100.0).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.inner.population.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some(i);
            }
        }
        Some(HISTOGRAM_BUCKETS - 1)
    }

    /// Cold-path half: materialize a finished trace into the rings.
    /// Every offered trace enters the recent ring; a retained class
    /// ([`FlightClass::retained`]) also enters the slow ring.  Allocates
    /// (trace clone + ring bookkeeping) — never call on the warm path.
    pub fn offer(&self, trace: Trace, class: FlightClass) {
        if !self.enabled() {
            return;
        }
        let record = FlightRecord { trace, class };
        if class.retained() {
            let mut slow = self.inner.slow.lock().expect("slow ring poisoned");
            if slow.len() == self.inner.config.slow_capacity {
                slow.pop_front();
            }
            slow.push_back(record.clone());
        }
        let mut recent = self.inner.recent.lock().expect("recent ring poisoned");
        if recent.len() == self.inner.config.recent_capacity {
            recent.pop_front();
        }
        recent.push_back(record);
    }

    /// The retained (slow/failed) records, worst first (longest total
    /// duration), up to `limit`.
    pub fn slow(&self, limit: usize) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .inner
            .slow
            .lock()
            .expect("slow ring poisoned")
            .iter()
            .cloned()
            .collect();
        records.sort_by_key(|r| std::cmp::Reverse((r.trace.total_ns, r.trace.seq)));
        records.truncate(limit);
        records
    }

    /// The most recently offered records (any class), newest first, up
    /// to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .inner
            .recent
            .lock()
            .expect("recent ring poisoned")
            .iter()
            .cloned()
            .collect();
        records.sort_by_key(|r| std::cmp::Reverse(r.trace.seq));
        records.truncate(limit);
        records
    }

    /// Look up a record by trace id — the slow ring first (retained
    /// entries outlive the recent ring), then the recent ring; the most
    /// recently finished match wins.
    pub fn find(&self, trace_id: u64) -> Option<FlightRecord> {
        let best_of = |ring: &Mutex<VecDeque<FlightRecord>>| {
            ring.lock()
                .expect("flight ring poisoned")
                .iter()
                .filter(|r| r.trace.id == trace_id)
                .max_by_key(|r| r.trace.seq)
                .cloned()
        };
        match (best_of(&self.inner.slow), best_of(&self.inner.recent)) {
            (Some(a), Some(b)) => Some(if a.trace.seq >= b.trace.seq { a } else { b }),
            (a, b) => a.or(b),
        }
    }

    /// Number of records currently retained in the slow ring.
    pub fn slow_len(&self) -> usize {
        self.inner.slow.lock().expect("slow ring poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn finished_trace(tracer: &Tracer, id: u64, sleep_ms: u64) -> Trace {
        let mut t = tracer.begin_with_id(id);
        if sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        }
        t.mark("work");
        tracer.finish(t)
    }

    #[test]
    fn threshold_trigger_retains_and_normal_requests_age_out() {
        let recorder = FlightRecorder::new(FlightRecorderConfig {
            slow_capacity: 4,
            recent_capacity: 2,
            slow_threshold_ns: 1_000_000,
            percentile: 0.0,
            min_samples: 0,
        });
        let tracer = Tracer::new(16);
        // One slow request, then a burst of fast ones.
        assert_eq!(
            recorder.classify(5_000_000, true),
            FlightClass::SlowThreshold
        );
        recorder.offer(finished_trace(&tracer, 1, 0), FlightClass::SlowThreshold);
        for i in 2..10u64 {
            assert_eq!(recorder.classify(10, true), FlightClass::Normal);
            recorder.offer(finished_trace(&tracer, i, 0), FlightClass::Normal);
        }
        // The fast burst evicted everything from the tiny recent ring,
        // but the slow request is still held in the slow ring.
        let kept = recorder.find(1).expect("slow request kept");
        assert_eq!(kept.class, FlightClass::SlowThreshold);
        assert_eq!(recorder.slow(10).len(), 1);
        assert!(recorder.recent(10).len() <= 2);
    }

    #[test]
    fn failures_are_always_retained() {
        let recorder = FlightRecorder::new(FlightRecorderConfig::default());
        assert_eq!(recorder.classify(1, false), FlightClass::Failed);
        let tracer = Tracer::new(4);
        recorder.offer(finished_trace(&tracer, 7, 0), FlightClass::Failed);
        assert_eq!(recorder.find(7).unwrap().class, FlightClass::Failed);
    }

    #[test]
    fn percentile_trigger_arms_after_min_samples_and_flags_the_tail() {
        let recorder = FlightRecorder::new(FlightRecorderConfig {
            slow_capacity: 8,
            recent_capacity: 8,
            slow_threshold_ns: 0,
            percentile: 99.0,
            min_samples: 100,
        });
        // Cold recorder: even an outlier is Normal before min_samples.
        assert_eq!(recorder.classify(1 << 40, true), FlightClass::Normal);
        // Build a tight population around ~1µs.
        for _ in 0..200 {
            recorder.classify(1_000, true);
        }
        // Far above every populated bucket: tail.
        assert_eq!(recorder.classify(1 << 40, true), FlightClass::SlowTail);
        // In the dominant bucket: normal.
        assert_eq!(recorder.classify(1_000, true), FlightClass::Normal);
    }

    #[test]
    fn slow_is_sorted_worst_first_and_bounded() {
        let recorder = FlightRecorder::new(FlightRecorderConfig {
            slow_capacity: 2,
            recent_capacity: 8,
            slow_threshold_ns: 1,
            percentile: 0.0,
            min_samples: 0,
        });
        let tracer = Tracer::new(16);
        recorder.offer(finished_trace(&tracer, 1, 1), FlightClass::SlowThreshold);
        recorder.offer(finished_trace(&tracer, 2, 5), FlightClass::SlowThreshold);
        recorder.offer(finished_trace(&tracer, 3, 2), FlightClass::SlowThreshold);
        let slow = recorder.slow(10);
        assert_eq!(slow.len(), 2, "slow ring is bounded");
        assert!(
            slow[0].trace.total_ns >= slow[1].trace.total_ns,
            "worst first"
        );
        assert!(
            slow.iter().all(|r| r.trace.id != 1),
            "oldest slow entry evicted from the slow ring"
        );
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = FlightRecorder::new(FlightRecorderConfig {
            slow_threshold_ns: 1,
            ..FlightRecorderConfig::default()
        });
        recorder.set_enabled(false);
        assert_eq!(recorder.classify(u64::MAX, false), FlightClass::Normal);
        let tracer = Tracer::new(4);
        recorder.offer(finished_trace(&tracer, 9, 0), FlightClass::Failed);
        assert!(recorder.find(9).is_none());
        assert_eq!(recorder.observed(), 0);
    }
}
