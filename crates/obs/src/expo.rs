//! Prometheus-style text exposition (text format version 0.0.4).
//!
//! Renders a [`RegistrySnapshot`] as the plain-text format every
//! Prometheus-compatible scraper understands: `# TYPE` headers, one
//! `name value` line per counter/gauge, and cumulative `_bucket{le=...}`
//! series plus `_sum`/`_count` per histogram.  Histogram bucket bounds
//! are the log₂ upper bounds from [`crate::metrics::bucket_upper_bound`],
//! with the final open bucket rendered as `+Inf`.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, RegistrySnapshot};

/// Rewrite a metric name into the Prometheus grammar: `[a-zA-Z_:]` then
/// `[a-zA-Z0-9_:]*`; every other character becomes `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Render the snapshot as Prometheus exposition text.
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, histogram) in &snapshot.histograms {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bucket, count) in histogram.buckets.iter().enumerate() {
            // Skip interior empty buckets to keep the output compact, but
            // always emit the +Inf bucket so the series is well-formed.
            cumulative += count;
            match bucket_upper_bound(bucket) {
                Some(le) => {
                    if *count > 0 {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", histogram.sum);
        let _ = writeln!(out, "{name}_count {}", histogram.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("serve.requests_total").add(3);
        r.gauge("serve.queue_depth").add(2);
        r.histogram("serve.latency_ns").record(5);
        r.histogram("serve.latency_ns").record(1000);

        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("serve_requests_total 3"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("# TYPE serve_latency_ns histogram"));
        // 5 is in bucket 3 (le = 7); 1000 in bucket 10 (le = 1023).
        assert!(text.contains("serve_latency_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("serve_latency_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("serve_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_latency_ns_sum 1005"));
        assert!(text.contains("serve_latency_ns_count 2"));
    }

    #[test]
    fn sanitizes_names_into_the_prometheus_grammar() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize("ok_name:42"), "ok_name:42");
    }

    #[test]
    fn empty_histogram_still_emits_inf_sum_and_count() {
        let r = Registry::new();
        r.histogram("h");
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("h_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("h_sum 0"));
        assert!(text.contains("h_count 0"));
    }
}
