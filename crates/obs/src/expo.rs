//! Prometheus-style text exposition (text format version 0.0.4).
//!
//! Renders a [`RegistrySnapshot`] as the plain-text format every
//! Prometheus-compatible scraper understands: optional `# HELP` lines
//! (from [`crate::metrics::Registry::describe`]), `# TYPE` headers, one
//! `name value` line per counter/gauge, and cumulative `_bucket{le=...}`
//! series plus `_sum`/`_count` per histogram.  Histogram bucket bounds
//! are the log₂ upper bounds from [`crate::metrics::bucket_upper_bound`],
//! with the final open bucket rendered as `+Inf`.  Exemplar trace ids
//! are part of [`crate::metrics::HistogramSnapshot`] but not of the
//! 0.0.4 text format, so they are not emitted here — scrape the JSON
//! snapshot (or the `Explain` wire op) to follow a bucket to its trace.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, RegistrySnapshot};

/// Rewrite a metric name into the Prometheus grammar: `[a-zA-Z_:]` then
/// `[a-zA-Z0-9_:]*`; every other character (including the `.` used by
/// the registries' dotted names) becomes `_`.  This is the one shared
/// sanitizer — every exposition call site routes names through it
/// instead of hand-replacing characters.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escape `# HELP` text per the exposition grammar (backslash and
/// newline).
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn write_headers(out: &mut String, snapshot: &RegistrySnapshot, raw_name: &str, kind: &str) {
    let name = sanitize_metric_name(raw_name);
    if let Some(help) = snapshot.description(raw_name) {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Render the snapshot as Prometheus exposition text.
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        write_headers(&mut out, snapshot, name, "counter");
        let _ = writeln!(out, "{} {value}", sanitize_metric_name(name));
    }
    for (name, value) in &snapshot.gauges {
        write_headers(&mut out, snapshot, name, "gauge");
        let _ = writeln!(out, "{} {value}", sanitize_metric_name(name));
    }
    for (raw_name, histogram) in &snapshot.histograms {
        write_headers(&mut out, snapshot, raw_name, "histogram");
        let name = sanitize_metric_name(raw_name);
        let mut cumulative = 0u64;
        for (bucket, count) in histogram.buckets.iter().enumerate() {
            // Skip interior empty buckets to keep the output compact, but
            // always emit the +Inf bucket so the series is well-formed.
            cumulative += count;
            match bucket_upper_bound(bucket) {
                Some(le) => {
                    if *count > 0 {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", histogram.sum);
        let _ = writeln!(out, "{name}_count {}", histogram.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("serve.requests_total").add(3);
        r.gauge("serve.queue_depth").add(2);
        r.histogram("serve.latency_ns").record(5);
        r.histogram("serve.latency_ns").record(1000);

        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("serve_requests_total 3"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("# TYPE serve_latency_ns histogram"));
        // 5 is in bucket 3 (le = 7); 1000 in bucket 10 (le = 1023).
        assert!(text.contains("serve_latency_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("serve_latency_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("serve_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_latency_ns_sum 1005"));
        assert!(text.contains("serve_latency_ns_count 2"));
    }

    #[test]
    fn sanitizes_names_into_the_prometheus_grammar() {
        assert_eq!(sanitize_metric_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("ok_name:42"), "ok_name:42");
    }

    #[test]
    fn empty_histogram_still_emits_inf_sum_and_count() {
        let r = Registry::new();
        r.histogram("h");
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("h_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("h_sum 0"));
        assert!(text.contains("h_count 0"));
    }

    #[test]
    fn described_metrics_emit_help_before_type() {
        let r = Registry::new();
        r.counter("serve.requests_total").inc();
        r.describe("serve.requests_total", "Total requests completed");
        r.gauge("undescribed");
        r.histogram("serve.latency_ns").record(1);
        r.describe("serve.latency_ns", "with\nnewline and back\\slash");

        let text = render_prometheus(&r.snapshot());
        let help_pos = text
            .find("# HELP serve_requests_total Total requests completed")
            .expect("HELP line present");
        let type_pos = text
            .find("# TYPE serve_requests_total counter")
            .expect("TYPE line present");
        assert!(help_pos < type_pos, "HELP precedes TYPE");
        assert!(
            !text.contains("# HELP undescribed"),
            "no HELP without a description"
        );
        assert!(
            text.contains("# HELP serve_latency_ns with\\nnewline and back\\\\slash"),
            "help text is escaped: {text}"
        );
    }
}
