//! Checkpoint span tracer with wire-propagatable trace ids.
//!
//! A trace decomposes one request into consecutive *stages*: the request
//! carries an [`ActiveTrace`] through the pipeline and each layer calls
//! [`ActiveTrace::mark`] when its stage completes.  `mark` is a
//! checkpoint — the stage's duration is the time since the previous
//! checkpoint — so the stages tile the whole interval from trace start to
//! the final mark and their sum equals the end-to-end latency by
//! construction (no gaps, no overlap).
//!
//! Trace ids are plain `u64`s so they fit in a frame-header extension and
//! can be minted on either side of the wire; id 0 means "untraced".
//! Finished traces land in per-thread bounded rings (same striping as the
//! metric shards), and the tracer doubles as a sink for standalone
//! structured [`TraceEvent`]s — drift scores, model swaps — that are not
//! tied to a single request.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::Serialize;

use crate::stripe::ShardSet;

/// One completed stage of a [`Trace`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceStage {
    /// Stage name (static so marking never allocates).
    pub name: &'static str,
    /// Stage duration in nanoseconds (time since the previous checkpoint).
    pub duration_ns: u64,
}

/// A finished request trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Trace {
    /// Request-scoped trace id (0 is reserved for "untraced").
    pub id: u64,
    /// End-to-end duration in nanoseconds: trace start to the last mark.
    pub total_ns: u64,
    /// The stages, in completion order; their durations sum to `total_ns`.
    pub stages: Vec<TraceStage>,
    /// Monotonic completion sequence number (for "most recent" queries).
    pub seq: u64,
}

impl Trace {
    /// Duration of the named stage, if present.
    pub fn stage_ns(&self, name: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.duration_ns)
    }
}

/// A standalone structured event (not tied to one request).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Event name.
    pub name: &'static str,
    /// Numeric payload (a drift score, a duration in seconds, ...).
    pub value: f64,
    /// Free-form context (model version, error text, ...).
    pub detail: String,
    /// Monotonic sequence number across all events of this tracer.
    pub seq: u64,
}

/// An in-flight trace.  Owned by the request and moved through the
/// pipeline with it; it holds no reference to the [`Tracer`], so it can
/// cross channel and thread boundaries freely.
#[derive(Debug)]
pub struct ActiveTrace {
    id: u64,
    started: Instant,
    last: Instant,
    stages: Vec<TraceStage>,
}

fn as_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl ActiveTrace {
    /// The trace id (propagated over the wire; never 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Close the current stage at the checkpoint `now = Instant::now()`:
    /// its duration is the time elapsed since the previous checkpoint
    /// (or since the trace started, for the first mark).
    pub fn mark(&mut self, stage: &'static str) {
        let now = Instant::now();
        self.stages.push(TraceStage {
            name: stage,
            duration_ns: as_ns(now.duration_since(self.last)),
        });
        self.last = now;
    }

    /// Nanoseconds since the trace started.
    pub fn elapsed_ns(&self) -> u64 {
        as_ns(self.started.elapsed())
    }

    /// The stages closed so far (for mid-flight inspection, e.g.
    /// assembling provenance before later layers mark their stages).
    pub fn stages(&self) -> &[TraceStage] {
        &self.stages
    }
}

#[derive(Debug, Default)]
struct TraceShard {
    finished: Mutex<VecDeque<Trace>>,
}

#[derive(Debug, Default)]
struct EventShard {
    events: Mutex<VecDeque<TraceEvent>>,
}

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    next_id: AtomicU64,
    seq: AtomicU64,
    /// Finished traces / events kept per recording thread.
    capacity: usize,
    traces: ShardSet<TraceShard>,
    events: ShardSet<EventShard>,
}

/// Trace collector (see module docs).  Cloning shares the collector.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Create a tracer keeping up to `capacity` finished traces (and as
    /// many events) per recording thread.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(true),
                next_id: AtomicU64::new(1),
                seq: AtomicU64::new(0),
                capacity: capacity.max(1),
                traces: ShardSet::default(),
                events: ShardSet::default(),
            }),
        }
    }

    /// Whether tracing is currently on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn tracing on or off.  Traces already in flight still finish.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Mint a fresh non-zero trace id (also usable by clients that want
    /// to pick the id before the trace starts server-side).
    pub fn next_id(&self) -> u64 {
        // fetch_add starting at 1 can only yield 0 again after 2^64 ids.
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Start a trace with a self-assigned id; `None` while disabled.
    pub fn begin(&self) -> Option<ActiveTrace> {
        if !self.enabled() {
            return None;
        }
        Some(self.begin_with_id(self.next_id()))
    }

    /// Start a trace under an externally supplied id (e.g. one carried in
    /// a frame header).  An id of 0 is replaced with a fresh id.
    pub fn begin_with_id(&self, id: u64) -> ActiveTrace {
        let id = if id == 0 { self.next_id() } else { id };
        let now = Instant::now();
        ActiveTrace {
            id,
            started: now,
            last: now,
            stages: Vec::with_capacity(8),
        }
    }

    /// Finish a trace: total time is start → last checkpoint, so the
    /// stage durations sum to it exactly.  The finished trace is stored
    /// in the calling thread's bounded ring and also returned, so callers
    /// can feed per-stage histograms without re-reading the ring.
    pub fn finish(&self, active: ActiveTrace) -> Trace {
        let total_ns = active.stages.iter().map(|s| s.duration_ns).sum();
        let trace = Trace {
            id: active.id,
            total_ns,
            stages: active.stages,
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
        };
        let capacity = self.inner.capacity;
        self.inner.traces.with_local(|shard| {
            let mut ring = shard.finished.lock().expect("trace ring poisoned");
            if ring.len() == capacity {
                ring.pop_front();
            }
            ring.push_back(trace.clone());
        });
        trace
    }

    /// Record a standalone structured event.
    pub fn event(&self, name: &'static str, value: f64, detail: impl Into<String>) {
        if !self.enabled() {
            return;
        }
        let event = TraceEvent {
            name,
            value,
            detail: detail.into(),
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
        };
        let capacity = self.inner.capacity;
        self.inner.events.with_local(|shard| {
            let mut ring = shard.events.lock().expect("event ring poisoned");
            if ring.len() == capacity {
                ring.pop_front();
            }
            ring.push_back(event);
        });
    }

    /// Look up a finished trace by id (most recent finish wins).
    pub fn find(&self, id: u64) -> Option<Trace> {
        self.inner.traces.fold(None::<Trace>, |best, shard| {
            let ring = shard.finished.lock().expect("trace ring poisoned");
            let candidate = ring.iter().filter(|t| t.id == id).max_by_key(|t| t.seq);
            match (best, candidate) {
                (Some(b), Some(c)) if c.seq > b.seq => Some(c.clone()),
                (None, Some(c)) => Some(c.clone()),
                (best, _) => best,
            }
        })
    }

    /// The most recently finished traces, newest first, up to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Trace> {
        let mut all = self.inner.traces.fold(Vec::new(), |mut acc, shard| {
            let ring = shard.finished.lock().expect("trace ring poisoned");
            acc.extend(ring.iter().cloned());
            acc
        });
        all.sort_by_key(|t| std::cmp::Reverse(t.seq));
        all.truncate(limit);
        all
    }

    /// The most recent structured events, newest first, up to `limit`.
    pub fn events(&self, limit: usize) -> Vec<TraceEvent> {
        let mut all = self.inner.events.fold(Vec::new(), |mut acc, shard| {
            let ring = shard.events.lock().expect("event ring poisoned");
            acc.extend(ring.iter().cloned());
            acc
        });
        all.sort_by_key(|t| std::cmp::Reverse(t.seq));
        all.truncate(limit);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stages_tile_the_trace_exactly() {
        let tracer = Tracer::new(16);
        let mut t = tracer.begin().expect("enabled by default");
        std::thread::sleep(Duration::from_millis(2));
        t.mark("queue_wait");
        std::thread::sleep(Duration::from_millis(1));
        t.mark("forward");
        let done = tracer.finish(t);
        assert_eq!(done.stages.len(), 2);
        let sum: u64 = done.stages.iter().map(|s| s.duration_ns).sum();
        assert_eq!(sum, done.total_ns, "checkpoints tile start..finish");
        assert!(done.stage_ns("queue_wait").unwrap() >= 2_000_000);
        assert!(done.stage_ns("forward").unwrap() >= 1_000_000);
    }

    #[test]
    fn disabled_tracer_returns_none_and_drops_events() {
        let tracer = Tracer::new(4);
        tracer.set_enabled(false);
        assert!(tracer.begin().is_none());
        tracer.event("swap", 1.0, "v2");
        assert!(tracer.events(10).is_empty());
    }

    #[test]
    fn external_ids_are_preserved_and_zero_is_replaced() {
        let tracer = Tracer::new(4);
        let t = tracer.begin_with_id(0xABCD);
        assert_eq!(t.id(), 0xABCD);
        let t0 = tracer.begin_with_id(0);
        assert_ne!(t0.id(), 0, "id 0 means untraced; must be replaced");
    }

    #[test]
    fn find_returns_the_trace_for_a_wire_id() {
        let tracer = Tracer::new(8);
        let mut t = tracer.begin_with_id(77);
        t.mark("respond");
        tracer.finish(t);
        let found = tracer.find(77).expect("stored");
        assert_eq!(found.id, 77);
        assert!(tracer.find(78).is_none());
    }

    #[test]
    fn finished_ring_is_bounded_per_thread() {
        let tracer = Tracer::new(3);
        for i in 0..10 {
            let mut t = tracer.begin_with_id(100 + i);
            t.mark("only");
            tracer.finish(t);
        }
        let recent = tracer.recent(100);
        assert_eq!(recent.len(), 3, "per-thread ring keeps the newest 3");
        assert_eq!(recent[0].id, 109);
    }

    #[test]
    fn find_returns_none_for_an_evicted_id_after_wraparound() {
        // Ring capacity 3: ids 1..=3 are evicted once 4..=6 finish.
        let tracer = Tracer::new(3);
        for id in 1..=6u64 {
            let mut t = tracer.begin_with_id(id);
            t.mark("only");
            tracer.finish(t);
        }
        for evicted in 1..=3u64 {
            assert!(
                tracer.find(evicted).is_none(),
                "evicted id {evicted} must answer None, not a stale entry"
            );
        }
        for kept in 4..=6u64 {
            assert_eq!(tracer.find(kept).expect("retained").id, kept);
        }
    }

    #[test]
    fn reused_id_after_wraparound_answers_the_newest_trace_only() {
        // The same wire id can legitimately recur (a client reusing its
        // id space).  After the older trace is evicted, find must answer
        // the newer one — and even while both are resident, the newest
        // (highest seq) wins.
        let tracer = Tracer::new(2);
        let mut first = tracer.begin_with_id(42);
        first.mark("old");
        tracer.finish(first);
        let mut second = tracer.begin_with_id(42);
        second.mark("new");
        tracer.finish(second);
        let found = tracer.find(42).expect("resident");
        assert_eq!(found.stages[0].name, "new", "newest finish wins");
        // One more finish evicts the older duplicate entirely.
        let mut third = tracer.begin_with_id(7);
        third.mark("filler");
        tracer.finish(third);
        let found = tracer.find(42).expect("newer entry still resident");
        assert_eq!(found.stages[0].name, "new");
    }

    #[test]
    fn recent_never_returns_evicted_traces_after_wraparound() {
        let tracer = Tracer::new(4);
        for id in 1..=20u64 {
            let mut t = tracer.begin_with_id(id);
            t.mark("only");
            tracer.finish(t);
        }
        let recent = tracer.recent(100);
        assert_eq!(recent.len(), 4);
        let ids: Vec<u64> = recent.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![20, 19, 18, 17], "newest first, no stale ids");
    }

    #[test]
    fn events_record_value_and_detail() {
        let tracer = Tracer::new(8);
        tracer.event("drift_score", 3.5, "median q-error");
        tracer.event("model_swap", 2.0, "promoted v2");
        let events = tracer.events(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "model_swap");
        assert_eq!(events[1].value, 3.5);
    }
}
