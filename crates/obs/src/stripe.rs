//! Per-thread striped shards.
//!
//! The classic metrics bottleneck is a single shared cell (a mutex-guarded
//! ring, a contended atomic) that every worker thread hits on every
//! request.  [`ShardSet`] removes the sharing: each *thread* that records
//! into a metric registers its own shard on first use, and from then on
//! writes only to that shard.  Readers merge all shards at snapshot time.
//!
//! The only lock in the structure is a registration/snapshot mutex that a
//! recording thread takes exactly once in its lifetime (to append its
//! shard); the steady-state record path touches a thread-local map and the
//! thread's own shard — no lock shared between worker threads.
//!
//! Shards of exited threads are kept: their accumulated values stay part
//! of every later snapshot, which is exactly what lifetime counters want.
//! The thread-local cache is keyed by a process-unique shard-set id, so
//! any number of independent metrics coexist.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide id source so every [`ShardSet`] gets a distinct
/// thread-local cache key.
static NEXT_SHARD_SET_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Map from shard-set id to this thread's shard (type-erased so one
    /// cache serves every shard type).  Entries live for the thread's
    /// lifetime; each is a single `Arc`.
    static LOCAL_SHARDS: RefCell<HashMap<u64, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// A growable set of per-thread shards of type `S`.
///
/// `S` is the per-thread storage (atomic counters, a ring, ...).  Writers
/// call [`ShardSet::with_local`] to reach *their* shard; readers call
/// [`ShardSet::fold`] to merge all shards.
#[derive(Debug)]
pub(crate) struct ShardSet<S> {
    id: u64,
    shards: Mutex<Vec<Arc<S>>>,
}

impl<S: Default + Send + Sync + 'static> Default for ShardSet<S> {
    fn default() -> Self {
        ShardSet {
            id: NEXT_SHARD_SET_ID.fetch_add(1, Ordering::Relaxed),
            shards: Mutex::new(Vec::new()),
        }
    }
}

impl<S: Default + Send + Sync + 'static> ShardSet<S> {
    /// Run `f` against the calling thread's shard, creating and
    /// registering it on first use.
    pub(crate) fn with_local<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        LOCAL_SHARDS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(entry) = cache.get(&self.id) {
                let shard = entry
                    .downcast_ref::<Arc<S>>()
                    .expect("shard-set id collision across types");
                return f(shard);
            }
            let shard = Arc::new(S::default());
            self.shards
                .lock()
                .expect("shard registration poisoned")
                .push(Arc::clone(&shard));
            let result = f(&shard);
            cache.insert(self.id, Box::new(shard));
            result
        })
    }

    /// Fold over every registered shard (including those of exited
    /// threads).  Holds the registration mutex for the duration, which is
    /// fine: snapshots are rare and registration is once per thread.
    pub(crate) fn fold<A>(&self, init: A, mut f: impl FnMut(A, &S) -> A) -> A {
        let shards = self.shards.lock().expect("shard registration poisoned");
        shards.iter().fold(init, |acc, s| f(acc, s))
    }

    /// Number of shards registered so far (== distinct recording threads).
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.shards
            .lock()
            .expect("shard registration poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Default)]
    struct Cell(AtomicU64);

    #[test]
    fn each_thread_gets_its_own_shard() {
        let set = Arc::new(ShardSet::<Cell>::default());
        set.with_local(|c| c.0.fetch_add(1, Ordering::Relaxed));
        set.with_local(|c| c.0.fetch_add(1, Ordering::Relaxed));
        assert_eq!(set.shard_count(), 1);

        let set2 = Arc::clone(&set);
        std::thread::spawn(move || {
            set2.with_local(|c| c.0.fetch_add(5, Ordering::Relaxed));
        })
        .join()
        .unwrap();

        assert_eq!(set.shard_count(), 2);
        let total = set.fold(0, |acc, c| acc + c.0.load(Ordering::Relaxed));
        assert_eq!(total, 7);
    }

    #[test]
    fn values_of_exited_threads_survive() {
        let set = Arc::new(ShardSet::<Cell>::default());
        for _ in 0..4 {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                set.with_local(|c| c.0.fetch_add(10, Ordering::Relaxed));
            })
            .join()
            .unwrap();
        }
        let total = set.fold(0, |acc, c| acc + c.0.load(Ordering::Relaxed));
        assert_eq!(total, 40);
    }

    #[test]
    fn two_shard_sets_do_not_collide_in_the_thread_local_cache() {
        let a = ShardSet::<Cell>::default();
        let b = ShardSet::<Cell>::default();
        a.with_local(|c| c.0.fetch_add(1, Ordering::Relaxed));
        b.with_local(|c| c.0.fetch_add(2, Ordering::Relaxed));
        assert_eq!(a.fold(0, |acc, c| acc + c.0.load(Ordering::Relaxed)), 1);
        assert_eq!(b.fold(0, |acc, c| acc + c.0.load(Ordering::Relaxed)), 2);
    }
}
