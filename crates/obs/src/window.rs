//! A striped bounded window of recent samples.
//!
//! Replacement for the old mutex-guarded `LatencyRing`: each recording
//! thread owns a private ring of the configured capacity and overwrites
//! its own oldest entries, so recording is a few `Relaxed` stores with no
//! lock shared between worker threads.  Snapshots merge every ring (the
//! union of each thread's most recent samples) plus lifetime count,
//! minimum and maximum, and report *occupancy* so a reader can tell a
//! cold, half-filled window from a saturated one.
//!
//! Because each thread keeps its own ring, the merged window holds up to
//! `capacity × recording-threads` samples — "the last `capacity` samples
//! per thread", which for percentile estimation is as good as a global
//! ring and much cheaper to maintain.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::stripe::ShardSet;

#[derive(Debug)]
struct WindowShard {
    capacity: usize,
    samples: Vec<AtomicU64>,
    /// Next write slot (owner-only).
    next: AtomicUsize,
    /// Lifetime number of samples recorded by this shard.
    count: AtomicU64,
    /// Lifetime minimum; `u64::MAX` while empty.
    min: AtomicU64,
    /// Lifetime maximum.
    max: AtomicU64,
}

impl WindowShard {
    fn with_capacity(capacity: usize) -> Self {
        WindowShard {
            capacity,
            samples: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            next: AtomicUsize::new(0),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

// ShardSet requires Default; thread the capacity through a wrapper that
// reads it from the owning window at construction time is not possible, so
// shards allocate lazily on first record instead.
#[derive(Debug, Default)]
struct LazyShard {
    inner: std::sync::OnceLock<WindowShard>,
}

/// Striped bounded sample window with lifetime min/max (see module docs).
#[derive(Clone, Debug)]
pub struct LatencyWindow {
    capacity: usize,
    shards: Arc<ShardSet<LazyShard>>,
}

/// Merged view of a [`LatencyWindow`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// The merged window samples, in no particular order.
    pub samples: Vec<u64>,
    /// Number of samples currently held (== `samples.len()`).
    pub occupancy: usize,
    /// Total slots across the rings of every recording thread so far.
    pub capacity: usize,
    /// Lifetime number of samples ever recorded.
    pub count: u64,
    /// Lifetime minimum sample, if anything was recorded.
    pub min: Option<u64>,
    /// Lifetime maximum sample (0 while empty).
    pub max: u64,
}

impl WindowSnapshot {
    /// True once every ring slot has been written at least once.
    pub fn is_saturated(&self) -> bool {
        self.capacity > 0 && self.occupancy == self.capacity
    }
}

impl LatencyWindow {
    /// Create a window keeping up to `capacity` samples per recording
    /// thread.  `capacity` must be non-zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        LatencyWindow {
            capacity,
            shards: Arc::new(ShardSet::default()),
        }
    }

    /// Per-thread ring capacity this window was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one sample into the calling thread's ring.
    pub fn record(&self, value: u64) {
        let capacity = self.capacity;
        self.shards.with_local(|lazy| {
            let shard = lazy
                .inner
                .get_or_init(|| WindowShard::with_capacity(capacity));
            let slot = shard.next.load(Ordering::Relaxed);
            shard.samples[slot].store(value, Ordering::Relaxed);
            shard
                .next
                .store((slot + 1) % shard.capacity, Ordering::Relaxed);
            shard.count.fetch_add(1, Ordering::Relaxed);
            if value < shard.min.load(Ordering::Relaxed) {
                shard.min.store(value, Ordering::Relaxed);
            }
            if value > shard.max.load(Ordering::Relaxed) {
                shard.max.store(value, Ordering::Relaxed);
            }
        });
    }

    /// Merge every thread's ring into a snapshot.
    pub fn snapshot(&self) -> WindowSnapshot {
        let mut snap = WindowSnapshot {
            samples: Vec::new(),
            occupancy: 0,
            capacity: 0,
            count: 0,
            min: None,
            max: 0,
        };
        self.shards.fold((), |(), lazy| {
            let Some(shard) = lazy.inner.get() else {
                return;
            };
            snap.capacity += shard.capacity;
            let recorded = shard.count.load(Ordering::Relaxed);
            snap.count += recorded;
            let held = (recorded as usize).min(shard.capacity);
            snap.occupancy += held;
            for slot in shard.samples.iter().take(held) {
                snap.samples.push(slot.load(Ordering::Relaxed));
            }
            let shard_min = shard.min.load(Ordering::Relaxed);
            if shard_min != u64::MAX {
                snap.min = Some(snap.min.map_or(shard_min, |m| m.min(shard_min)));
            }
            snap.max = snap.max.max(shard.max.load(Ordering::Relaxed));
        });
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_cold() {
        let w = LatencyWindow::new(8);
        let snap = w.snapshot();
        assert_eq!(snap.occupancy, 0);
        assert_eq!(snap.capacity, 0, "no thread recorded yet");
        assert_eq!(snap.min, None);
        assert!(!snap.is_saturated());
    }

    #[test]
    fn window_wraps_but_min_max_are_lifetime() {
        let w = LatencyWindow::new(4);
        // First lap: 100, 1, 200, 50.  Second lap overwrites with 7, 8.
        for v in [100u64, 1, 200, 50, 7, 8] {
            w.record(v);
        }
        let snap = w.snapshot();
        assert_eq!(snap.occupancy, 4, "window bounded at capacity");
        assert_eq!(snap.capacity, 4);
        assert!(snap.is_saturated());
        assert_eq!(snap.count, 6, "lifetime count keeps growing");
        // Ring now holds [7, 8, 200, 50]; 1 and 100 were overwritten...
        let mut held = snap.samples.clone();
        held.sort_unstable();
        assert_eq!(held, vec![7, 8, 50, 200]);
        // ...but the lifetime extremes remember them.
        assert_eq!(snap.min, Some(1));
        assert_eq!(snap.max, 200);
    }

    #[test]
    fn wraparound_lands_exactly_on_slot_zero() {
        let w = LatencyWindow::new(3);
        for v in 1..=3u64 {
            w.record(v);
        }
        assert!(w.snapshot().is_saturated());
        w.record(99); // overwrites slot 0 (value 1)
        let mut held = w.snapshot().samples;
        held.sort_unstable();
        assert_eq!(held, vec![2, 3, 99]);
    }

    #[test]
    fn partial_fill_reports_occupancy_below_capacity() {
        let w = LatencyWindow::new(16);
        w.record(5);
        w.record(9);
        let snap = w.snapshot();
        assert_eq!(snap.occupancy, 2);
        assert_eq!(snap.capacity, 16);
        assert!(!snap.is_saturated());
        assert_eq!(snap.samples.len(), 2);
    }

    #[test]
    fn multi_thread_rings_merge_and_extremes_combine() {
        let w = LatencyWindow::new(8);
        w.record(500);
        let w2 = w.clone();
        std::thread::spawn(move || {
            w2.record(1);
            w2.record(10_000);
        })
        .join()
        .unwrap();
        let snap = w.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.occupancy, 3);
        assert_eq!(snap.capacity, 16, "two rings of 8");
        assert_eq!(snap.min, Some(1));
        assert_eq!(snap.max, 10_000);
    }
}
