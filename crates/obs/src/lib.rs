//! # zsdb-obs — observability primitives for the serving stack
//!
//! The serving layers (worker pool, TCP gateway, adaptation loop) need
//! production-grade visibility — per-stage latency, queue depth, drift
//! events — without paying for it on the hot path.  This crate supplies
//! the primitives; the serving crates wire them in.
//!
//! * [`metrics`] — counters, gauges and log₂-bucketed histograms whose
//!   storage is **striped per recording thread** (the internal `stripe` module): recording
//!   is a few `Relaxed` atomics on the thread's own shard, with no lock
//!   shared between worker threads; shards merge only at snapshot time.
//!   [`Registry`] names them and snapshots everything at once.
//! * [`window`] — [`LatencyWindow`], a striped bounded window of recent
//!   samples (for percentiles) that also tracks lifetime min/max and
//!   reports occupancy, so a cold ring is distinguishable from a
//!   saturated one.
//! * [`trace`] — a checkpoint [`Tracer`]: a request carries an
//!   [`ActiveTrace`] through the pipeline, each layer `mark`s its stage,
//!   and the stage durations tile the end-to-end interval exactly.
//!   Trace ids are `u64`s sized to ride in a frame-header extension.
//! * [`expo`] — Prometheus text-format exposition of a registry
//!   snapshot, alongside whatever JSON export the caller already has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod metrics;
mod stripe;
pub mod trace;
pub mod window;

pub use expo::render_prometheus;
pub use metrics::{
    bucket_upper_bound, log2_bucket, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{ActiveTrace, Trace, TraceEvent, TraceStage, Tracer};
pub use window::{LatencyWindow, WindowSnapshot};
