//! # zsdb-obs — observability primitives for the serving stack
//!
//! The serving layers (worker pool, TCP gateway, adaptation loop) need
//! production-grade visibility — per-stage latency, queue depth, drift
//! events — without paying for it on the hot path.  This crate supplies
//! the primitives; the serving crates wire them in.
//!
//! * [`metrics`] — counters, gauges and log₂-bucketed histograms whose
//!   storage is **striped per recording thread** (the internal `stripe` module): recording
//!   is a few `Relaxed` atomics on the thread's own shard, with no lock
//!   shared between worker threads; shards merge only at snapshot time.
//!   [`Registry`] names them (with optional `# HELP` descriptions) and
//!   snapshots everything at once; histogram buckets carry exemplar
//!   trace ids linking a latency bucket to a recent request.
//! * [`window`] — [`LatencyWindow`], a striped bounded window of recent
//!   samples (for percentiles) that also tracks lifetime min/max and
//!   reports occupancy, so a cold ring is distinguishable from a
//!   saturated one.
//! * [`trace`] — a checkpoint [`Tracer`]: a request carries an
//!   [`ActiveTrace`] through the pipeline, each layer `mark`s its stage,
//!   and the stage durations tile the end-to-end interval exactly.
//!   Trace ids are `u64`s sized to ride in a frame-header extension.
//! * [`flight`] — a [`FlightRecorder`]: bounded rings of
//!   fully-materialized traces with threshold- and percentile-triggered
//!   retention, so slow and failed requests are kept for post-hoc
//!   diagnosis while normal ones age out.
//! * [`slo`] — an [`SloTracker`]: rolling multi-window good/bad counters
//!   with burn-rate computation against a configured latency objective.
//! * [`expo`] — Prometheus text-format exposition of a registry
//!   snapshot (HELP + TYPE headers, shared name sanitizer), alongside
//!   whatever JSON export the caller already has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod flight;
pub mod metrics;
pub mod slo;
mod stripe;
pub mod trace;
pub mod window;

pub use expo::{render_prometheus, sanitize_metric_name};
pub use flight::{FlightClass, FlightRecord, FlightRecorder, FlightRecorderConfig};
pub use metrics::{
    bucket_upper_bound, log2_bucket, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use slo::{SloConfig, SloSnapshot, SloTracker, SloWindowSnapshot};
pub use trace::{ActiveTrace, Trace, TraceEvent, TraceStage, Tracer};
pub use window::{LatencyWindow, WindowSnapshot};
