//! SLO tracking: rolling multi-window good/bad counters with burn-rate
//! computation against a configured latency/availability objective.
//!
//! A request is **good** when it completed successfully within the
//! latency objective, **bad** otherwise.  The tracker keeps one rolling
//! window per configured duration (classic multi-window burn-rate
//! alerting: a short window catches fast burns, a long window slow
//! ones).  Each window is a fixed array of epoch-tagged slots — the
//! record path is a handful of relaxed atomics with **zero heap
//! allocations**, safe on the zero-allocation serving path.
//!
//! The *burn rate* of a window is its error rate divided by the error
//! budget `1 - target`: a burn rate of 1.0 spends the budget exactly at
//! the sustainable pace, 10.0 spends it ten times too fast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

/// Tunables of an [`SloTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Latency objective in nanoseconds: a slower (or failed) request is
    /// bad.
    pub latency_objective_ns: u64,
    /// Target good fraction (e.g. `0.999` for "three nines"); the error
    /// budget is `1 - target`.  Must be below 1.0 for burn rates to be
    /// meaningful; a target of 1.0 is clamped internally.
    pub target: f64,
    /// Rolling window durations, one tracked window each.
    pub windows: Vec<Duration>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_objective_ns: 50_000_000, // 50 ms
            target: 0.999,
            windows: vec![Duration::from_secs(60), Duration::from_secs(3600)],
        }
    }
}

/// Slots per rolling window: finer slots make the window edge smoother
/// at the cost of a slightly longer snapshot scan.
const SLOTS_PER_WINDOW: usize = 60;

/// One rolling window's counters over one time slot.
#[derive(Debug)]
struct Slot {
    /// Which epoch (slot-width-sized interval since tracker start) these
    /// counters belong to; stale slots are lazily zeroed on first touch.
    epoch: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
}

#[derive(Debug)]
struct RollingWindow {
    duration: Duration,
    slot_nanos: u64,
    slots: Vec<Slot>,
}

impl RollingWindow {
    fn new(duration: Duration) -> Self {
        let duration = duration.max(Duration::from_millis(1));
        let slot_nanos = (duration.as_nanos() as u64 / SLOTS_PER_WINDOW as u64).max(1);
        RollingWindow {
            duration,
            slot_nanos,
            slots: (0..SLOTS_PER_WINDOW)
                .map(|_| Slot {
                    epoch: AtomicU64::new(u64::MAX),
                    good: AtomicU64::new(0),
                    bad: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Fold one observation into the slot owning `now_ns`.  Wait-free
    /// apart from a benign race when a slot rolls over to a new epoch:
    /// the CAS winner zeroes the counters, and an observation racing the
    /// zeroing can be lost or double-kept for that one slot — bounded,
    /// self-healing noise in a rolling estimate, never a wedged state.
    fn record(&self, now_ns: u64, good: bool) {
        let epoch = now_ns / self.slot_nanos;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let seen = slot.epoch.load(Ordering::Relaxed);
        if seen != epoch
            && slot
                .epoch
                .compare_exchange(seen, epoch, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            slot.good.store(0, Ordering::Relaxed);
            slot.bad.store(0, Ordering::Relaxed);
        }
        if good {
            slot.good.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.bad.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sum the slots still inside the window ending at `now_ns`.
    fn totals(&self, now_ns: u64) -> (u64, u64) {
        let current = now_ns / self.slot_nanos;
        let oldest = current.saturating_sub(self.slots.len() as u64 - 1);
        let mut good = 0u64;
        let mut bad = 0u64;
        for slot in &self.slots {
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if epoch != u64::MAX && epoch >= oldest && epoch <= current {
                good += slot.good.load(Ordering::Relaxed);
                bad += slot.bad.load(Ordering::Relaxed);
            }
        }
        (good, bad)
    }
}

/// Point-in-time view of one rolling window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloWindowSnapshot {
    /// Window length in seconds.
    pub window_secs: u64,
    /// Requests that met the objective inside the window.
    pub good: u64,
    /// Requests that missed it (too slow or failed).
    pub bad: u64,
    /// `bad / (good + bad)`; 0 while the window is empty.
    pub error_rate: f64,
    /// `error_rate / (1 - target)` — 1.0 spends the error budget exactly
    /// at the sustainable pace.
    pub burn_rate: f64,
}

/// Point-in-time view of the whole tracker.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloSnapshot {
    /// The configured latency objective in nanoseconds.
    pub latency_objective_ns: u64,
    /// The configured target good fraction.
    pub target: f64,
    /// One entry per configured window, in configuration order.
    pub windows: Vec<SloWindowSnapshot>,
}

#[derive(Debug)]
struct SloInner {
    latency_objective_ns: u64,
    target: f64,
    started: Instant,
    windows: Vec<RollingWindow>,
}

/// Rolling multi-window SLO tracker (see module docs).  Cloning shares
/// the tracker.
#[derive(Debug, Clone)]
pub struct SloTracker {
    inner: Arc<SloInner>,
}

impl Default for SloTracker {
    fn default() -> Self {
        SloTracker::new(SloConfig::default())
    }
}

impl SloTracker {
    /// Create a tracker; all window storage is allocated here, so
    /// [`SloTracker::record`] never allocates.
    pub fn new(config: SloConfig) -> Self {
        let windows = if config.windows.is_empty() {
            SloConfig::default().windows
        } else {
            config.windows
        };
        SloTracker {
            inner: Arc::new(SloInner {
                latency_objective_ns: config.latency_objective_ns,
                // Clamp so the error budget stays positive and burn
                // rates stay finite.
                target: config.target.clamp(0.0, 1.0 - 1e-9),
                started: Instant::now(),
                windows: windows.into_iter().map(RollingWindow::new).collect(),
            }),
        }
    }

    /// The configured latency objective in nanoseconds.
    pub fn latency_objective_ns(&self) -> u64 {
        self.inner.latency_objective_ns
    }

    /// Fold one request into every window: good iff it completed
    /// successfully within the latency objective.  Wait-free, zero heap
    /// allocations.
    pub fn record(&self, latency_ns: u64, ok: bool) {
        let good = ok && latency_ns <= self.inner.latency_objective_ns;
        let now_ns = u64::try_from(self.inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        for window in &self.inner.windows {
            window.record(now_ns, good);
        }
    }

    /// Snapshot every window's counters and burn rates.
    pub fn snapshot(&self) -> SloSnapshot {
        let now_ns = u64::try_from(self.inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let budget = (1.0 - self.inner.target).max(1e-12);
        let windows = self
            .inner
            .windows
            .iter()
            .map(|w| {
                let (good, bad) = w.totals(now_ns);
                let total = good + bad;
                let error_rate = if total == 0 {
                    0.0
                } else {
                    bad as f64 / total as f64
                };
                SloWindowSnapshot {
                    window_secs: w.duration.as_secs(),
                    good,
                    bad,
                    error_rate,
                    burn_rate: error_rate / budget,
                }
            })
            .collect();
        SloSnapshot {
            latency_objective_ns: self.inner.latency_objective_ns,
            target: self.inner.target,
            windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(objective_ns: u64, target: f64) -> SloTracker {
        SloTracker::new(SloConfig {
            latency_objective_ns: objective_ns,
            target,
            windows: vec![Duration::from_secs(60), Duration::from_secs(3600)],
        })
    }

    #[test]
    fn good_and_bad_split_on_the_latency_objective() {
        let slo = tracker(1_000_000, 0.99);
        slo.record(500_000, true); // fast: good
        slo.record(2_000_000, true); // slow: bad
        slo.record(100, false); // failed: bad even though fast
        let snap = slo.snapshot();
        assert_eq!(snap.windows.len(), 2);
        for w in &snap.windows {
            assert_eq!(w.good, 1);
            assert_eq!(w.bad, 2);
            assert!((w.error_rate - 2.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn burn_rate_is_error_rate_over_budget() {
        let slo = tracker(1_000, 0.99); // 1% error budget
        for _ in 0..90 {
            slo.record(10, true);
        }
        for _ in 0..10 {
            slo.record(10_000, true);
        }
        let snap = slo.snapshot();
        let w = &snap.windows[0];
        assert!((w.error_rate - 0.10).abs() < 1e-12);
        // 10% errors against a 1% budget burns 10x too fast.
        assert!((w.burn_rate - 10.0).abs() < 1e-6);
    }

    #[test]
    fn empty_windows_report_zero_rates() {
        let snap = tracker(1_000, 0.999).snapshot();
        for w in &snap.windows {
            assert_eq!(w.good + w.bad, 0);
            assert_eq!(w.error_rate, 0.0);
            assert_eq!(w.burn_rate, 0.0);
        }
    }

    #[test]
    fn a_target_of_one_still_yields_finite_burn_rates() {
        let slo = SloTracker::new(SloConfig {
            latency_objective_ns: 1,
            target: 1.0,
            windows: vec![Duration::from_secs(1)],
        });
        slo.record(100, true); // bad: over the 1ns objective
        let snap = slo.snapshot();
        assert!(snap.windows[0].burn_rate.is_finite());
        assert!(snap.target < 1.0);
    }

    #[test]
    fn short_windows_roll_their_slots_over() {
        // 60ms window → 1ms slots; record, wait past the window, verify
        // the old counts fall out of the rolling view.
        let slo = SloTracker::new(SloConfig {
            latency_objective_ns: u64::MAX,
            target: 0.9,
            windows: vec![Duration::from_millis(60)],
        });
        for _ in 0..50 {
            slo.record(1, true);
        }
        assert_eq!(slo.snapshot().windows[0].good, 50);
        std::thread::sleep(Duration::from_millis(150));
        let after = slo.snapshot();
        assert_eq!(
            after.windows[0].good + after.windows[0].bad,
            0,
            "counts age out of the rolling window"
        );
    }

    #[test]
    fn concurrent_recording_is_accounted_in_a_long_window() {
        let slo = tracker(u64::MAX, 0.999);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let slo = slo.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        slo.record(1, true);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // The 1-hour window cannot have rolled over mid-test.
        assert_eq!(slo.snapshot().windows[1].good, 4000);
    }
}
