//! Property coverage for the [`FlightRecorder`] retention invariants:
//! rings stay bounded, the slow ring only ever holds retained classes,
//! failures and over-threshold requests are always retained, and
//! retained entries survive bursts of normal traffic that flush the
//! recent ring.

use proptest::prelude::*;
use zsdb_obs::{FlightClass, FlightRecorder, FlightRecorderConfig, Tracer};

/// Deterministic SplitMix64 so one sampled seed expands into a whole
/// request sequence.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn finished(tracer: &Tracer, id: u64) -> zsdb_obs::Trace {
    let mut t = tracer.begin_with_id(id);
    t.mark("work");
    tracer.finish(t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rings_stay_bounded_and_slow_holds_only_retained_classes(
        seed in 0u64..u64::MAX,
        slow_capacity in 1usize..8,
        recent_capacity in 1usize..8,
        requests in 1u64..200,
    ) {
        let mut gen = Gen(seed);
        let threshold = 1_000_000u64;
        let recorder = FlightRecorder::new(FlightRecorderConfig {
            slow_capacity,
            recent_capacity,
            slow_threshold_ns: threshold,
            percentile: 99.0,
            min_samples: 50,
        });
        let tracer = Tracer::new(512);
        for id in 1..=requests {
            let latency = gen.below(2_000_000); // half below, half above
            let ok = gen.below(10) != 0; // ~10% failures
            let class = recorder.classify(latency, ok);
            // Hard classification guarantees, independent of population.
            if !ok {
                prop_assert_eq!(class, FlightClass::Failed);
            } else if latency >= threshold {
                prop_assert_eq!(class, FlightClass::SlowThreshold);
            }
            recorder.offer(finished(&tracer, id), class);
            prop_assert!(recorder.slow_len() <= slow_capacity);
            prop_assert!(recorder.recent(usize::MAX).len() <= recent_capacity);
        }
        for record in recorder.slow(usize::MAX) {
            prop_assert!(
                record.class.retained(),
                "slow ring held a {:?}", record.class
            );
            // Every retained record is findable by its trace id.
            prop_assert!(recorder.find(record.trace.id).is_some());
        }
        // slow() is sorted worst (longest) first.
        let slow = recorder.slow(usize::MAX);
        for pair in slow.windows(2) {
            prop_assert!(pair[0].trace.total_ns >= pair[1].trace.total_ns);
        }
        prop_assert_eq!(recorder.observed(), requests);
    }

    #[test]
    fn retained_entries_survive_normal_bursts_that_flush_the_recent_ring(
        seed in 0u64..u64::MAX,
        burst in 10u64..100,
    ) {
        let mut gen = Gen(seed);
        let recorder = FlightRecorder::new(FlightRecorderConfig {
            slow_capacity: 8,
            recent_capacity: 4,
            slow_threshold_ns: 1_000,
            percentile: 0.0,
            min_samples: 0,
        });
        let tracer = Tracer::new(512);
        // One slow request first...
        let class = recorder.classify(50_000, true);
        prop_assert_eq!(class, FlightClass::SlowThreshold);
        recorder.offer(finished(&tracer, 1), class);
        // ...then a burst of fast ones, far larger than the recent ring.
        for id in 2..2 + burst {
            let latency = gen.below(1_000); // strictly under the threshold
            let class = recorder.classify(latency, true);
            prop_assert_eq!(class, FlightClass::Normal);
            recorder.offer(finished(&tracer, id), class);
        }
        // The slow request aged out of recent but is retained in slow.
        let kept = recorder.find(1);
        prop_assert!(kept.is_some(), "retained entry evicted by normal burst");
        prop_assert_eq!(kept.unwrap().class, FlightClass::SlowThreshold);
        // And none of the normal requests leaked into the slow ring.
        prop_assert_eq!(recorder.slow_len(), 1);
    }
}
