//! Cross-estimator accuracy test: the histogram and sampling estimators
//! must track the exact (brute-force) estimator within bounded q-error on
//! a small generated database.

use zsdb_cardest::{CardinalityEstimator, ExactEstimator, HistogramEstimator, SamplingEstimator};
use zsdb_catalog::{GeneratorConfig, SchemaGenerator};
use zsdb_query::{WorkloadGenerator, WorkloadSpec};
use zsdb_storage::Database;

/// Q-error with a floor of one row, so empty results are not penalised
/// infinitely.
fn q_error(estimate: f64, truth: f64) -> f64 {
    let e = estimate.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

struct Comparison {
    qs: Vec<f64>,
}

impl Comparison {
    /// Collect per-table cardinality q-errors of `estimator` vs. the exact
    /// estimator over a generated workload.
    fn collect<E: CardinalityEstimator>(
        db: &Database,
        exact: &ExactEstimator,
        estimator: &E,
        seed: u64,
    ) -> Self {
        let queries = WorkloadGenerator::new(WorkloadSpec {
            max_tables: 2,
            ..WorkloadSpec::default()
        })
        .generate(db.catalog(), 40, seed);
        let mut qs = Vec::new();
        for query in &queries {
            for &table in &query.tables {
                let truth = exact.table_cardinality(table, &query.predicates);
                let estimate = estimator.table_cardinality(table, &query.predicates);
                assert!(
                    estimate.is_finite() && estimate >= 0.0,
                    "estimate must be a finite non-negative count, got {estimate}"
                );
                qs.push(q_error(estimate, truth));
            }
        }
        assert!(!qs.is_empty(), "workload produced no table cardinalities");
        Comparison { qs }
    }

    fn median(&self) -> f64 {
        let mut sorted = self.qs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }

    fn fraction_within(&self, bound: f64) -> f64 {
        self.qs.iter().filter(|&&q| q <= bound).count() as f64 / self.qs.len() as f64
    }
}

fn small_generated_db() -> Database {
    let schema = SchemaGenerator::new(GeneratorConfig::tiny()).generate("cmp_db", 21);
    Database::generate(schema, 22)
}

#[test]
fn histogram_estimator_has_bounded_qerror() {
    let db = small_generated_db();
    let exact = ExactEstimator::build(&db);
    let histogram = HistogramEstimator::build(&db, 5);
    let cmp = Comparison::collect(&db, &exact, &histogram, 77);
    let median = cmp.median();
    assert!(median < 1.5, "histogram median q-error too high: {median}");
    let within10 = cmp.fraction_within(10.0);
    assert!(
        within10 >= 0.9,
        "only {:.0}% of histogram estimates within q-error 10",
        within10 * 100.0
    );
}

#[test]
fn sampling_estimator_has_bounded_qerror() {
    let db = small_generated_db();
    let exact = ExactEstimator::build(&db);
    let sampling = SamplingEstimator::build(&db, 1_000, 5);
    let cmp = Comparison::collect(&db, &exact, &sampling, 77);
    let median = cmp.median();
    assert!(median < 1.5, "sampling median q-error too high: {median}");
    let within10 = cmp.fraction_within(10.0);
    assert!(
        within10 >= 0.9,
        "only {:.0}% of sampling estimates within q-error 10",
        within10 * 100.0
    );
}

#[test]
fn sampling_beats_histograms_on_correlated_conjunctions() {
    // Sampling sees the joint distribution of conjunctions on one table,
    // histograms multiply marginals (independence assumption).  Over the
    // whole workload sampling must therefore be at least as accurate in
    // aggregate.
    let db = small_generated_db();
    let exact = ExactEstimator::build(&db);
    let histogram = HistogramEstimator::build(&db, 5);
    let sampling = SamplingEstimator::build(&db, 2_000, 5);
    let hist_cmp = Comparison::collect(&db, &exact, &histogram, 123);
    let samp_cmp = Comparison::collect(&db, &exact, &sampling, 123);
    let (h, s) = (hist_cmp.median(), samp_cmp.median());
    assert!(
        s <= h * 1.25,
        "sampling median q-error {s} should not trail histogram {h} by much"
    );
}

#[test]
fn exact_estimator_is_its_own_ground_truth() {
    let db = small_generated_db();
    let exact = ExactEstimator::build(&db);
    let cmp = Comparison::collect(&db, &exact, &exact, 99);
    assert!(cmp.qs.iter().all(|&q| q == 1.0));
}
