//! Sampling-based selectivity estimation.
//!
//! Evaluates predicates directly on a uniform row sample of each base
//! table.  More accurate than histograms for correlated conjunctions on the
//! same table (it sees the joint distribution), at the price of keeping the
//! sample around — the classical trade-off of sampling-based data-driven
//! models.

use crate::estimator::CardinalityEstimator;
use zsdb_catalog::{SchemaCatalog, TableId};
use zsdb_query::Predicate;
use zsdb_storage::{Database, TableSample};

/// Per-table row samples used to evaluate predicate conjunctions.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    catalog: SchemaCatalog,
    samples: Vec<TableSample>,
    /// The sampled rows' values are read from the owned copies below so the
    /// estimator does not borrow the database.
    tables: Vec<zsdb_storage::TableData>,
}

impl SamplingEstimator {
    /// Build a sampling estimator with `sample_size` rows per table.
    pub fn build(db: &Database, sample_size: usize, seed: u64) -> Self {
        let catalog = db.catalog().clone();
        let mut samples = Vec::with_capacity(catalog.num_tables());
        let mut tables = Vec::with_capacity(catalog.num_tables());
        for (tid, _) in catalog.iter_tables() {
            let data = db.table_data(tid);
            samples.push(TableSample::draw(data, sample_size, seed ^ tid.0 as u64));
            tables.push(data.clone());
        }
        SamplingEstimator {
            catalog,
            samples,
            tables,
        }
    }

    /// Fraction of sampled rows of `table` satisfying *all* `predicates`
    /// that reference it (joint selectivity, no independence assumption).
    pub fn conjunctive_selectivity(&self, table: TableId, predicates: &[Predicate]) -> f64 {
        let relevant: Vec<&Predicate> = predicates
            .iter()
            .filter(|p| p.column.table == table)
            .collect();
        if relevant.is_empty() {
            return 1.0;
        }
        let sample = &self.samples[table.index()];
        if sample.is_empty() {
            return 0.0;
        }
        let data = &self.tables[table.index()];
        let matching = sample
            .rows()
            .iter()
            .filter(|&&row| {
                relevant
                    .iter()
                    .all(|p| p.matches(data.value(row as usize, p.column.column)))
            })
            .count();
        matching as f64 / sample.len() as f64
    }
}

impl CardinalityEstimator for SamplingEstimator {
    fn catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        self.conjunctive_selectivity(predicate.column.table, std::slice::from_ref(predicate))
    }

    fn table_cardinality(&self, table: TableId, predicates: &[Predicate]) -> f64 {
        let base = self.catalog.table(table).num_tuples as f64;
        base * self.conjunctive_selectivity(table, predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{presets, Value};
    use zsdb_query::{CmpOp, Predicate};

    fn db() -> Database {
        Database::generate(presets::imdb_like(0.02), 11)
    }

    #[test]
    fn single_predicate_matches_brute_force() {
        let db = db();
        let est = SamplingEstimator::build(&db, 2_000, 3);
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let p = Predicate::new(year, CmpOp::Lt, Value::Int(1980));
        let column = db.table_data(year.table).column(year.column);
        let true_sel = (0..column.len())
            .filter(|&r| p.matches(column.get(r)))
            .count() as f64
            / column.len() as f64;
        let est_sel = est.predicate_selectivity(&p);
        assert!(
            (est_sel - true_sel).abs() < 0.08,
            "estimated {est_sel}, true {true_sel}"
        );
    }

    #[test]
    fn conjunctions_use_joint_distribution() {
        let db = db();
        let est = SamplingEstimator::build(&db, 2_000, 3);
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        // Contradictory predicates: year < 1950 AND year > 2000.
        let preds = [
            Predicate::new(year, CmpOp::Lt, Value::Int(1950)),
            Predicate::new(year, CmpOp::Gt, Value::Int(2000)),
        ];
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let sel = est.conjunctive_selectivity(title, &preds);
        assert_eq!(sel, 0.0, "contradictory conjunction must have zero support");
    }

    #[test]
    fn tables_without_predicates_have_selectivity_one() {
        let db = db();
        let est = SamplingEstimator::build(&db, 500, 3);
        let (mc, mc_meta) = db.catalog().table_by_name("movie_companies").unwrap();
        assert_eq!(est.conjunctive_selectivity(mc, &[]), 1.0);
        assert!((est.table_cardinality(mc, &[]) - mc_meta.num_tuples as f64).abs() < 1e-9);
    }
}
