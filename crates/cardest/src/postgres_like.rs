//! Catalog-statistics estimator in the style of the PostgreSQL planner.
//!
//! Uses only the coarse statistics stored in the catalog (distinct counts,
//! min/max, null fractions) under uniformity and independence assumptions.
//! This is the workspace stand-in for "cardinalities estimated by the
//! Postgres optimizer" used by the paper's `Zero-Shot (Est. Cardinalities)`
//! variant and by the classical optimizer cost model.

use crate::estimator::CardinalityEstimator;
use zsdb_catalog::{SchemaCatalog, Value};
use zsdb_query::{CmpOp, Predicate};

/// Default selectivity assumed when nothing better is known (PostgreSQL
/// uses 0.005 for generic operators and 1/3 for ranges; we keep it simple).
const DEFAULT_SELECTIVITY: f64 = 0.33;

/// Classical catalog-statistics cardinality estimator.
#[derive(Debug, Clone)]
pub struct PostgresLikeEstimator {
    catalog: SchemaCatalog,
}

impl PostgresLikeEstimator {
    /// Create an estimator over the given catalog.
    pub fn new(catalog: SchemaCatalog) -> Self {
        PostgresLikeEstimator { catalog }
    }
}

impl CardinalityEstimator for PostgresLikeEstimator {
    fn catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        let stats = &self.catalog.column(predicate.column).stats;
        let literal = match predicate.value {
            Value::Null => return 0.0,
            ref v => v.as_f64().unwrap_or(0.0),
        };
        let sel = match predicate.op {
            CmpOp::Eq => stats.eq_selectivity(),
            CmpOp::Neq => (stats.non_null_fraction() - stats.eq_selectivity()).max(0.0),
            CmpOp::Lt => stats.lt_selectivity(literal),
            CmpOp::Leq => stats.lt_selectivity(literal) + stats.eq_selectivity(),
            CmpOp::Gt => {
                (stats.non_null_fraction() - stats.lt_selectivity(literal) - stats.eq_selectivity())
                    .max(0.0)
            }
            CmpOp::Geq => (stats.non_null_fraction() - stats.lt_selectivity(literal)).max(0.0),
        };
        if stats.domain_width() == 0.0 && predicate.op.is_range() {
            // No range information at all: fall back to the planner default.
            return DEFAULT_SELECTIVITY * stats.non_null_fraction();
        }
        sel.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_query::{Aggregate, JoinCondition, Query};

    #[test]
    fn range_predicate_uses_domain_interpolation() {
        let catalog = presets::imdb_like(0.02);
        let year = catalog.resolve_column("title", "production_year").unwrap();
        let est = PostgresLikeEstimator::new(catalog);
        // production_year spans 1890..2020 with 5% nulls; > 1955 is ~half.
        let p = Predicate::new(year, CmpOp::Gt, Value::Int(1955));
        let sel = est.predicate_selectivity(&p);
        assert!((sel - 0.475).abs() < 0.05, "sel = {sel}");
    }

    #[test]
    fn equality_on_categorical_uses_distinct() {
        let catalog = presets::imdb_like(0.02);
        let kind = catalog.resolve_column("title", "kind_id").unwrap();
        let distinct = catalog.column(kind).stats.distinct_count as f64;
        let est = PostgresLikeEstimator::new(catalog);
        let p = Predicate::new(kind, CmpOp::Eq, Value::Cat(1));
        assert!((est.predicate_selectivity(&p) - 1.0 / distinct).abs() < 1e-9);
    }

    #[test]
    fn null_literal_matches_nothing() {
        let catalog = presets::imdb_like(0.02);
        let year = catalog.resolve_column("title", "production_year").unwrap();
        let est = PostgresLikeEstimator::new(catalog);
        let p = Predicate::new(year, CmpOp::Eq, Value::Null);
        assert_eq!(est.predicate_selectivity(&p), 0.0);
    }

    #[test]
    fn selectivities_are_probabilities() {
        let catalog = presets::imdb_like(0.05);
        let est = PostgresLikeEstimator::new(catalog.clone());
        let workload = zsdb_query::WorkloadGenerator::with_defaults().generate(&catalog, 100, 3);
        for q in &workload {
            for p in &q.predicates {
                let sel = est.predicate_selectivity(p);
                assert!((0.0..=1.0).contains(&sel), "sel {sel} out of range");
            }
            assert!(est.query_cardinality(q).is_finite());
        }
    }

    #[test]
    fn fk_join_estimate_close_to_child_size() {
        let catalog = presets::imdb_like(0.02);
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (ci, ci_meta) = catalog.table_by_name("cast_info").unwrap();
        let ci_rows = ci_meta.num_tuples as f64;
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog.resolve_column("cast_info", "movie_id").unwrap();
        let est = PostgresLikeEstimator::new(catalog);
        let query = Query {
            tables: vec![title, ci],
            joins: vec![JoinCondition::new(movie_id, title_id)],
            predicates: vec![],
            aggregates: vec![Aggregate::count_star()],
        };
        let card = est.query_cardinality(&query);
        assert!((card - ci_rows).abs() / ci_rows < 0.05, "card {card}");
    }
}
