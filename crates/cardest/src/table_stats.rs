//! Database-wide statistics built from data samples, and the histogram
//! based estimator on top of them.

use crate::estimator::CardinalityEstimator;
use crate::histogram::EquiDepthHistogram;
use zsdb_catalog::{ColumnId, ColumnRef, SchemaCatalog, TableId};
use zsdb_query::Predicate;
use zsdb_storage::{Database, TableSample};

/// Default number of histogram buckets per column.
pub const DEFAULT_BUCKETS: usize = 64;

/// Default per-table sample size used when building statistics.
pub const DEFAULT_SAMPLE_SIZE: usize = 10_000;

/// Per-column histograms for every table of a database, built from samples.
///
/// This is the workspace's lightweight "data-driven model": it is derived
/// purely from the data (no query executions) and supplies selectivity /
/// cardinality estimates to the zero-shot featurization and the optimizer.
#[derive(Debug, Clone)]
pub struct DatabaseStatistics {
    catalog: SchemaCatalog,
    /// `histograms[table][column]`
    histograms: Vec<Vec<EquiDepthHistogram>>,
}

impl DatabaseStatistics {
    /// Build statistics for every column of every table from a sample of
    /// `sample_size` rows per table.
    pub fn build(db: &Database, sample_size: usize, seed: u64) -> Self {
        let catalog = db.catalog().clone();
        let mut histograms = Vec::with_capacity(catalog.num_tables());
        for (tid, table_meta) in catalog.iter_tables() {
            let data = db.table_data(tid);
            let sample = TableSample::draw(data, sample_size, seed ^ (tid.0 as u64) << 32);
            let mut table_hists = Vec::with_capacity(table_meta.num_columns());
            for col_idx in 0..table_meta.num_columns() {
                let column = data.column(ColumnId(col_idx as u32));
                let values: Vec<Option<f64>> = sample
                    .rows()
                    .iter()
                    .map(|&row| column.as_f64(row as usize))
                    .collect();
                table_hists.push(EquiDepthHistogram::build(&values, DEFAULT_BUCKETS));
            }
            histograms.push(table_hists);
        }
        DatabaseStatistics {
            catalog,
            histograms,
        }
    }

    /// Build with default sample size and buckets.
    pub fn build_default(db: &Database, seed: u64) -> Self {
        Self::build(db, DEFAULT_SAMPLE_SIZE, seed)
    }

    /// Histogram of one column.
    pub fn histogram(&self, column: ColumnRef) -> &EquiDepthHistogram {
        &self.histograms[column.table.index()][column.column.index()]
    }

    /// The catalog these statistics describe.
    pub fn catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    /// Number of tables covered.
    pub fn num_tables(&self) -> usize {
        self.histograms.len()
    }

    /// Observed distinct count of a column (from its histogram), scaled to
    /// the full table size assuming the sample saw most distinct values.
    pub fn distinct_count(&self, column: ColumnRef) -> u64 {
        self.histogram(column).distinct_count()
    }
}

/// Cardinality estimator backed by sampled equi-depth histograms.
#[derive(Debug, Clone)]
pub struct HistogramEstimator {
    stats: DatabaseStatistics,
}

impl HistogramEstimator {
    /// Create the estimator from pre-built statistics.
    pub fn new(stats: DatabaseStatistics) -> Self {
        HistogramEstimator { stats }
    }

    /// Build statistics from the database and wrap them.
    pub fn build(db: &Database, seed: u64) -> Self {
        HistogramEstimator::new(DatabaseStatistics::build_default(db, seed))
    }

    /// Access the underlying statistics.
    pub fn statistics(&self) -> &DatabaseStatistics {
        &self.stats
    }
}

impl CardinalityEstimator for HistogramEstimator {
    fn catalog(&self) -> &SchemaCatalog {
        self.stats.catalog()
    }

    fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        let literal = match predicate.value.as_f64() {
            Some(v) => v,
            None => return 0.0,
        };
        self.stats
            .histogram(predicate.column)
            .selectivity(predicate.op, literal)
    }

    fn table_cardinality(&self, table: TableId, predicates: &[Predicate]) -> f64 {
        let base = self.catalog().table(table).num_tuples as f64;
        let selectivity: f64 = predicates
            .iter()
            .filter(|p| p.column.table == table)
            .map(|p| self.predicate_selectivity(p).clamp(0.0, 1.0))
            .product();
        (base * selectivity).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{presets, Value};
    use zsdb_query::CmpOp;

    fn imdb_db() -> Database {
        Database::generate(presets::imdb_like(0.02), 42)
    }

    #[test]
    fn statistics_cover_all_columns() {
        let db = imdb_db();
        let stats = DatabaseStatistics::build(&db, 500, 1);
        assert_eq!(stats.num_tables(), db.catalog().num_tables());
        for (tid, table) in db.catalog().iter_tables() {
            for c in 0..table.num_columns() {
                let col = ColumnRef::new(tid, ColumnId(c as u32));
                assert!(stats.histogram(col).sample_size() > 0);
            }
        }
    }

    #[test]
    fn histogram_estimator_tracks_true_selectivity() {
        let db = imdb_db();
        let est = HistogramEstimator::build(&db, 7);
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let predicate = Predicate::new(year, CmpOp::Gt, Value::Int(1990));

        // True selectivity by brute force.
        let data = db.table_data(year.table);
        let column = data.column(year.column);
        let matches = (0..column.len())
            .filter(|&row| predicate.matches(column.get(row)))
            .count();
        let true_sel = matches as f64 / column.len() as f64;

        let est_sel = est.predicate_selectivity(&predicate);
        assert!(
            (est_sel - true_sel).abs() < 0.1,
            "estimated {est_sel}, true {true_sel}"
        );
    }

    #[test]
    fn estimator_handles_generated_workload() {
        let db = imdb_db();
        let est = HistogramEstimator::build(&db, 3);
        let workload = zsdb_query::WorkloadGenerator::with_defaults().generate(db.catalog(), 50, 2);
        for q in &workload {
            let card = est.query_cardinality(q);
            assert!(card.is_finite() && card >= 0.0);
        }
    }

    #[test]
    fn distinct_counts_are_observed() {
        let db = imdb_db();
        let stats = DatabaseStatistics::build(&db, 2_000, 5);
        let kind = db.catalog().resolve_column("title", "kind_id").unwrap();
        let declared = db.catalog().column(kind).stats.distinct_count;
        let observed = stats.distinct_count(kind);
        assert!(observed >= 2 && observed <= declared * 2);
    }
}
