//! Exact (brute-force) selectivity computation over the full base tables.
//!
//! The zero-shot paper's upper-bound featurization variant feeds *exact*
//! cardinalities to the cost model.  Per-operator exact cardinalities are
//! recorded by the executor while collecting runtimes; this estimator
//! provides the same ground truth through the [`CardinalityEstimator`]
//! interface, so baselines and tests can compare approximate estimators
//! (histograms, sampling) against the truth on equal footing.
//!
//! Per-table predicate conjunctions are evaluated exactly by scanning every
//! row (no independence assumption).  Join cardinalities still use the
//! trait's default System-R combination, which is the standard behaviour
//! for "exact base-table cardinality" estimators.

use crate::estimator::CardinalityEstimator;
use zsdb_catalog::{SchemaCatalog, TableId};
use zsdb_query::Predicate;
use zsdb_storage::{Database, TableData};

/// Ground-truth selectivities computed by scanning the full tables.
///
/// Build cost is proportional to the database size on every estimate call
/// (the data is scanned, not summarised), so this is a tool for evaluation
/// and tests, not for optimisation hot paths.
#[derive(Debug, Clone)]
pub struct ExactEstimator {
    catalog: SchemaCatalog,
    tables: Vec<TableData>,
}

impl ExactEstimator {
    /// Snapshot the database's tables for exact evaluation.
    pub fn build(db: &Database) -> Self {
        let catalog = db.catalog().clone();
        let tables = catalog
            .iter_tables()
            .map(|(tid, _)| db.table_data(tid).clone())
            .collect();
        ExactEstimator { catalog, tables }
    }

    /// Exact fraction of rows of `table` satisfying *all* `predicates` that
    /// reference it.  Returns 1.0 when no predicate references the table.
    pub fn conjunctive_selectivity(&self, table: TableId, predicates: &[Predicate]) -> f64 {
        let relevant: Vec<&Predicate> = predicates
            .iter()
            .filter(|p| p.column.table == table)
            .collect();
        if relevant.is_empty() {
            return 1.0;
        }
        let data = &self.tables[table.index()];
        if data.num_rows() == 0 {
            return 0.0;
        }
        let matching = (0..data.num_rows())
            .filter(|&row| {
                relevant
                    .iter()
                    .all(|p| p.matches(data.value(row, p.column.column)))
            })
            .count();
        matching as f64 / data.num_rows() as f64
    }
}

impl CardinalityEstimator for ExactEstimator {
    fn catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        self.conjunctive_selectivity(predicate.column.table, std::slice::from_ref(predicate))
    }

    fn table_cardinality(&self, table: TableId, predicates: &[Predicate]) -> f64 {
        let rows = self.tables[table.index()].num_rows() as f64;
        rows * self.conjunctive_selectivity(table, predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{presets, Value};
    use zsdb_query::{CmpOp, Predicate};

    #[test]
    fn matches_brute_force_single_predicate() {
        let db = Database::generate(presets::imdb_like(0.02), 17);
        let est = ExactEstimator::build(&db);
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let p = Predicate::new(year, CmpOp::Gt, Value::Int(1995));
        let column = db.table_data(year.table).column(year.column);
        let truth = (0..column.len())
            .filter(|&r| p.matches(column.get(r)))
            .count() as f64
            / column.len() as f64;
        assert_eq!(est.predicate_selectivity(&p), truth);
    }

    #[test]
    fn empty_predicate_list_is_full_table() {
        let db = Database::generate(presets::imdb_like(0.02), 17);
        let est = ExactEstimator::build(&db);
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        let rows = db.table_data(title).num_rows() as f64;
        assert_eq!(est.table_cardinality(title, &[]), rows);
    }

    #[test]
    fn contradictory_conjunction_is_zero() {
        let db = Database::generate(presets::imdb_like(0.02), 17);
        let est = ExactEstimator::build(&db);
        let year = db
            .catalog()
            .resolve_column("title", "production_year")
            .unwrap();
        let preds = [
            Predicate::new(year, CmpOp::Lt, Value::Int(1950)),
            Predicate::new(year, CmpOp::Gt, Value::Int(2000)),
        ];
        let (title, _) = db.catalog().table_by_name("title").unwrap();
        assert_eq!(est.conjunctive_selectivity(title, &preds), 0.0);
    }
}
