//! Equi-depth histograms over numeric views of column values.

use serde::{Deserialize, Serialize};
use zsdb_query::CmpOp;

/// An equi-depth histogram plus auxiliary statistics for one column.
///
/// Built from (a sample of) the actual data, it answers selectivity queries
/// for all comparison operators.  Boolean/categorical columns work too via
/// their numeric view (dictionary codes), where only equality estimates are
/// meaningful and handled through the distinct count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries, length `num_buckets + 1`; bucket `i` covers
    /// `[bounds[i], bounds[i+1])` (last bucket inclusive).
    bounds: Vec<f64>,
    /// Fraction of non-null values per bucket (sums to 1 unless empty).
    fractions: Vec<f64>,
    /// Estimated number of distinct non-null values.
    distinct: u64,
    /// Fraction of NULL values in the column.
    null_fraction: f64,
    /// Number of (sampled) values the histogram was built from.
    sample_size: usize,
}

impl EquiDepthHistogram {
    /// Build a histogram with `num_buckets` buckets from the numeric views
    /// of the (sampled) values; `None` entries are NULLs.
    pub fn build(values: &[Option<f64>], num_buckets: usize) -> Self {
        let total = values.len();
        let mut non_null: Vec<f64> = values.iter().flatten().copied().collect();
        let null_fraction = if total == 0 {
            0.0
        } else {
            1.0 - non_null.len() as f64 / total as f64
        };
        non_null.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        let mut distinct = 0u64;
        for (i, v) in non_null.iter().enumerate() {
            if i == 0 || (*v - non_null[i - 1]).abs() > 0.0 {
                distinct += 1;
            }
        }

        if non_null.is_empty() {
            return EquiDepthHistogram {
                bounds: vec![0.0, 0.0],
                fractions: vec![0.0],
                distinct: 0,
                null_fraction,
                sample_size: total,
            };
        }

        let buckets = num_buckets.max(1).min(non_null.len());
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut fractions = Vec::with_capacity(buckets);
        bounds.push(non_null[0]);
        let per_bucket = non_null.len() as f64 / buckets as f64;
        for b in 1..=buckets {
            let end_idx = ((b as f64 * per_bucket).round() as usize).clamp(1, non_null.len());
            let start_idx = (((b - 1) as f64 * per_bucket).round() as usize).min(end_idx - 1);
            bounds.push(non_null[end_idx - 1]);
            fractions.push((end_idx - start_idx) as f64 / non_null.len() as f64);
        }

        EquiDepthHistogram {
            bounds,
            fractions,
            distinct: distinct.max(1),
            null_fraction,
            sample_size: total,
        }
    }

    /// Estimated number of distinct non-null values.
    pub fn distinct_count(&self) -> u64 {
        self.distinct
    }

    /// Fraction of NULL values.
    pub fn null_fraction(&self) -> f64 {
        self.null_fraction
    }

    /// Number of values the histogram was built from.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Estimated selectivity of `column op literal` as a fraction of the
    /// table (NULLs never match, so the result is scaled by the non-null
    /// fraction).
    pub fn selectivity(&self, op: CmpOp, literal: f64) -> f64 {
        let non_null = 1.0 - self.null_fraction;
        if self.distinct == 0 || non_null <= 0.0 {
            return 0.0;
        }
        let sel = match op {
            CmpOp::Eq => 1.0 / self.distinct as f64,
            CmpOp::Neq => 1.0 - 1.0 / self.distinct as f64,
            CmpOp::Lt | CmpOp::Leq => self.fraction_below(literal, matches!(op, CmpOp::Leq)),
            CmpOp::Gt | CmpOp::Geq => 1.0 - self.fraction_below(literal, matches!(op, CmpOp::Gt)),
        };
        (sel.clamp(0.0, 1.0)) * non_null
    }

    /// Fraction of non-null values `< literal` (or `<= literal` if
    /// `inclusive`), interpolating linearly within the containing bucket.
    fn fraction_below(&self, literal: f64, inclusive: bool) -> f64 {
        let lo = self.bounds[0];
        let hi = *self.bounds.last().expect("at least two bounds");
        if literal < lo {
            return 0.0;
        }
        if literal > hi || (inclusive && literal >= hi) {
            return 1.0;
        }
        let mut acc = 0.0;
        for (i, frac) in self.fractions.iter().enumerate() {
            let b_lo = self.bounds[i];
            let b_hi = self.bounds[i + 1];
            if literal >= b_hi {
                acc += frac;
            } else {
                let width = (b_hi - b_lo).max(1e-12);
                let partial = ((literal - b_lo) / width).clamp(0.0, 1.0);
                acc += frac * partial;
                break;
            }
        }
        acc.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_values(n: usize) -> Vec<Option<f64>> {
        (0..n).map(|i| Some(i as f64)).collect()
    }

    #[test]
    fn range_selectivity_on_uniform_data() {
        let hist = EquiDepthHistogram::build(&uniform_values(1000), 20);
        let sel = hist.selectivity(CmpOp::Lt, 500.0);
        assert!((sel - 0.5).abs() < 0.05, "sel = {sel}");
        let sel = hist.selectivity(CmpOp::Gt, 900.0);
        assert!((sel - 0.1).abs() < 0.05, "sel = {sel}");
    }

    #[test]
    fn equality_uses_distinct_count() {
        let values: Vec<Option<f64>> = (0..1000).map(|i| Some((i % 10) as f64)).collect();
        let hist = EquiDepthHistogram::build(&values, 10);
        assert_eq!(hist.distinct_count(), 10);
        assert!((hist.selectivity(CmpOp::Eq, 3.0) - 0.1).abs() < 1e-9);
        assert!((hist.selectivity(CmpOp::Neq, 3.0) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn nulls_scale_selectivity() {
        let mut values = uniform_values(500);
        values.extend(std::iter::repeat_n(None, 500));
        let hist = EquiDepthHistogram::build(&values, 10);
        assert!((hist.null_fraction() - 0.5).abs() < 1e-9);
        let sel = hist.selectivity(CmpOp::Lt, 250.0);
        assert!((sel - 0.25).abs() < 0.05, "sel = {sel}");
    }

    #[test]
    fn out_of_range_literals_clamp() {
        let hist = EquiDepthHistogram::build(&uniform_values(100), 10);
        assert_eq!(hist.selectivity(CmpOp::Lt, -10.0), 0.0);
        assert!((hist.selectivity(CmpOp::Lt, 1e9) - 1.0).abs() < 1e-9);
        assert!((hist.selectivity(CmpOp::Gt, 1e9)).abs() < 1e-9);
    }

    #[test]
    fn empty_and_all_null_columns() {
        let empty = EquiDepthHistogram::build(&[], 10);
        assert_eq!(empty.selectivity(CmpOp::Eq, 1.0), 0.0);
        let nulls: Vec<Option<f64>> = vec![None; 100];
        let hist = EquiDepthHistogram::build(&nulls, 10);
        assert_eq!(hist.distinct_count(), 0);
        assert_eq!(hist.selectivity(CmpOp::Lt, 0.0), 0.0);
    }

    #[test]
    fn skewed_data_range_estimates() {
        // 90% of values are 0, 10% spread over 1..=100.
        let mut values: Vec<Option<f64>> = vec![Some(0.0); 900];
        values.extend((1..=100).map(|i| Some(i as f64)));
        let hist = EquiDepthHistogram::build(&values, 20);
        let sel = hist.selectivity(CmpOp::Gt, 0.0);
        assert!(sel < 0.2, "skew should be captured, sel = {sel}");
    }
}
