//! # zsdb-cardest
//!
//! Cardinality estimation for the `zero-shot-db` workspace.
//!
//! The paper's separation-of-concerns argument (Section 2.2) is that a
//! zero-shot cost model should *not* internalise data characteristics;
//! instead cardinalities are supplied as input features, either from a
//! data-driven model / simple estimator (the "estimated cardinalities"
//! variant) or as exact values (the upper-bound variant).  This crate
//! provides those suppliers:
//!
//! * [`PostgresLikeEstimator`] — classical catalog-statistics estimator
//!   (uniformity + independence assumptions), the stand-in for "Postgres
//!   optimizer cardinalities",
//! * [`HistogramEstimator`] — equi-depth histograms built from a data
//!   sample, the stand-in for a simple data-driven model,
//! * [`SamplingEstimator`] — evaluates predicates on a row sample,
//! * [`ExactEstimator`] — ground truth by brute-force table scans, for
//!   evaluating the approximate estimators.
//!
//! Exact *per-operator* cardinalities are additionally recorded by the
//! executor in `zsdb-engine` while collecting runtimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod exact;
pub mod histogram;
pub mod postgres_like;
pub mod sampling;
pub mod table_stats;

pub use estimator::CardinalityEstimator;
pub use exact::ExactEstimator;
pub use histogram::EquiDepthHistogram;
pub use postgres_like::PostgresLikeEstimator;
pub use sampling::SamplingEstimator;
pub use table_stats::{DatabaseStatistics, HistogramEstimator};
