//! The [`CardinalityEstimator`] trait and shared combination logic.

use zsdb_catalog::{SchemaCatalog, TableId};
use zsdb_query::{JoinCondition, Predicate, Query};

/// A cardinality estimator: given per-predicate and per-join selectivities,
/// produces cardinality estimates for base tables and connected sub-queries.
///
/// The default sub-query combination follows the classical System-R recipe:
/// the product of base-table cardinalities, predicate selectivities
/// (independence assumption) and join selectivities
/// (`1 / max(distinct(left), distinct(right))`).
pub trait CardinalityEstimator {
    /// The schema the estimator was built for.
    fn catalog(&self) -> &SchemaCatalog;

    /// Selectivity of one predicate on its base table, in `[0, 1]`.
    fn predicate_selectivity(&self, predicate: &Predicate) -> f64;

    /// Selectivity of an equi-join edge relative to the Cartesian product
    /// of its two input tables.
    fn join_selectivity(&self, join: &JoinCondition) -> f64 {
        let left = self.catalog().column(join.left);
        let right = self.catalog().column(join.right);
        let distinct = left
            .stats
            .distinct_count
            .max(right.stats.distinct_count)
            .max(1);
        1.0 / distinct as f64
    }

    /// Estimated number of rows of `table` after applying `predicates`
    /// (only predicates on that table are considered).
    fn table_cardinality(&self, table: TableId, predicates: &[Predicate]) -> f64 {
        let base = self.catalog().table(table).num_tuples as f64;
        let selectivity: f64 = predicates
            .iter()
            .filter(|p| p.column.table == table)
            .map(|p| self.predicate_selectivity(p).clamp(0.0, 1.0))
            .product();
        (base * selectivity).max(0.0)
    }

    /// Estimated cardinality of the connected sub-query of `query`
    /// restricted to `tables`: joins whose both sides are in `tables` and
    /// predicates on those tables are applied.
    fn subquery_cardinality(&self, query: &Query, tables: &[TableId]) -> f64 {
        let mut card = 1.0f64;
        for &t in tables {
            card *= self.table_cardinality(t, &query.predicates);
        }
        for join in &query.joins {
            if tables.contains(&join.left.table) && tables.contains(&join.right.table) {
                card *= self.join_selectivity(join).clamp(0.0, 1.0);
            }
        }
        card.max(1e-6)
    }

    /// Estimated output cardinality of the full query (before aggregation).
    fn query_cardinality(&self, query: &Query) -> f64 {
        self.subquery_cardinality(query, &query.tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::{presets, Value};
    use zsdb_query::{CmpOp, JoinCondition, Predicate};

    /// A trivially simple estimator with constant predicate selectivity,
    /// used to test the default combination logic in isolation.
    struct ConstEstimator {
        catalog: SchemaCatalog,
        sel: f64,
    }

    impl CardinalityEstimator for ConstEstimator {
        fn catalog(&self) -> &SchemaCatalog {
            &self.catalog
        }
        fn predicate_selectivity(&self, _predicate: &Predicate) -> f64 {
            self.sel
        }
    }

    #[test]
    fn table_cardinality_multiplies_selectivities() {
        let catalog = presets::imdb_like(0.02);
        let (title, tmeta) = catalog.table_by_name("title").unwrap();
        let year = catalog.resolve_column("title", "production_year").unwrap();
        let est = ConstEstimator {
            sel: 0.1,
            catalog: catalog.clone(),
        };
        let preds = vec![
            Predicate::new(year, CmpOp::Gt, Value::Int(1990)),
            Predicate::new(year, CmpOp::Lt, Value::Int(2000)),
        ];
        let expected = tmeta.num_tuples as f64 * 0.01;
        assert!((est.table_cardinality(title, &preds) - expected).abs() < 1e-6);
    }

    #[test]
    fn join_selectivity_uses_max_distinct() {
        let catalog = presets::imdb_like(0.02);
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let est = ConstEstimator {
            sel: 1.0,
            catalog: catalog.clone(),
        };
        let join = JoinCondition::new(movie_id, title_id);
        let title_rows = catalog.table(title_id.table).num_tuples as f64;
        assert!((est.join_selectivity(&join) - 1.0 / title_rows).abs() < 1e-12);
    }

    #[test]
    fn subquery_cardinality_is_fk_join_shaped() {
        // For an FK join with no predicates, |A ⋈ B| ≈ |child| when joining
        // child to parent on the parent's key.
        let catalog = presets::imdb_like(0.02);
        let (title, _) = catalog.table_by_name("title").unwrap();
        let (mc, mc_meta) = catalog.table_by_name("movie_companies").unwrap();
        let title_id = catalog.resolve_column("title", "id").unwrap();
        let movie_id = catalog
            .resolve_column("movie_companies", "movie_id")
            .unwrap();
        let est = ConstEstimator {
            sel: 1.0,
            catalog: catalog.clone(),
        };
        let query = Query {
            tables: vec![title, mc],
            joins: vec![JoinCondition::new(movie_id, title_id)],
            predicates: vec![],
            aggregates: vec![zsdb_query::Aggregate::count_star()],
        };
        let card = est.query_cardinality(&query);
        let expected = mc_meta.num_tuples as f64;
        assert!(
            (card - expected).abs() / expected < 0.01,
            "card {card} vs expected {expected}"
        );
    }

    #[test]
    fn cardinality_never_hits_zero() {
        let catalog = presets::imdb_like(0.02);
        let (title, _) = catalog.table_by_name("title").unwrap();
        let est = ConstEstimator { sel: 0.0, catalog };
        let query = Query::scan(title);
        assert!(est.query_cardinality(&query) > 0.0);
    }
}
