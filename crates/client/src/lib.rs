//! # zsdb-client — pooled network client for the prediction service
//!
//! A blocking client over the [`zsdb_protocol`] framed wire protocol.
//! Design:
//!
//! * **Pipelined connections** — each pooled connection has one writer
//!   (mutex-serialised frame writes) and one background reader thread
//!   that routes response frames to waiting callers by request id, so
//!   *many* in-flight requests share one TCP connection.  Submitting is
//!   non-blocking on the response: [`Client::submit`] returns a
//!   [`PendingPrediction`] ticket immediately, enabling client-side
//!   pipelining (and server-side request coalescing off the socket).
//! * **Connection pool with reconnect** — [`ClientConfig::connections`]
//!   sockets are opened lazily and handed out round-robin.  A broken
//!   pipe (server restart, dropped connection) marks the slot dead; the
//!   next request transparently reconnects and connection-level failures
//!   are retried once on a fresh socket.
//! * **Per-request timeout** — every wait is bounded by
//!   [`ClientConfig::request_timeout`]; a timed-out request abandons its
//!   ticket without poisoning the connection (late responses are
//!   discarded by id).
//!
//! ```no_run
//! use zsdb_client::{Client, ClientConfig};
//! # fn demo(plan: zsdb_engine::PlanNode) -> Result<(), zsdb_client::ClientError> {
//! let client = Client::connect("127.0.0.1:7878", ClientConfig::tenant("analytics"))?;
//! let prediction = client.predict(&plan)?;
//! println!("predicted {:.3}s (model v{})", prediction.runtime_secs, prediction.model_version);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use zsdb_engine::PlanNode;
use zsdb_protocol::{
    encode_frame, read_frame, ErrorCode, ExplainRequest, Frame, GatewayMetrics, HealthResponse,
    HelloRequest, Message, ProtocolError, ProvenanceRecord, SlowLogRequest, WirePrediction,
    WireSloStatus, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Client-side trace-id mint: nonzero, process-wide unique.  The id is
/// attached to request frames on protocol-v2 connections so the server's
/// tracer records the request under an id the client already knows.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

fn mint_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read or write).
    Io(std::io::Error),
    /// The peer sent bytes that do not form a valid frame.
    Protocol(ProtocolError),
    /// The server rejected the connection handshake.
    Handshake(String),
    /// The server answered with a structured error frame.
    Server {
        /// Machine-readable failure category.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// No response arrived within [`ClientConfig::request_timeout`].
    Timeout,
    /// The connection died while the request was in flight; the request
    /// may or may not have executed server-side.
    ConnectionLost,
    /// The server answered with a well-formed frame of the wrong type.
    UnexpectedResponse {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The connection negotiated an older protocol version that cannot
    /// express the request (e.g. `MetricsText` against a v1 server).
    Unsupported(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(e) => write!(f, "client protocol error: {e}"),
            ClientError::Handshake(detail) => write!(f, "handshake rejected: {detail}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::ConnectionLost => write!(f, "connection lost with request in flight"),
            ClientError::UnexpectedResponse { expected, got } => {
                write!(f, "expected a {expected} response, got {got}")
            }
            ClientError::Unsupported(detail) => {
                write!(
                    f,
                    "unsupported on the negotiated protocol version: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl ClientError {
    /// Whether the failure is connection-level, i.e. retrying on a fresh
    /// connection is meaningful (the request was never accepted).
    fn is_connection_level(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::ConnectionLost)
    }
}

/// Tunables of a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Tenant id sent in the connection handshake; the gateway meters
    /// admission and metrics per tenant.
    pub tenant: String,
    /// Pooled connections (opened lazily, handed out round-robin).
    pub connections: usize,
    /// Timeout for establishing and handshaking one connection.
    pub connect_timeout: Duration,
    /// Timeout for one request's response.
    pub request_timeout: Duration,
}

impl ClientConfig {
    /// Default configuration for the given tenant: 1 pooled connection,
    /// 5 s connect timeout, 30 s request timeout.
    pub fn tenant(tenant: impl Into<String>) -> Self {
        ClientConfig {
            tenant: tenant.into(),
            connections: 1,
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// A prediction as received over the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemotePrediction {
    /// Predicted runtime in seconds — bit-identical to the in-process
    /// prediction for the same plan and model version.
    pub runtime_secs: f64,
    /// Structural fingerprint of the request plan.
    pub fingerprint: u64,
    /// Whether the server's feature cache answered the featurization.
    pub cache_hit: bool,
    /// Server-side enqueue-to-response latency.
    pub server_latency: Duration,
    /// Version of the model that answered.
    pub model_version: u32,
    /// Trace id echoed on the response frame — the id the server's
    /// tracer recorded this request under.  `0` when the connection
    /// negotiated protocol v1 or the server's tracer was disabled.
    pub trace_id: u64,
}

impl From<WirePrediction> for RemotePrediction {
    fn from(p: WirePrediction) -> Self {
        RemotePrediction {
            runtime_secs: p.runtime_secs,
            fingerprint: p.fingerprint,
            cache_hit: p.cache_hit,
            server_latency: Duration::from_micros(p.server_latency_micros),
            model_version: p.model_version,
            trace_id: 0,
        }
    }
}

type ReplySender = mpsc::Sender<Result<(Message, u64), ClientError>>;
type ReplyReceiver = mpsc::Receiver<Result<(Message, u64), ClientError>>;

/// One live connection: a shared writer and a reader thread demuxing
/// responses to waiting callers by request id.
struct Connection {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, ReplySender>>,
    next_id: AtomicU64,
    alive: AtomicBool,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
    model_version: u32,
    tenant_quota: u64,
    /// Protocol version the server acknowledged; trace ids ride on
    /// request frames only when this is ≥ 2.
    protocol_version: u8,
}

impl Connection {
    /// Open and handshake, falling back to the oldest supported protocol
    /// version when the server rejects the current one — a new client
    /// keeps working against an old server (it simply cannot carry trace
    /// ids on the wire).
    fn open(addr: SocketAddr, config: &ClientConfig) -> Result<Arc<Connection>, ClientError> {
        match Connection::open_with_version(addr, config, PROTOCOL_VERSION) {
            Err(ClientError::Handshake(detail))
                if detail.contains("unsupported protocol version")
                    && MIN_PROTOCOL_VERSION < PROTOCOL_VERSION =>
            {
                Connection::open_with_version(addr, config, MIN_PROTOCOL_VERSION)
            }
            other => other,
        }
    }

    fn open_with_version(
        addr: SocketAddr,
        config: &ClientConfig,
        protocol_version: u8,
    ) -> Result<Arc<Connection>, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_nodelay(true)?;

        // Handshake synchronously before the reader thread exists: write
        // Hello, wait (bounded) for HelloAck.
        let mut handshake = stream.try_clone()?;
        handshake.set_read_timeout(Some(config.connect_timeout))?;
        let hello = Frame::new(
            0,
            Message::Hello(HelloRequest {
                protocol_version,
                tenant: config.tenant.clone(),
            }),
        );
        handshake.write_all(&encode_frame(&hello)?)?;
        handshake.flush()?;
        let ack = match read_frame(&mut handshake)? {
            Some(frame) => frame,
            None => {
                return Err(ClientError::Handshake(
                    "server closed during handshake".into(),
                ))
            }
        };
        let (model_version, tenant_quota, protocol_version) = match ack.message {
            // Trust the ack's version but never exceed what we asked for:
            // an old server that blindly echoes a newer number must not
            // trick the client into v2 framing.
            Message::HelloAck(ack) => (
                ack.model_version,
                ack.tenant_quota,
                ack.protocol_version.min(protocol_version),
            ),
            Message::Error(e) => {
                return Err(ClientError::Handshake(format!(
                    "{:?}: {}",
                    e.code, e.message
                )))
            }
            other => {
                return Err(ClientError::Handshake(format!(
                    "expected HelloAck, got {}",
                    other.op_name()
                )))
            }
        };
        handshake.set_read_timeout(None)?;

        let conn = Arc::new(Connection {
            writer: Mutex::new(stream.try_clone()?),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            alive: AtomicBool::new(true),
            reader: Mutex::new(None),
            model_version,
            tenant_quota,
            protocol_version,
        });
        let reader_conn = Arc::clone(&conn);
        let handle = std::thread::Builder::new()
            .name("zsdb-client-reader".into())
            .spawn(move || reader_loop(&reader_conn, handshake))
            .map_err(|e| ClientError::Io(std::io::Error::other(e)))?;
        *conn.reader.lock().expect("reader handle lock") = Some(handle);
        Ok(conn)
    }

    /// Write one request frame (carrying `trace_id` when nonzero and the
    /// connection speaks v2) and register a reply slot for its id.
    fn send(
        self: &Arc<Connection>,
        message: Message,
        trace_id: u64,
    ) -> Result<(u64, ReplyReceiver), ClientError> {
        if !self.alive.load(Ordering::Acquire) {
            return Err(ClientError::ConnectionLost);
        }
        let trace_id = if self.protocol_version >= 2 {
            trace_id
        } else {
            0
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.pending.lock().expect("pending lock").insert(id, tx);
        let bytes = encode_frame(&Frame::traced(id, trace_id, message))?;
        let write_result = {
            let mut writer = self.writer.lock().expect("writer lock");
            writer.write_all(&bytes).and_then(|()| writer.flush())
        };
        if let Err(e) = write_result {
            self.pending.lock().expect("pending lock").remove(&id);
            self.alive.store(false, Ordering::Release);
            return Err(ClientError::Io(e));
        }
        Ok((id, rx))
    }

    fn forget(&self, id: u64) {
        self.pending.lock().expect("pending lock").remove(&id);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        // Shut the socket so the reader thread unblocks and exits; the
        // handle is detached (joining from drop could deadlock a reader
        // that is mid-route).
        self.alive.store(false, Ordering::Release);
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
    }
}

fn reader_loop(conn: &Arc<Connection>, stream: TcpStream) {
    let mut reader = std::io::BufReader::new(stream);
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        // An error on the reserved id 0 is connection-level: the server
        // could not attribute the failure to any request (request ids
        // start at 1) and is about to hang up.  Fan the structured error
        // out to every pending caller rather than letting them discover
        // a bare ConnectionLost or time out.
        if frame.request_id == 0 {
            if let Message::Error(e) = frame.message {
                conn.alive.store(false, Ordering::Release);
                let pending: Vec<ReplySender> = conn
                    .pending
                    .lock()
                    .expect("pending lock")
                    .drain()
                    .map(|(_, tx)| tx)
                    .collect();
                for tx in pending {
                    let _ = tx.send(Err(ClientError::Server {
                        code: e.code,
                        message: e.message.clone(),
                    }));
                }
                break;
            }
            continue;
        }
        // A sender may be gone (caller timed out) — discard late
        // responses silently.
        if let Some(tx) = conn
            .pending
            .lock()
            .expect("pending lock")
            .remove(&frame.request_id)
        {
            let _ = tx.send(Ok((frame.message, frame.trace_id)));
        }
    }
    conn.alive.store(false, Ordering::Release);
    // Every still-waiting caller learns the connection died.
    let pending: Vec<ReplySender> = conn
        .pending
        .lock()
        .expect("pending lock")
        .drain()
        .map(|(_, tx)| tx)
        .collect();
    for tx in pending {
        let _ = tx.send(Err(ClientError::ConnectionLost));
    }
}

/// Claim ticket for one in-flight network request; redeem with the typed
/// `wait` of the wrapper ([`PendingPrediction`], [`PendingBatch`]).
struct PendingReply {
    conn: Arc<Connection>,
    id: u64,
    rx: ReplyReceiver,
    timeout: Duration,
}

impl PendingReply {
    fn wait_message(self) -> Result<(Message, u64), ClientError> {
        match self.rx.recv_timeout(self.timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Abandon the slot: a late response is dropped by id.
                self.conn.forget(self.id);
                Err(ClientError::Timeout)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ClientError::ConnectionLost),
        }
    }
}

fn expect_prediction(message: Message, trace_id: u64) -> Result<RemotePrediction, ClientError> {
    match message {
        Message::PredictOk(p) => {
            let mut prediction = RemotePrediction::from(p);
            prediction.trace_id = trace_id;
            Ok(prediction)
        }
        Message::Error(e) => Err(ClientError::Server {
            code: e.code,
            message: e.message,
        }),
        other => Err(ClientError::UnexpectedResponse {
            expected: "PredictOk",
            got: other.op_name(),
        }),
    }
}

/// In-flight single prediction (see [`Client::submit`]).
pub struct PendingPrediction(PendingReply);

impl PendingPrediction {
    /// Block (bounded by the request timeout) until the prediction is in.
    pub fn wait(self) -> Result<RemotePrediction, ClientError> {
        let (message, trace_id) = self.0.wait_message()?;
        expect_prediction(message, trace_id)
    }
}

/// In-flight batch prediction (see [`Client::submit_batch`]).
pub struct PendingBatch(PendingReply);

impl PendingBatch {
    /// Block (bounded by the request timeout) until all predictions of
    /// the batch are in, in submission order.
    pub fn wait(self) -> Result<Vec<RemotePrediction>, ClientError> {
        let (message, trace_id) = self.0.wait_message()?;
        match message {
            Message::PredictBatchOk(ps) => Ok(ps
                .into_iter()
                .map(|p| {
                    let mut prediction = RemotePrediction::from(p);
                    prediction.trace_id = trace_id;
                    prediction
                })
                .collect()),
            Message::Error(e) => Err(ClientError::Server {
                code: e.code,
                message: e.message,
            }),
            other => Err(ClientError::UnexpectedResponse {
                expected: "PredictBatchOk",
                got: other.op_name(),
            }),
        }
    }
}

/// A blocking, connection-pooled client of one prediction service.
///
/// Cloneable-by-`Arc` and safe to share across threads: every method
/// takes `&self`.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    slots: Vec<Mutex<Option<Arc<Connection>>>>,
    round_robin: AtomicUsize,
}

impl Client {
    /// Resolve `addr`, open the first pooled connection and perform the
    /// tenant handshake (the remaining pool connections open lazily).
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io(std::io::Error::other("address resolved to nothing")))?;
        let client = Client {
            addr,
            slots: (0..config.connections.max(1))
                .map(|_| Mutex::new(None))
                .collect(),
            round_robin: AtomicUsize::new(0),
            config,
        };
        // Fail fast on an unreachable server / rejected tenant.
        client.connection_for_slot(0)?;
        Ok(client)
    }

    /// The tenant this client authenticates as.
    pub fn tenant(&self) -> &str {
        &self.config.tenant
    }

    /// Model version reported by the most recently opened connection's
    /// handshake.
    pub fn handshake_model_version(&self) -> Result<u32, ClientError> {
        Ok(self.connection()?.model_version)
    }

    /// The tenant's admission quota reported by the handshake.
    pub fn handshake_tenant_quota(&self) -> Result<u64, ClientError> {
        Ok(self.connection()?.tenant_quota)
    }

    /// Protocol version negotiated by the most recently opened
    /// connection's handshake.  `2` means request frames carry trace ids;
    /// `1` means the client fell back for an older server.
    pub fn negotiated_protocol_version(&self) -> Result<u8, ClientError> {
        Ok(self.connection()?.protocol_version)
    }

    fn connection_for_slot(&self, slot: usize) -> Result<Arc<Connection>, ClientError> {
        let mut guard = self.slots[slot].lock().expect("pool slot lock");
        if let Some(conn) = guard.as_ref() {
            if conn.alive.load(Ordering::Acquire) {
                return Ok(Arc::clone(conn));
            }
        }
        // Dead or never opened: (re)connect — this is the broken-pipe
        // recovery path.
        let conn = Connection::open(self.addr, &self.config)?;
        *guard = Some(Arc::clone(&conn));
        Ok(conn)
    }

    fn connection(&self) -> Result<Arc<Connection>, ClientError> {
        let slot = self.round_robin.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.connection_for_slot(slot)
    }

    /// Send one request, retrying once on a fresh connection if the
    /// failure was connection-level (the send never reached the server).
    /// A nonzero `trace_id` rides on the request frame when the
    /// connection negotiated protocol v2.
    fn send(&self, make: impl Fn() -> Message, trace_id: u64) -> Result<PendingReply, ClientError> {
        let mut last_err = None;
        for _attempt in 0..2 {
            let conn = match self.connection() {
                Ok(c) => c,
                Err(e) if e.is_connection_level() => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match conn.send(make(), trace_id) {
                Ok((id, rx)) => {
                    return Ok(PendingReply {
                        conn,
                        id,
                        rx,
                        timeout: self.config.request_timeout,
                    })
                }
                Err(e) if e.is_connection_level() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(ClientError::ConnectionLost))
    }

    /// Enqueue one prediction without waiting — the pipelined entry
    /// point.  Many pending tickets can share one connection.  On a
    /// protocol-v2 connection the request carries a fresh trace id; the
    /// server echoes it on the response
    /// ([`RemotePrediction::trace_id`]) and records the per-stage trace
    /// under it.
    pub fn submit(&self, plan: &PlanNode) -> Result<PendingPrediction, ClientError> {
        Ok(PendingPrediction(self.send(
            || Message::Predict(Box::new(plan.clone())),
            mint_trace_id(),
        )?))
    }

    /// Enqueue a batch of plans answered by one batched forward pass.
    pub fn submit_batch(&self, plans: &[PlanNode]) -> Result<PendingBatch, ClientError> {
        Ok(PendingBatch(self.send(
            || Message::PredictBatch(plans.to_vec()),
            mint_trace_id(),
        )?))
    }

    /// Predict one plan and wait for the answer.
    pub fn predict(&self, plan: &PlanNode) -> Result<RemotePrediction, ClientError> {
        self.submit(plan)?.wait()
    }

    /// Predict a batch of plans and wait for all answers (submission
    /// order).
    pub fn predict_batch(&self, plans: &[PlanNode]) -> Result<Vec<RemotePrediction>, ClientError> {
        self.submit_batch(plans)?.wait()
    }

    /// Fetch the gateway + per-tenant metrics snapshot.
    pub fn metrics(&self) -> Result<GatewayMetrics, ClientError> {
        let (message, _) = self.send(|| Message::Metrics, 0)?.wait_message()?;
        match message {
            Message::MetricsOk(m) => Ok(*m),
            Message::Error(e) => Err(ClientError::Server {
                code: e.code,
                message: e.message,
            }),
            other => Err(ClientError::UnexpectedResponse {
                expected: "MetricsOk",
                got: other.op_name(),
            }),
        }
    }

    /// Fetch the Prometheus text exposition of the gateway + serving
    /// metrics.  Requires a protocol-v2 server — against a v1 server the
    /// call fails client-side with [`ClientError::Unsupported`] instead
    /// of sending an op the server would treat as an unreadable frame.
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        self.require_v2("MetricsText")?;
        let (message, _) = self.send(|| Message::MetricsText, 0)?.wait_message()?;
        match message {
            Message::MetricsTextOk(text) => Ok(text),
            Message::Error(e) => Err(ClientError::Server {
                code: e.code,
                message: e.message,
            }),
            other => Err(ClientError::UnexpectedResponse {
                expected: "MetricsTextOk",
                got: other.op_name(),
            }),
        }
    }

    /// Fail with [`ClientError::Unsupported`] when the negotiated
    /// protocol predates `op` (a v2 extension) — refusing locally keeps
    /// the op off a wire the server cannot frame.
    fn require_v2(&self, op: &str) -> Result<(), ClientError> {
        let conn = self.connection()?;
        if conn.protocol_version < 2 {
            return Err(ClientError::Unsupported(format!(
                "{op} needs protocol v2, server negotiated v{}",
                conn.protocol_version
            )));
        }
        Ok(())
    }

    /// Fetch the full provenance of one served prediction by its trace
    /// id (see [`RemotePrediction::trace_id`]): plan fingerprint, model
    /// name/version, cache hit, shard placement and the per-stage
    /// latency breakdown.  Requires a protocol-v2 server; the server
    /// answers `BadRequest` when no record with that id is retained.
    pub fn explain(&self, trace_id: u64) -> Result<ProvenanceRecord, ClientError> {
        self.require_v2("Explain")?;
        let (message, _) = self
            .send(|| Message::Explain(ExplainRequest { trace_id }), 0)?
            .wait_message()?;
        match message {
            Message::ExplainOk(record) => Ok(*record),
            Message::Error(e) => Err(ClientError::Server {
                code: e.code,
                message: e.message,
            }),
            other => Err(ClientError::UnexpectedResponse {
                expected: "ExplainOk",
                got: other.op_name(),
            }),
        }
    }

    /// Fetch the server's slow-request log: the retained slow/failed
    /// requests' provenance, worst (longest total latency) first, up to
    /// `limit` records.  Requires a protocol-v2 server.
    pub fn slow_log(&self, limit: u64) -> Result<Vec<ProvenanceRecord>, ClientError> {
        self.require_v2("SlowLog")?;
        let (message, _) = self
            .send(|| Message::SlowLog(SlowLogRequest { limit }), 0)?
            .wait_message()?;
        match message {
            Message::SlowLogOk(records) => Ok(records),
            Message::Error(e) => Err(ClientError::Server {
                code: e.code,
                message: e.message,
            }),
            other => Err(ClientError::UnexpectedResponse {
                expected: "SlowLogOk",
                got: other.op_name(),
            }),
        }
    }

    /// Fetch the server's SLO burn-rate position: configured objective +
    /// target and the rolling windows' good/bad counts, error rates and
    /// burn rates.  Requires a protocol-v2 server.
    pub fn slo_status(&self) -> Result<WireSloStatus, ClientError> {
        self.require_v2("SloStatus")?;
        let (message, _) = self.send(|| Message::SloStatus, 0)?.wait_message()?;
        match message {
            Message::SloStatusOk(status) => Ok(status),
            Message::Error(e) => Err(ClientError::Server {
                code: e.code,
                message: e.message,
            }),
            other => Err(ClientError::UnexpectedResponse {
                expected: "SloStatusOk",
                got: other.op_name(),
            }),
        }
    }

    /// Liveness probe.
    pub fn health(&self) -> Result<HealthResponse, ClientError> {
        let (message, _) = self.send(|| Message::Health, 0)?.wait_message()?;
        match message {
            Message::HealthOk(h) => Ok(h),
            Message::Error(e) => Err(ClientError::Server {
                code: e.code,
                message: e.message,
            }),
            other => Err(ClientError::UnexpectedResponse {
                expected: "HealthOk",
                got: other.op_name(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = ClientConfig::tenant("t1");
        assert_eq!(config.tenant, "t1");
        assert_eq!(config.connections, 1);
        assert!(config.request_timeout > config.connect_timeout);
    }

    #[test]
    fn connect_to_nothing_fails_cleanly() {
        // Port 1 on localhost is essentially never listening.
        let result = Client::connect(
            "127.0.0.1:1",
            ClientConfig {
                connect_timeout: Duration::from_millis(200),
                ..ClientConfig::tenant("t")
            },
        );
        assert!(matches!(result, Err(ClientError::Io(_))));
    }

    #[test]
    fn id_zero_error_frames_fail_all_pending_requests() {
        use zsdb_protocol::{write_frame, ErrorResponse, HelloAck};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake server");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let hello = read_frame(&mut stream).expect("read hello").expect("hello");
            assert!(matches!(hello.message, Message::Hello(_)));
            write_frame(
                &mut stream,
                &Frame::new(
                    hello.request_id,
                    Message::HelloAck(HelloAck {
                        protocol_version: PROTOCOL_VERSION,
                        model_version: 1,
                        tenant_quota: 7,
                    }),
                ),
            )
            .expect("ack");
            // Wait for the first real request so the caller's pending slot
            // exists, then fail the connection with an error on the
            // reserved id 0 — the way the server reports unframeable
            // bytes before hanging up.
            let _request = read_frame(&mut stream).expect("read request").expect("req");
            write_frame(
                &mut stream,
                &Frame::new(
                    0,
                    Message::Error(ErrorResponse {
                        code: ErrorCode::BadRequest,
                        message: "unreadable frame: fake".into(),
                    }),
                ),
            )
            .expect("error frame");
            stream.flush().expect("flush");
        });
        let client = Client::connect(
            addr,
            ClientConfig {
                request_timeout: Duration::from_secs(5),
                ..ClientConfig::tenant("t")
            },
        )
        .expect("handshake with fake server");
        match client.metrics() {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::BadRequest);
                assert!(message.contains("unreadable"), "got: {message}");
            }
            other => panic!(
                "expected the structured connection-level error, got {:?}",
                other.map(|_| "MetricsOk")
            ),
        }
        server.join().expect("fake server thread");
    }

    #[test]
    fn new_client_falls_back_to_a_v1_only_server() {
        use zsdb_catalog::TableId;
        use zsdb_engine::PhysOperator;
        use zsdb_protocol::{write_frame, ErrorResponse, HelloAck};

        // A fake pre-trace-extension server: it only accepts protocol
        // version 1, answers Predict with a plain (untraced) v1 frame and
        // has never heard of MetricsText.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake server");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: reject the v2 Hello the way the old
            // server did.
            let (mut stream, _) = listener.accept().expect("accept v2 attempt");
            let hello = read_frame(&mut stream).expect("read hello").expect("hello");
            let version = match &hello.message {
                Message::Hello(h) => h.protocol_version,
                other => panic!("expected Hello, got {}", other.op_name()),
            };
            assert_eq!(version, PROTOCOL_VERSION, "client leads with the newest");
            write_frame(
                &mut stream,
                &Frame::new(
                    hello.request_id,
                    Message::Error(ErrorResponse {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "unsupported protocol version {version} (server speaks 1)"
                        ),
                    }),
                ),
            )
            .expect("reject");
            drop(stream);

            // Second connection: the fallback handshake, now at v1.
            let (mut stream, _) = listener.accept().expect("accept v1 fallback");
            let hello = read_frame(&mut stream).expect("read hello").expect("hello");
            match &hello.message {
                Message::Hello(h) => assert_eq!(h.protocol_version, 1, "fallback speaks v1"),
                other => panic!("expected Hello, got {}", other.op_name()),
            }
            write_frame(
                &mut stream,
                &Frame::new(
                    hello.request_id,
                    Message::HelloAck(HelloAck {
                        protocol_version: 1,
                        model_version: 3,
                        tenant_quota: 9,
                    }),
                ),
            )
            .expect("ack");

            let request = read_frame(&mut stream).expect("read request").expect("req");
            assert_eq!(
                request.trace_id, 0,
                "a v1 connection must never carry trace ids"
            );
            assert!(matches!(request.message, Message::Predict(_)));
            write_frame(
                &mut stream,
                &Frame::new(
                    request.request_id,
                    Message::PredictOk(WirePrediction {
                        runtime_secs: 0.25,
                        fingerprint: 42,
                        cache_hit: false,
                        server_latency_micros: 10,
                        model_version: 3,
                    }),
                ),
            )
            .expect("answer");
            stream.flush().expect("flush");
        });

        let client = Client::connect(
            addr,
            ClientConfig {
                request_timeout: Duration::from_secs(5),
                ..ClientConfig::tenant("t")
            },
        )
        .expect("fallback handshake succeeds");
        assert_eq!(client.negotiated_protocol_version().unwrap(), 1);
        assert_eq!(client.handshake_model_version().unwrap(), 3);

        let plan = PlanNode {
            op: PhysOperator::SeqScan {
                table: TableId(0),
                predicates: vec![],
            },
            children: vec![],
            est_cardinality: 1.0,
            est_cost: 1.0,
            output_width: 1.0,
        };
        // MetricsText cannot be expressed at v1: the client refuses
        // locally instead of poisoning the connection.  Checked before
        // the predict round-trip — the refusal puts nothing on the wire,
        // and afterwards the fake server has hung up, which would race
        // the client's dead-connection detection into a reconnect error.
        assert!(matches!(
            client.metrics_text(),
            Err(ClientError::Unsupported(_))
        ));
        // The provenance/SLO ops are v2 extensions too: all refused
        // locally, nothing on the wire.
        assert!(matches!(
            client.explain(1),
            Err(ClientError::Unsupported(_))
        ));
        assert!(matches!(
            client.slow_log(10),
            Err(ClientError::Unsupported(_))
        ));
        assert!(matches!(
            client.slo_status(),
            Err(ClientError::Unsupported(_))
        ));

        let prediction = client.predict(&plan).expect("v1 predict works");
        assert_eq!(prediction.fingerprint, 42);
        assert_eq!(prediction.trace_id, 0, "no trace id over a v1 connection");
        server.join().expect("fake server thread");
    }

    #[test]
    fn error_display_is_informative() {
        let e = ClientError::Server {
            code: ErrorCode::QuotaExceeded,
            message: "tenant over quota".into(),
        };
        assert!(e.to_string().contains("QuotaExceeded"));
        assert!(ClientError::Timeout.to_string().contains("timed out"));
        assert!(ClientError::UnexpectedResponse {
            expected: "PredictOk",
            got: "HealthOk"
        }
        .to_string()
        .contains("PredictOk"));
    }
}
